// ctxrank::obs — low-overhead serving metrics: a process-wide registry of
// named counters, gauges, and fixed-bucket histograms, exposed as
// Prometheus-style text and as a JSON dump.
//
// Design constraints (see docs/OBSERVABILITY.md):
//   * Mutations are lock-free relaxed atomics. Counters and histograms are
//     sharded by thread (cache-line-padded slots) so concurrent queries
//     never contend on a metric — reads sum the shards.
//   * Metric objects are registered once and never destroyed; the
//     references handed out stay valid for the process lifetime, so hot
//     paths resolve a metric once (function-local static) and pay only the
//     atomic add per event.
//   * The registry itself is a leaked singleton: worker threads that
//     outlive main's locals can still bump metrics safely during shutdown.
//   * Disarmed-cost guard: bench/perf_queries derives the per-query
//     instrumentation cost from counter update *calls* (counters whose
//     value changed across a sweep, each bumped at most once per query —
//     a batched Increment(n) is one atomic add) times a measured per-op
//     cost; Increment(0)/Add(0) are no-ops so nothing is undercounted.
#ifndef CTXRANK_COMMON_METRICS_H_
#define CTXRANK_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ctxrank::obs {

/// Number of per-thread shards in counters and histograms. Threads map to
/// shards round-robin at first use; 16 slots keep any realistic query
/// fan-out contention-free while a full read stays a 16-element sum.
inline constexpr size_t kMetricShards = 16;

/// Round-robin shard index of the calling thread, assigned on first use.
size_t ThisThreadShard();

/// \brief Monotonically increasing event count, sharded per thread.
/// Increment is one relaxed fetch_add on the caller's shard; Value sums.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    if (n == 0) return;  // Keeps value deltas an exact mutation count.
    shards_[ThisThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Test/bench support: zeroes every shard (not atomic as a whole).
  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

/// \brief Instantaneous signed value (queue depth, in-flight queries).
/// Gauges are low-rate by design, so one atomic slot suffices.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { v_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> v_{0};
};

/// \brief Fixed-bucket distribution, sharded per thread. `bounds` are
/// inclusive upper bounds in ascending order; an implicit +Inf bucket
/// catches the tail. Observe is a linear bucket probe (bounds are short)
/// plus two relaxed atomic adds on the caller's shard.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value) {
    size_t b = 0;
    while (b < bounds_.size() && value > bounds_[b]) ++b;
    Shard& s = shards_[ThisThreadShard()];
    s.buckets[b].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
  }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts, bounds().size() + 1 entries.
  std::vector<uint64_t> BucketCounts() const;
  uint64_t TotalCount() const;
  double Sum() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<uint64_t>> buckets;
    std::atomic<double> sum{0.0};
  };
  const std::vector<double> bounds_;
  std::array<Shard, kMetricShards> shards_;
};

/// Default latency buckets in microseconds: 10us .. 1s, roughly 1-2.5-5
/// per decade — wide enough for both the pruned fast path and a stalled
/// degraded query.
const std::vector<double>& LatencyBucketsUs();

/// \brief Process-wide metric registry. GetX registers on first use and
/// returns a reference that stays valid forever (metrics are never
/// erased); repeated calls with the same name return the same object.
/// Registration takes a mutex; mutation through the returned reference is
/// lock-free — resolve once, then mutate.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `bounds` apply only when `name` is first registered; later calls
  /// return the existing histogram unchanged.
  Histogram& GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);

  /// Prometheus text exposition: `# TYPE` lines, cumulative `_bucket{le=}`
  /// rows plus `_sum`/`_count` per histogram, sorted by name.
  std::string RenderPrometheus() const;
  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, buckets: [{le, count}...]}}}.
  /// Bucket counts are cumulative, mirroring the text exposition.
  std::string RenderJson() const;

  /// Sum of every counter's value — with Increment(0) a no-op, the delta
  /// across a workload is the exact number of counter mutations weighted
  /// by their increments (an upper bound on atomic ops; the overhead
  /// guard's conservative direction).
  uint64_t SumCounters() const;
  /// Name -> value for every registered counter. Bench support: a batched
  /// Increment(n) is ONE atomic add but n value units, so SumCounters
  /// deltas overcount update *calls*. Counting counters whose value
  /// changed across a workload instead gives a tight per-query call bound
  /// when each serving-path counter is bumped at most once per query.
  std::map<std::string, uint64_t> CounterValues() const;
  /// Total observations across every histogram (one Observe each).
  uint64_t SumHistogramCounts() const;

  /// Zeroes every registered metric (tests and benches only — racing
  /// writers may leave residue; quiesce first).
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ctxrank::obs

#endif  // CTXRANK_COMMON_METRICS_H_
