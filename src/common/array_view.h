// The ownership seam for the serving snapshot: an array that either owns
// its elements (a std::vector built at construction time) or views
// immutable external storage (an mmap'd snapshot section). Read access is
// uniform via span(); the distinction only matters at construction.
#ifndef CTXRANK_COMMON_ARRAY_VIEW_H_
#define CTXRANK_COMMON_ARRAY_VIEW_H_

#include <cassert>
#include <cstddef>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

namespace ctxrank {

/// \brief Either a heap-owned std::vector<T> or a non-owning span over
/// storage someone else keeps alive (the snapshot's mmap region). Copies
/// deep-copy owned storage and alias viewed storage; moves are cheap in
/// both modes (a moved vector keeps its heap buffer address, so the view
/// stays valid).
template <typename T>
class VecOrSpan {
 public:
  VecOrSpan() = default;

  explicit VecOrSpan(std::vector<T> owned)
      : owned_(std::move(owned)), view_(owned_), owning_(true) {}

  explicit VecOrSpan(std::span<const T> view) : view_(view), owning_(false) {}

  VecOrSpan(const VecOrSpan& other) { *this = other; }
  VecOrSpan& operator=(const VecOrSpan& other) {
    if (this == &other) return *this;
    owning_ = other.owning_;
    if (owning_) {
      owned_ = other.owned_;
      view_ = owned_;
    } else {
      owned_.clear();
      view_ = other.view_;
    }
    return *this;
  }

  VecOrSpan(VecOrSpan&& other) noexcept { *this = std::move(other); }
  VecOrSpan& operator=(VecOrSpan&& other) noexcept {
    if (this == &other) return *this;
    owning_ = other.owning_;
    owned_ = std::move(other.owned_);
    // The moved vector keeps its buffer, so other.view_ still points at it.
    view_ = other.view_;
    other.owned_.clear();
    other.view_ = {};
    other.owning_ = false;
    return *this;
  }

  /// Replaces the contents with an owned vector.
  void SetOwned(std::vector<T> owned) {
    owned_ = std::move(owned);
    view_ = owned_;
    owning_ = true;
  }

  /// Replaces the contents with a non-owning view.
  void SetView(std::span<const T> view) {
    owned_.clear();
    view_ = view;
    owning_ = false;
  }

  std::span<const T> span() const { return view_; }
  auto begin() const { return view_.begin(); }
  auto end() const { return view_.end(); }
  const T* data() const { return view_.data(); }
  size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }
  const T& operator[](size_t i) const { return view_[i]; }

  bool owning() const { return owning_; }

  /// Mutable access to the owned vector; must not be called in view mode.
  std::vector<T>& mutable_vector() {
    assert(owning_);
    return owned_;
  }

  /// Re-syncs the view after mutating the owned vector (resize etc.).
  void SyncView() {
    assert(owning_);
    view_ = owned_;
  }

 private:
  std::vector<T> owned_;
  std::span<const T> view_;
  bool owning_ = true;
};

/// Materializes a span as an owned vector (handy for tests and for code
/// that must outlive the viewed storage).
template <typename T>
std::vector<std::remove_cv_t<T>> ToVector(std::span<T> s) {
  return std::vector<std::remove_cv_t<T>>(s.begin(), s.end());
}

}  // namespace ctxrank

#endif  // CTXRANK_COMMON_ARRAY_VIEW_H_
