// Deterministic pseudo-random number generation for reproducible synthetic
// corpora and experiments. We avoid std::mt19937 + std::distributions because
// their output is not guaranteed identical across standard library
// implementations; all sampling here is implemented from first principles.
#ifndef CTXRANK_COMMON_RNG_H_
#define CTXRANK_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ctxrank {

/// \brief SplitMix64: tiny, fast generator used for seeding and hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// \brief Xoshiro256** — the workhorse generator. Deterministic across
/// platforms, 2^256-1 period, passes BigCrush.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Zipf-distributed rank in [0, n) with exponent s (s > 0). Used for
  /// skewed vocabulary and author-productivity sampling.
  size_t NextZipf(size_t n, double s);

  /// Poisson-distributed count with mean `lambda` (Knuth's algorithm for
  /// small lambda, normal approximation above 30).
  int NextPoisson(double lambda);

  /// Samples an index proportionally to the non-negative `weights`.
  /// Returns weights.size() if all weights are zero.
  size_t NextWeighted(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (size_t i = v.size() - 1; i > 0; --i) {
      size_t j = NextBounded(i + 1);
      std::swap(v[i], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k >= n returns all of [0,n)).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; stable given the same stream id.
  Rng Fork(uint64_t stream_id) const;

 private:
  uint64_t s_[4];
  // Cached second Box-Muller deviate.
  bool has_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace ctxrank

#endif  // CTXRANK_COMMON_RNG_H_
