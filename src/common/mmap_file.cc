#include "common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault_injection.h"

namespace ctxrank {

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this == &other) return *this;
  if (data_ != nullptr) ::munmap(data_, size_);
  data_ = other.data_;
  size_ = other.size_;
  other.data_ = nullptr;
  other.size_ = 0;
  return *this;
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
  CTXRANK_RETURN_NOT_OK(fault::MaybeFail("mmap/open"));
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("cannot stat " + path + ": " + std::strerror(err));
  }
  // open(O_RDONLY) on a directory succeeds, but mmap would fail with a
  // cryptic ENODEV — reject it up front with a readable message.
  if (S_ISDIR(st.st_mode)) {
    ::close(fd);
    return Status::IoError("cannot mmap " + path + ": is a directory");
  }
  MmapFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  // mmap(len = 0) fails with EINVAL, so an empty file is served as a valid
  // empty view: data() == nullptr, size() == 0, mapped() == false.
  if (file.size_ > 0) {
    const Status injected = fault::MaybeFail("mmap/map");
    void* addr = injected.ok() ? ::mmap(nullptr, file.size_, PROT_READ,
                                        MAP_PRIVATE, fd, 0)
                               : MAP_FAILED;
    if (addr == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      if (!injected.ok()) return injected;
      return Status::IoError("cannot mmap " + path + ": " +
                             std::strerror(err));
    }
    file.data_ = addr;
  }
  ::close(fd);  // The mapping keeps the file alive.
  return file;
}

}  // namespace ctxrank
