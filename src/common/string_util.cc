#include "common/string_util.h"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ctxrank {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // Overflow.
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty() || s.size() > 64) return false;
  char buf[65];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (end != buf + s.size()) return false;
  *out = v;
  return true;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string PadRight(std::string_view s, size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

}  // namespace ctxrank
