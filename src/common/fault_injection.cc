#include "common/fault_injection.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/rng.h"

namespace ctxrank::fault {
namespace {

uint64_t Fnv1a(const char* s) {
  uint64_t h = 1469598103934665603ULL;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string Describe(const char* point, uint64_t hit, StatusCode code,
                     const std::string& message) {
  std::string out = "injected ";
  out += StatusCodeToString(code);
  out += " fault at '";
  out += point;
  out += "' (hit ";
  out += std::to_string(hit);
  out += ")";
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  return out;
}

}  // namespace

std::atomic<bool> FaultInjector::armed_{false};

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm() { armed_.store(true, std::memory_order_relaxed); }

void FaultInjector::StartRecording() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  hits_.clear();
  injected_failures_ = 0;
  random_mode_ = false;
  Arm();
}

void FaultInjector::FailNth(const std::string& point, uint64_t nth,
                            StatusCode code, const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back({Rule::Kind::kFail, point, nth, nth, code, message, 0,
                    SIZE_MAX});
  Arm();
}

void FaultInjector::FailFrom(const std::string& point, uint64_t nth,
                             StatusCode code, const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back({Rule::Kind::kFail, point, nth, UINT64_MAX, code, message,
                    0, SIZE_MAX});
  Arm();
}

void FaultInjector::FailRandom(uint64_t seed, double probability,
                               StatusCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  random_mode_ = true;
  random_seed_ = seed;
  random_probability_ = std::clamp(probability, 0.0, 1.0);
  random_code_ = code;
  Arm();
}

void FaultInjector::StallFrom(const std::string& point, uint64_t nth,
                              uint64_t ms) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back({Rule::Kind::kStall, point, nth, UINT64_MAX,
                    StatusCode::kOk, "", ms, SIZE_MAX});
  Arm();
}

void FaultInjector::TruncateIoNth(const std::string& point, uint64_t nth,
                                  size_t max_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back({Rule::Kind::kTruncateIo, point, nth, nth,
                    StatusCode::kOk, "", 0, max_bytes});
  Arm();
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_relaxed);
  rules_.clear();
  hits_.clear();
  injected_failures_ = 0;
  random_mode_ = false;
}

std::vector<std::string> FaultInjector::SeenPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> points;
  points.reserve(hits_.size());
  for (const auto& [point, count] : hits_) points.push_back(point);
  return points;  // std::map iteration is already sorted.
}

uint64_t FaultInjector::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(point);
  return it == hits_.end() ? 0 : it->second;
}

uint64_t FaultInjector::InjectedFailures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_failures_;
}

uint64_t FaultInjector::RecordHit(const std::string& point) {
  return ++hits_[point];
}

Status FaultInjector::OnPoint(const char* point) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
  const uint64_t hit = RecordHit(point);
  for (const Rule& rule : rules_) {
    if (rule.kind != Rule::Kind::kFail || rule.point != point) continue;
    if (hit < rule.first_hit || hit > rule.last_hit) continue;
    ++injected_failures_;
    return Status(rule.code, Describe(point, hit, rule.code, rule.message));
  }
  if (random_mode_ && random_probability_ > 0.0) {
    // Mix (seed, point, per-point hit index): the decision for hit i of a
    // point never depends on other points or on thread interleaving.
    SplitMix64 mix(random_seed_ ^ (Fnv1a(point) + 0x9e3779b97f4a7c15ULL * hit));
    const double draw =
        static_cast<double>(mix.Next() >> 11) * 0x1.0p-53;
    if (draw < random_probability_) {
      ++injected_failures_;
      return Status(random_code_,
                    Describe(point, hit, random_code_, "seed-driven"));
    }
  }
  return Status::OK();
}

void FaultInjector::OnStall(const char* point) {
  uint64_t stall_ms = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!armed_.load(std::memory_order_relaxed)) return;
    const uint64_t hit = RecordHit(point);
    for (const Rule& rule : rules_) {
      if (rule.kind != Rule::Kind::kStall || rule.point != point) continue;
      if (hit < rule.first_hit || hit > rule.last_hit) continue;
      stall_ms = std::max(stall_ms, rule.stall_ms);
    }
  }
  if (stall_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
  }
}

size_t FaultInjector::OnIo(const char* point, size_t requested) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return requested;
  const uint64_t hit = RecordHit(point);
  size_t allowed = requested;
  for (const Rule& rule : rules_) {
    if (rule.kind != Rule::Kind::kTruncateIo || rule.point != point) continue;
    if (hit < rule.first_hit || hit > rule.last_hit) continue;
    allowed = std::min(allowed, rule.max_bytes);
  }
  return allowed;
}

}  // namespace ctxrank::fault
