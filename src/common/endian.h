// Fixed-width little-endian encoding helpers — the single place that
// defines how multi-byte integers and doubles are laid out in ctxrank's
// binary formats (the serving snapshot in particular). Byte-shift based,
// so the encoded bytes are identical on any host endianness; compilers
// reduce them to single moves on little-endian targets.
#ifndef CTXRANK_COMMON_ENDIAN_H_
#define CTXRANK_COMMON_ENDIAN_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>

namespace ctxrank {

inline void StoreLE16(unsigned char* p, uint16_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
}

inline void StoreLE32(unsigned char* p, uint32_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
  p[2] = static_cast<unsigned char>(v >> 16);
  p[3] = static_cast<unsigned char>(v >> 24);
}

inline void StoreLE64(unsigned char* p, uint64_t v) {
  StoreLE32(p, static_cast<uint32_t>(v));
  StoreLE32(p + 4, static_cast<uint32_t>(v >> 32));
}

/// Stores the IEEE-754 bit pattern of `v` little-endian (bit-exact round
/// trip, including NaN payloads and signed zeros).
inline void StoreLEDouble(unsigned char* p, double v) {
  StoreLE64(p, std::bit_cast<uint64_t>(v));
}

inline uint16_t LoadLE16(const unsigned char* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

inline uint32_t LoadLE32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline uint64_t LoadLE64(const unsigned char* p) {
  return static_cast<uint64_t>(LoadLE32(p)) |
         (static_cast<uint64_t>(LoadLE32(p + 4)) << 32);
}

inline double LoadLEDouble(const unsigned char* p) {
  return std::bit_cast<double>(LoadLE64(p));
}

// char-pointer overloads (file buffers are usually char/std::byte).
inline void StoreLE32(char* p, uint32_t v) {
  StoreLE32(reinterpret_cast<unsigned char*>(p), v);
}
inline void StoreLE64(char* p, uint64_t v) {
  StoreLE64(reinterpret_cast<unsigned char*>(p), v);
}
inline void StoreLEDouble(char* p, double v) {
  StoreLEDouble(reinterpret_cast<unsigned char*>(p), v);
}
inline uint32_t LoadLE32(const char* p) {
  return LoadLE32(reinterpret_cast<const unsigned char*>(p));
}
inline uint64_t LoadLE64(const char* p) {
  return LoadLE64(reinterpret_cast<const unsigned char*>(p));
}
inline double LoadLEDouble(const char* p) {
  return LoadLEDouble(reinterpret_cast<const unsigned char*>(p));
}

inline void AppendLE32(std::string& out, uint32_t v) {
  char buf[4];
  StoreLE32(buf, v);
  out.append(buf, sizeof(buf));
}

inline void AppendLE64(std::string& out, uint64_t v) {
  char buf[8];
  StoreLE64(buf, v);
  out.append(buf, sizeof(buf));
}

inline void AppendLEDouble(std::string& out, double v) {
  AppendLE64(out, std::bit_cast<uint64_t>(v));
}

/// True when the running host stores integers and doubles little-endian —
/// the precondition for the snapshot loader's zero-copy reinterpretation
/// of mmap'd arrays.
inline bool HostIsLittleEndian() {
  return std::endian::native == std::endian::little;
}

/// FNV-1a 64-bit hash — the snapshot's per-section checksum. Not
/// cryptographic; detects truncation and bit corruption.
inline uint64_t Fnv1a64(const void* data, size_t size,
                        uint64_t seed = 0xcbf29ce484222325ULL) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace ctxrank

#endif  // CTXRANK_COMMON_ENDIAN_H_
