// Deterministic fault injection for resilience tests. Production code
// marks its failure-prone spots with named injection points:
//
//   CTXRANK_RETURN_NOT_OK(fault::MaybeFail("snapshot/save/pwrite"));
//   fault::MaybeStall("search/scan_context");
//   n = ::pwrite(fd, p, fault::MaybeTruncateIo("snapshot/save/pwrite", n), o);
//
// When the singleton injector is disarmed (the default, including all of
// production) every hook is a single relaxed atomic load — no locks, no
// strings, no clock reads. Tests arm it with seed-driven rules:
//
//   * StartRecording()            — pass-through mode that registers every
//                                   point reached (drives the sweep tests);
//   * FailNth(point, n, code)     — the n-th hit of `point` returns a
//                                   descriptive error Status;
//   * FailRandom(seed, p, code)   — every hit fails with probability p,
//                                   reproducible from (seed, point,
//                                   per-point hit index) alone, so a seed
//                                   sweep explores distinct deterministic
//                                   failure patterns;
//   * StallFrom(point, n, ms)     — hits n, n+1, ... sleep `ms` (drives
//                                   deadline-degradation tests);
//   * TruncateIoNth(point, n, b)  — the n-th I/O at `point` transfers at
//                                   most b bytes (short read/write).
//
// The injector is a process-wide singleton; tests that arm it must not run
// concurrently with other armed tests (gtest runs tests sequentially in
// one binary, which is exactly the supported setup).
#ifndef CTXRANK_COMMON_FAULT_INJECTION_H_
#define CTXRANK_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace ctxrank::fault {

class FaultInjector {
 public:
  /// The process-wide injector.
  static FaultInjector& Instance();

  /// True when any mode (recording or failing) is active. Relaxed load —
  /// this is the only cost the hooks pay in production.
  static bool Armed() { return armed_.load(std::memory_order_relaxed); }

  /// Pass-through mode: nothing fails, but every point reached is
  /// registered (see SeenPoints). Clears previous rules and counters.
  void StartRecording();

  /// Arms a deterministic failure: the `nth` hit (1-based) of `point`
  /// returns Status(code, ...). Multiple rules may be armed at once.
  void FailNth(const std::string& point, uint64_t nth,
               StatusCode code = StatusCode::kIoError,
               const std::string& message = "");

  /// Arms a deterministic failure for every hit of `point` from `nth` on.
  void FailFrom(const std::string& point, uint64_t nth,
                StatusCode code = StatusCode::kIoError,
                const std::string& message = "");

  /// Arms seed-driven random failures at every point: each hit fails with
  /// probability `probability`, decided by mixing (seed, point name,
  /// per-point hit index) — the same seed always yields the same failure
  /// pattern for the same workload, regardless of thread interleaving.
  void FailRandom(uint64_t seed, double probability,
                  StatusCode code = StatusCode::kIoError);

  /// Arms a stall: hits `nth`, `nth`+1, ... of `point` sleep for `ms`.
  void StallFrom(const std::string& point, uint64_t nth, uint64_t ms);

  /// Arms a short transfer: the `nth` I/O at `point` moves at most
  /// `max_bytes` (the caller's retry loop must finish the rest).
  void TruncateIoNth(const std::string& point, uint64_t nth,
                     size_t max_bytes);

  /// Disarms everything and clears rules, counters, and the registry.
  void Disarm();

  /// Every point name hit while armed (sorted). The fault-sweep tests
  /// record a healthy run first, then attack each seen point in turn.
  std::vector<std::string> SeenPoints() const;

  /// Hits of one point since the last arm/Disarm.
  uint64_t HitCount(const std::string& point) const;

  /// Total failures injected since the last arm/Disarm.
  uint64_t InjectedFailures() const;

  // --- hook backends (called via the inline wrappers below) ---
  Status OnPoint(const char* point);
  void OnStall(const char* point);
  size_t OnIo(const char* point, size_t requested);

 private:
  FaultInjector() = default;

  struct Rule {
    enum class Kind { kFail, kStall, kTruncateIo };
    Kind kind = Kind::kFail;
    std::string point;  // Empty = matches every point (random mode only).
    uint64_t first_hit = 1;
    uint64_t last_hit = UINT64_MAX;
    StatusCode code = StatusCode::kIoError;
    std::string message;
    uint64_t stall_ms = 0;
    size_t max_bytes = SIZE_MAX;
  };

  /// Bumps the hit counter and returns the 1-based index of this hit.
  uint64_t RecordHit(const std::string& point);
  void Arm();

  static std::atomic<bool> armed_;

  mutable std::mutex mu_;
  std::vector<Rule> rules_;
  std::map<std::string, uint64_t> hits_;
  uint64_t injected_failures_ = 0;
  bool random_mode_ = false;
  uint64_t random_seed_ = 0;
  double random_probability_ = 0.0;
  StatusCode random_code_ = StatusCode::kIoError;
};

/// Returns OK, or the armed failure for this hit of `point`.
inline Status MaybeFail(const char* point) {
  if (!FaultInjector::Armed()) return Status::OK();
  return FaultInjector::Instance().OnPoint(point);
}

/// Sleeps when a stall is armed for this hit of `point`.
inline void MaybeStall(const char* point) {
  if (FaultInjector::Armed()) FaultInjector::Instance().OnStall(point);
}

/// Caps an I/O transfer size when a short read/write is armed.
inline size_t MaybeTruncateIo(const char* point, size_t requested) {
  if (!FaultInjector::Armed()) return requested;
  return FaultInjector::Instance().OnIo(point, requested);
}

}  // namespace ctxrank::fault

#endif  // CTXRANK_COMMON_FAULT_INJECTION_H_
