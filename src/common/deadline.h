// Monotonic time budget for query serving. A Deadline is either unset
// (never expires — the default, and the zero-overhead path: expired() is a
// single bool test) or an absolute point on the steady clock. The search
// path checks it at context granularity and on pruning-block boundaries
// and degrades gracefully instead of blocking past the budget.
#ifndef CTXRANK_COMMON_DEADLINE_H_
#define CTXRANK_COMMON_DEADLINE_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <ctime>

namespace ctxrank {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unset: armed() is false and expired() is always false.
  Deadline() = default;

  /// Expires `ms` milliseconds from now (ms == 0 is already expired —
  /// useful for "shed all load" and for deterministic tests).
  static Deadline AfterMs(uint64_t ms) {
    return Deadline(Clock::now() + std::chrono::milliseconds(ms));
  }

  /// Expires at an absolute steady-clock point (shared across a batch).
  static Deadline At(Clock::time_point when) { return Deadline(when); }

  /// Never expires, but armed() — for call sites that require a deadline.
  static Deadline Infinite() { return Deadline(Clock::time_point::max()); }

  /// Child budget for one leg of a parallel fan-out (the sharded
  /// scatter-gather): the parent's expiry minus a gather reserve, so every
  /// leg that finishes inside its slice leaves the coordinator time to
  /// merge before the caller's budget runs out. Legs run concurrently, so
  /// they all get the same absolute slice — the reserve is
  /// `reserve_permille` thousandths of the budget still remaining at call
  /// time (default 10%), never less than `min_reserve_us`. An unset parent
  /// yields an unset child (no budget to slice), an already-expired parent
  /// an already-expired child, and Infinite() passes through unchanged.
  static Deadline FanOutSlice(const Deadline& parent,
                              uint64_t reserve_permille = 100,
                              uint64_t min_reserve_us = 200) {
    if (!parent.armed()) return Deadline();
    if (parent.when() == Clock::time_point::max()) return parent;
    const Clock::time_point now = Clock::now();
    if (parent.when() <= now) return Deadline(parent.when());
    const auto remaining = parent.when() - now;
    const Clock::duration reserve =
        std::max(std::chrono::duration_cast<Clock::duration>(
                     std::chrono::microseconds(min_reserve_us)),
                 remaining * static_cast<int64_t>(reserve_permille) / 1000);
    // A reserve larger than the remaining budget pins the slice to "now":
    // legs see an expired deadline and degrade instead of overrunning.
    return Deadline(reserve >= remaining ? now : parent.when() - reserve);
  }

  bool armed() const { return armed_; }

  /// True iff a set deadline has passed. An unset deadline never expires
  /// and costs no clock read to check. An armed one costs a coarse-clock
  /// read (a vDSO page read, no TSC access) while the expiry point is
  /// still far, and an exact steady-clock read from there on — the
  /// verdict always comes from the precise clock whenever it could
  /// possibly be "expired".
  bool expired() const {
    if (!armed_) return false;
    armed_checks_.fetch_add(1, std::memory_order_relaxed);
#if defined(CLOCK_MONOTONIC_COARSE)
    // The coarse clock shares the monotonic epoch but only advances on
    // scheduler ticks, so it may lag the precise clock by one tick. A
    // verdict of "still comfortably early" (beyond any plausible tick
    // length) is therefore trustworthy; anything closer falls through.
    timespec ts;
    if (clock_gettime(CLOCK_MONOTONIC_COARSE, &ts) == 0) {
      const Clock::time_point coarse{
          std::chrono::duration_cast<Clock::duration>(
              std::chrono::seconds(ts.tv_sec) +
              std::chrono::nanoseconds(ts.tv_nsec))};
      if (coarse + kCoarseSlack < when_) return false;
    }
#endif
    return Clock::now() >= when_;
  }

  /// Milliseconds left (0 when expired; a large value when unset).
  int64_t remaining_ms() const {
    if (!armed_) return INT64_MAX;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        when_ - Clock::now());
    return left.count() < 0 ? 0 : left.count();
  }

  /// The absolute expiry point; only meaningful when armed().
  Clock::time_point when() const { return when_; }

  /// Process-wide count of armed expired() checks (each one is a clock
  /// read). The unarmed path never touches it, so a query with no
  /// deadline stays a bool test; the armed path pays one relaxed
  /// increment beside a clock read it does anyway. The bench's overhead
  /// guard multiplies this exact count by the measured per-check cost —
  /// wall-clock A/B at sub-1% resolution is hopeless on shared VMs.
  static uint64_t armed_checks() {
    return armed_checks_.load(std::memory_order_relaxed);
  }

 private:
  // Upper bound on how far CLOCK_MONOTONIC_COARSE may trail the precise
  // clock (one scheduler tick: 4 ms at HZ=250, 20 ms at HZ=50), with a
  // wide margin so an exotic kernel config cannot turn the shortcut into
  // a late deadline.
  static constexpr std::chrono::milliseconds kCoarseSlack{100};

  inline static std::atomic<uint64_t> armed_checks_{0};

  explicit Deadline(Clock::time_point when) : when_(when), armed_(true) {}

  Clock::time_point when_{};
  bool armed_ = false;
};

}  // namespace ctxrank

#endif  // CTXRANK_COMMON_DEADLINE_H_
