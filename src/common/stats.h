// Descriptive statistics and histogram helpers used by the evaluation
// harness (separability standard deviations, precision aggregates).
#ifndef CTXRANK_COMMON_STATS_H_
#define CTXRANK_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace ctxrank {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& v);

/// Median (average of middle two for even sizes); 0 for an empty input.
double Median(std::vector<double> v);

/// Population standard deviation; 0 for fewer than 2 elements.
double StdDev(const std::vector<double>& v);

/// Minimum / maximum; 0 for an empty input.
double Min(const std::vector<double>& v);
double Max(const std::vector<double>& v);

/// Nearest-rank percentile: the smallest element such that at least
/// p percent of the sample is <= it (p in [0, 100]; p = 50 is the lower
/// median, p = 100 the maximum). 0 for an empty input.
double Percentile(std::vector<double> v, double p);

/// Rescales values to [0, 1] in place. A constant vector maps to all-zeros
/// (so "every paper got the same score" is visible to separability metrics).
void MinMaxNormalize(std::vector<double>& v);

/// \brief Fixed-range equal-width histogram over [lo, hi]. Values outside
/// the range are clamped into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double v);
  void AddAll(const std::vector<double>& vs);

  size_t bucket_count() const { return counts_.size(); }
  size_t count(size_t bucket) const { return counts_[bucket]; }
  size_t total() const { return total_; }

  /// Percentage of samples in `bucket` (0 if empty histogram).
  double Percent(size_t bucket) const;

  /// Lower edge of `bucket`.
  double BucketLow(size_t bucket) const;

  /// Renders "lo-hi: count (pct%)" lines for logging.
  std::string ToString() const;

 private:
  double lo_, hi_, width_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace ctxrank

#endif  // CTXRANK_COMMON_STATS_H_
