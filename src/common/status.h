// Status / Result<T> error handling in the Arrow/RocksDB idiom: no exceptions
// cross public API boundaries; fallible operations return a Status or a
// Result<T> that callers must inspect.
#ifndef CTXRANK_COMMON_STATUS_H_
#define CTXRANK_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace ctxrank {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kDeadlineExceeded,
  kResourceExhausted,
};

/// Canonical name of a code, e.g. "IoError" ("OK" for kOk).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus a human-readable
/// message. `Status::OK()` carries no message and is cheap to copy.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "InvalidArgument: bad weight" ("OK" for success).
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status. Accessing `value()`
/// on an error result is a programming error (asserts in debug builds).
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): ergonomic `return value;`.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor): ergonomic `return status;`.
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Returns the value, or `fallback` if this result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ctxrank

/// Propagates a non-OK Status from an expression to the caller.
#define CTXRANK_RETURN_NOT_OK(expr)          \
  do {                                       \
    ::ctxrank::Status _st = (expr);          \
    if (!_st.ok()) return _st;               \
  } while (false)

#endif  // CTXRANK_COMMON_STATUS_H_
