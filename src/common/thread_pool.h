// Deterministic data parallelism for the per-context pipeline stages.
//
// The prestige engines run an independent link-analysis or similarity job
// per context over *read-only* shared inputs (graph, tokenized corpus,
// assignment), writing into pre-sized per-context result slots. That shape
// needs no work stealing: `ParallelFor` splits the index range into one
// contiguous chunk per thread (static partitioning — cache-friendly, no
// shared counters on the hot path) and runs the chunks on a `ThreadPool`.
// Because every iteration owns its output slot and chunks never overlap,
// results are bitwise identical for any thread count.
#ifndef CTXRANK_COMMON_THREAD_POOL_H_
#define CTXRANK_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ctxrank {

/// \brief Fixed-size pool of worker threads draining a FIFO task queue.
/// Submission and waiting are thread-safe; tasks must not themselves call
/// Submit/Wait on the same pool (no nested parallelism — the per-context
/// loops are flat). Destruction waits for all submitted tasks.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task. Tasks run in submission order per worker pickup;
  /// exceptions escaping a task terminate (wrap fallible work yourself —
  /// ParallelFor does).
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished running.
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // Queued + currently running tasks.
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

struct ParallelForOptions {
  /// Number of threads to use. 0 = std::thread::hardware_concurrency();
  /// 1 = run inline on the calling thread (no pool, no locking).
  size_t num_threads = 1;
  /// Minimum iterations per chunk; ranges smaller than this run inline.
  /// Raise it when iterations are tiny so chunk overhead stays amortized.
  size_t grain = 1;
  /// Optional pool to reuse across calls (e.g. one pool per pipeline).
  /// When null and more than one thread is needed, a transient pool is
  /// created for the call. The chunk layout — hence the output — does not
  /// depend on which pool runs the chunks.
  ThreadPool* pool = nullptr;
};

/// Resolves a user-facing thread-count option: 0 maps to the hardware
/// concurrency (at least 1), anything else passes through.
size_t ResolveNumThreads(size_t requested);

/// \brief Runs `body(begin, end)` over a static partition of [0, n) into
/// contiguous chunks, at most one per thread. Blocks until every chunk has
/// finished. The first exception thrown by any chunk is rethrown on the
/// calling thread (remaining chunks still run to completion, so shared
/// outputs stay in a defined state).
///
/// Determinism contract: chunk boundaries depend only on (n, num_threads,
/// grain), and chunks are disjoint — a body that writes only to slots
/// derived from its indices produces bitwise-identical output for every
/// thread count, including the inline path.
void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body,
                 const ParallelForOptions& options = {});

}  // namespace ctxrank

#endif  // CTXRANK_COMMON_THREAD_POOL_H_
