// Per-query execution trace for the serving path. A QueryTrace is only
// allocated when the caller asks for one (SearchOptions::trace) — the
// disarmed path carries a null pointer and pays a branch, nothing more.
// The trace answers "which path scored this result": exact vs pruned vs
// cached vs shed, how many contexts each pruning layer dropped, and where
// the time went. Schema documented in docs/OBSERVABILITY.md.
#ifndef CTXRANK_COMMON_QUERY_TRACE_H_
#define CTXRANK_COMMON_QUERY_TRACE_H_

#include <cstddef>
#include <cstdio>
#include <string>

namespace ctxrank::obs {

struct QueryTrace {
  /// Which serving path produced the hits: "pruned" (impact-ordered
  /// fast path), "exact" (brute-force reference scan), "cached" (query
  /// result cache hit), or "shed" (rejected by admission control — no
  /// hits were computed).
  std::string path;
  bool cache_hit = false;
  /// Deadline cut the scan short; `cause` names the detail.
  bool degraded = false;
  /// Shed by admission control before any scoring happened.
  bool shed = false;
  /// Human-readable degradation/shed cause ("" when the query ran clean).
  std::string cause;

  /// Context funnel: routing selected `contexts_selected`; of those,
  /// `contexts_scanned` were fully scored, `contexts_pruned` were skipped
  /// whole by the top-k threshold bound (no member touched — correct by
  /// the pruning proof), and `contexts_skipped` were abandoned to the
  /// deadline (reported in SearchResponse::skipped_contexts too).
  size_t contexts_selected = 0;
  size_t contexts_scanned = 0;
  size_t contexts_pruned = 0;
  size_t contexts_skipped = 0;
  size_t hits = 0;

  /// Block-max funnel (block pruning mode only; both stay 0 on the
  /// per-term fallback and the exact path). Counted across every admitting
  /// term of every scanned context: `blocks_scanned` postings blocks were
  /// visited, `blocks_skipped` were rejected by their block max without
  /// touching a posting. scanned + skipped = total blocks of those terms.
  size_t blocks_scanned = 0;
  size_t blocks_skipped = 0;
  /// SIMD kernel level the block path dispatched to ("avx2" / "scalar");
  /// "" when the query never entered the block path.
  std::string simd_level;

  /// Stage timings, microseconds: query analysis (tokenize + TF-IDF),
  /// context routing, scan/merge, and end-to-end (including cache probes).
  double analyze_us = 0.0;
  double route_us = 0.0;
  double scan_us = 0.0;
  double total_us = 0.0;

  /// Two-line human-readable rendering (CLI `--trace`).
  std::string ToString() const {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "trace: path=%s cache=%s degraded=%s hits=%zu%s%s\n"
        "  contexts: selected=%zu scanned=%zu pruned=%zu skipped=%zu | "
        "blocks: scanned=%zu skipped=%zu%s%s | "
        "us: analyze=%.1f route=%.1f scan=%.1f total=%.1f\n",
        path.c_str(), cache_hit ? "hit" : "miss", degraded ? "yes" : "no",
        hits, cause.empty() ? "" : " cause=", cause.c_str(),
        contexts_selected, contexts_scanned, contexts_pruned,
        contexts_skipped, blocks_scanned, blocks_skipped,
        simd_level.empty() ? "" : " simd=", simd_level.c_str(),
        analyze_us, route_us, scan_us, total_us);
    return buf;
  }

  /// One-line JSON object (machine consumers; batch `--trace` output).
  std::string ToJson() const {
    char buf[576];
    std::snprintf(
        buf, sizeof(buf),
        "{\"path\": \"%s\", \"cache_hit\": %s, \"degraded\": %s, "
        "\"shed\": %s, \"cause\": \"%s\", \"contexts_selected\": %zu, "
        "\"contexts_scanned\": %zu, \"contexts_pruned\": %zu, "
        "\"contexts_skipped\": %zu, \"blocks_scanned\": %zu, "
        "\"blocks_skipped\": %zu, \"simd_level\": \"%s\", \"hits\": %zu, "
        "\"analyze_us\": %.1f, \"route_us\": %.1f, \"scan_us\": %.1f, "
        "\"total_us\": %.1f}",
        path.c_str(), cache_hit ? "true" : "false",
        degraded ? "true" : "false", shed ? "true" : "false", cause.c_str(),
        contexts_selected, contexts_scanned, contexts_pruned,
        contexts_skipped, blocks_scanned, blocks_skipped, simd_level.c_str(),
        hits, analyze_us, route_us, scan_us, total_us);
    return buf;
  }
};

}  // namespace ctxrank::obs

#endif  // CTXRANK_COMMON_QUERY_TRACE_H_
