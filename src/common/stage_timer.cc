#include "common/stage_timer.h"

#include <ctime>

#include "common/string_util.h"

namespace ctxrank {

namespace {

// Process-wide CPU time (all threads), seconds. CLOCK_PROCESS_CPUTIME_ID is
// POSIX; std::clock() is the portable fallback with coarser resolution.
double ProcessCpuSeconds() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

std::string FormatSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%8.3fs", s);
  return buf;
}

}  // namespace

StageTimer::Scope::Scope(StageTimer* timer, size_t index)
    : timer_(timer),
      index_(index),
      wall_start_(std::chrono::steady_clock::now()),
      cpu_start_(ProcessCpuSeconds()) {}

StageTimer::Scope::Scope(Scope&& other) noexcept
    : timer_(other.timer_),
      index_(other.index_),
      wall_start_(other.wall_start_),
      cpu_start_(other.cpu_start_) {
  other.timer_ = nullptr;
}

StageTimer::Scope::~Scope() {
  if (timer_ == nullptr) return;
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start_;
  timer_->Record(index_, wall.count(), ProcessCpuSeconds() - cpu_start_);
}

StageTimer::Scope StageTimer::Time(std::string stage) {
  return Scope(this, IndexOf(std::move(stage)));
}

size_t StageTimer::IndexOf(std::string stage) {
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (stages_[i].name == stage) return i;
  }
  stages_.push_back({std::move(stage), 0.0, 0.0, 0});
  return stages_.size() - 1;
}

void StageTimer::Record(size_t index, double wall_seconds,
                        double cpu_seconds) {
  Stage& s = stages_[index];
  s.wall_seconds += wall_seconds;
  s.cpu_seconds += cpu_seconds;
  ++s.calls;
}

std::string StageTimer::ToString() const {
  size_t width = 5;  // "stage"
  for (const Stage& s : stages_) width = std::max(width, s.name.size());
  std::string out;
  out += PadRight("stage", width) + "  |     wall |      cpu | cpu/wall | calls\n";
  out += std::string(width, '-') +
         "--+----------+----------+----------+------\n";
  double total_wall = 0.0, total_cpu = 0.0;
  for (const Stage& s : stages_) {
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%8.2f",
                  s.wall_seconds > 0.0 ? s.cpu_seconds / s.wall_seconds : 0.0);
    char calls[32];
    std::snprintf(calls, sizeof(calls), "%5d", s.calls);
    out += PadRight(s.name, width) + "  |" + FormatSeconds(s.wall_seconds) +
           " |" + FormatSeconds(s.cpu_seconds) + " | " + ratio + " | " +
           calls + "\n";
    total_wall += s.wall_seconds;
    total_cpu += s.cpu_seconds;
  }
  out += PadRight("total", width) + "  |" + FormatSeconds(total_wall) + " |" +
         FormatSeconds(total_cpu) + " |          |\n";
  return out;
}

}  // namespace ctxrank
