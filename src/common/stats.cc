#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace ctxrank {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  if (n % 2 == 1) return v[n / 2];
  return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size()));
}

double Min(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
}

double Max(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(v.size())));
  if (rank > 0) --rank;  // ceil(pn) in 1-based ranks -> 0-based index.
  std::nth_element(v.begin(), v.begin() + rank, v.end());
  return v[rank];
}

void MinMaxNormalize(std::vector<double>& v) {
  if (v.empty()) return;
  const double lo = Min(v), hi = Max(v);
  const double span = hi - lo;
  if (span <= 0.0) {
    std::fill(v.begin(), v.end(), 0.0);
    return;
  }
  for (double& x : v) x = (x - lo) / span;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {}

void Histogram::Add(double v) {
  if (counts_.empty() || width_ <= 0.0) return;
  double pos = (v - lo_) / width_;
  long bucket = static_cast<long>(std::floor(pos));
  if (bucket < 0) bucket = 0;
  if (bucket >= static_cast<long>(counts_.size())) {
    bucket = static_cast<long>(counts_.size()) - 1;
  }
  ++counts_[static_cast<size_t>(bucket)];
  ++total_;
}

void Histogram::AddAll(const std::vector<double>& vs) {
  for (double v : vs) Add(v);
}

double Histogram::Percent(size_t bucket) const {
  if (total_ == 0) return 0.0;
  return 100.0 * static_cast<double>(counts_[bucket]) /
         static_cast<double>(total_);
}

double Histogram::BucketLow(size_t bucket) const {
  return lo_ + width_ * static_cast<double>(bucket);
}

std::string Histogram::ToString() const {
  std::string out;
  for (size_t b = 0; b < counts_.size(); ++b) {
    out += FormatDouble(BucketLow(b), 2) + "-" +
           FormatDouble(BucketLow(b) + width_, 2) + ": " +
           std::to_string(counts_[b]) + " (" + FormatDouble(Percent(b), 1) +
           "%)\n";
  }
  return out;
}

}  // namespace ctxrank
