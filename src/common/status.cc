#include "common/status.h"

namespace ctxrank {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ctxrank
