// Capped exponential backoff with deterministic jitter, shared by every
// retry loop in the system (snapshot reload supervisor, remote shard
// client). The delay for attempt `a` (0-based) is
//
//   min(initial_ms * 2^a, max_ms) + jitter,   jitter in [0, delay/2]
//
// where the jitter is drawn from SplitMix64 seeded by (jitter_seed, a
// per-caller salt, the attempt index) — replicas retrying the same
// broken resource decorrelate, yet a fixed seed reproduces the exact
// delay sequence, which is what lets the fault-storm tests assert on
// timing-dependent behavior.
#ifndef CTXRANK_COMMON_BACKOFF_H_
#define CTXRANK_COMMON_BACKOFF_H_

#include <cstddef>
#include <cstdint>

#include "common/rng.h"

namespace ctxrank {

class Backoff {
 public:
  struct Options {
    /// First delay; doubles per attempt up to `max_ms`.
    uint64_t initial_ms = 10;
    uint64_t max_ms = 1000;
    /// Seed for the deterministic jitter added to each delay.
    uint64_t jitter_seed = 0;
  };

  /// The full (jittered) delay in milliseconds for `attempt` (0-based).
  /// `salt` decorrelates independent retry loops sharing one seed — the
  /// supervisor salts with a hash of the snapshot path, the shard client
  /// with its shard id.
  static uint64_t DelayMs(const Options& options, size_t attempt,
                          uint64_t salt) {
    // Capped exponential: initial * 2^attempt, saturating at max_ms.
    uint64_t delay = options.initial_ms;
    for (size_t i = 0; i < attempt && delay < options.max_ms; ++i) {
      delay *= 2;
    }
    if (delay > options.max_ms) delay = options.max_ms;
    // Deterministic jitter in [0, delay/2]: decorrelates replicas retrying
    // the same broken resource while staying reproducible under a fixed
    // seed.
    SplitMix64 mix(options.jitter_seed ^ salt ^
                   (0x9e3779b97f4a7c15ULL * (attempt + 1)));
    delay += mix.Next() % (delay / 2 + 1);
    return delay;
  }
};

}  // namespace ctxrank

#endif  // CTXRANK_COMMON_BACKOFF_H_
