// Bounded in-flight admission control for the batch query path. A plain
// counting semaphore with deadline-aware acquisition: SearchManyEx acquires
// one permit per in-flight query, so a burst larger than the configured
// limit queues instead of oversubscribing — and with a deadline set, a
// query that cannot be admitted in time is shed with kResourceExhausted
// instead of waiting forever. A query whose deadline has *already*
// expired is shed up front, deterministically — admission must not depend
// on whether a permit happens to be free at that instant.
//
// Instrumented (see docs/OBSERVABILITY.md): ctxrank_admission_in_flight
// gauge, ctxrank_admission_shed_total counter, and the
// ctxrank_admission_wait_us histogram of time spent blocked in Acquire.
#ifndef CTXRANK_COMMON_ADMISSION_LIMITER_H_
#define CTXRANK_COMMON_ADMISSION_LIMITER_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "common/deadline.h"
#include "common/metrics.h"

namespace ctxrank {

class AdmissionLimiter {
 public:
  /// `limit` concurrent permits (clamped to at least 1).
  explicit AdmissionLimiter(size_t limit) : limit_(limit == 0 ? 1 : limit) {}

  AdmissionLimiter(const AdmissionLimiter&) = delete;
  AdmissionLimiter& operator=(const AdmissionLimiter&) = delete;

  /// Acquires a permit, waiting until one frees up. With an armed deadline,
  /// gives up at expiry; returns whether the permit was granted. An armed
  /// deadline that has already expired sheds immediately — even when a
  /// permit is free — so "too late" queries fail the same way under any
  /// load instead of slipping through on a lucky free slot.
  bool Acquire(const Deadline& deadline = Deadline()) {
    if (deadline.armed() && deadline.expired()) {
      Metrics().shed.Increment();
      return false;
    }
    const auto wait0 = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(mu_);
    if (!deadline.armed()) {
      released_.wait(lock, [this] { return in_flight_ < limit_; });
    } else if (!released_.wait_until(lock, deadline.when(), [this] {
                 return in_flight_ < limit_;
               })) {
      lock.unlock();
      Metrics().shed.Increment();
      return false;
    }
    ++in_flight_;
    lock.unlock();
    Metrics().in_flight.Add(1);
    Metrics().wait_us.Observe(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - wait0)
            .count());
    return true;
  }

  /// Non-blocking acquire.
  bool TryAcquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (in_flight_ >= limit_) return false;
      ++in_flight_;
    }
    Metrics().in_flight.Add(1);
    return true;
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    Metrics().in_flight.Sub(1);
    released_.notify_one();
  }

  size_t limit() const { return limit_; }

  size_t in_flight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return in_flight_;
  }

  /// RAII permit: releases on destruction iff the acquire succeeded.
  class Permit {
   public:
    Permit(AdmissionLimiter& limiter, const Deadline& deadline)
        : limiter_(limiter), granted_(limiter.Acquire(deadline)) {}
    ~Permit() {
      if (granted_) limiter_.Release();
    }
    Permit(const Permit&) = delete;
    Permit& operator=(const Permit&) = delete;
    bool granted() const { return granted_; }

   private:
    AdmissionLimiter& limiter_;
    bool granted_;
  };

 private:
  struct MetricsRefs {
    obs::Gauge& in_flight;
    obs::Counter& shed;
    obs::Histogram& wait_us;
  };

  static MetricsRefs& Metrics() {
    static MetricsRefs refs{
        obs::MetricsRegistry::Instance().GetGauge("ctxrank_admission_in_flight"),
        obs::MetricsRegistry::Instance().GetCounter(
            "ctxrank_admission_shed_total"),
        obs::MetricsRegistry::Instance().GetHistogram(
            "ctxrank_admission_wait_us", obs::LatencyBucketsUs())};
    return refs;
  }

  const size_t limit_;
  mutable std::mutex mu_;
  std::condition_variable released_;
  size_t in_flight_ = 0;
};

}  // namespace ctxrank

#endif  // CTXRANK_COMMON_ADMISSION_LIMITER_H_
