#include "common/rng.h"

#include <cmath>

namespace ctxrank {

namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's nearly-divisionless method with rejection for exactness.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  if (has_gauss_) {
    has_gauss_ = false;
    return gauss_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  gauss_ = r * std::sin(theta);
  has_gauss_ = true;
  return r * std::cos(theta);
}

size_t Rng::NextZipf(size_t n, double s) {
  if (n <= 1) return 0;
  // Rejection-inversion (Hormann & Derflinger) is overkill here; corpus
  // generation samples at most a few million values, so the classic
  // rejection sampler over the harmonic envelope is fast enough and exact.
  // Draw rank r in [1, n] with P(r) proportional to r^-s.
  const double b = std::pow(2.0, s - 1.0);
  while (true) {
    const double u = NextDouble();
    const double v = NextDouble();
    const double x = std::floor(std::pow(u, -1.0 / (s - 1.0 == 0.0 ? 1e-9 : s - 1.0)));
    // For s == 1 the inversion above degenerates; fall back to simple CDF walk
    // for tiny n in that case.
    if (s <= 1.0 + 1e-12) {
      // CDF-walk: O(n) but only taken for s ~= 1 with small n in practice.
      double norm = 0.0;
      for (size_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(i, s);
      double target = u * norm, acc = 0.0;
      for (size_t i = 1; i <= n; ++i) {
        acc += 1.0 / std::pow(i, s);
        if (acc >= target) return i - 1;
      }
      return n - 1;
    }
    if (x < 1.0 || x > static_cast<double>(n)) continue;
    const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<size_t>(x) - 1;
    }
  }
}

int Rng::NextPoisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda > 30.0) {
    // Normal approximation with continuity correction.
    const double v = NextGaussian() * std::sqrt(lambda) + lambda + 0.5;
    return v < 0.0 ? 0 : static_cast<int>(v);
  }
  const double limit = std::exp(-lambda);
  double prod = NextDouble();
  int k = 0;
  while (prod > limit) {
    prod *= NextDouble();
    ++k;
  }
  return k;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return weights.size();
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    acc += weights[i];
    if (acc >= target) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  std::vector<size_t> out;
  if (k >= n) {
    out.resize(n);
    for (size_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  out.reserve(k);
  // Floyd's algorithm would need a set; for the corpus-generation sizes here
  // a partial Fisher-Yates over an index array is simpler and O(n).
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + NextBounded(n - i);
    std::swap(idx[i], idx[j]);
    out.push_back(idx[i]);
  }
  return out;
}

Rng Rng::Fork(uint64_t stream_id) const {
  SplitMix64 sm(s_[0] ^ (stream_id * 0x9e3779b97f4a7c15ULL) ^ s_[3]);
  return Rng(sm.Next());
}

}  // namespace ctxrank
