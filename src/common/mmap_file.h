// Read-only memory-mapped file (RAII). The snapshot loader maps the file
// once and serves query structures directly out of the mapping.
#ifndef CTXRANK_COMMON_MMAP_FILE_H_
#define CTXRANK_COMMON_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <utility>

#include "common/status.h"

namespace ctxrank {

/// \brief A read-only mapping of a whole file. Movable, not copyable; the
/// mapping lives until destruction. An empty file maps to data() == nullptr
/// with size() == 0.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  static Result<MmapFile> Open(const std::string& path);

  const char* data() const { return static_cast<const char*>(data_); }
  size_t size() const { return size_; }
  bool mapped() const { return data_ != nullptr; }

 private:
  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace ctxrank

#endif  // CTXRANK_COMMON_MMAP_FILE_H_
