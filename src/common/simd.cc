#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if !defined(CTXRANK_NO_SIMD) && (defined(__x86_64__) || defined(__i386__))
#define CTXRANK_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#else
#define CTXRANK_SIMD_HAVE_AVX2 0
#endif

namespace ctxrank::simd {
namespace {

Level DetectLevel() {
#if CTXRANK_SIMD_HAVE_AVX2
  // Runtime escape hatch: CTXRANK_SIMD=scalar forces the portable kernels
  // in an AVX2-capable build (verify_perf.sh uses it to A/B one binary).
  if (const char* env = std::getenv("CTXRANK_SIMD");
      env != nullptr && std::strcmp(env, "scalar") == 0) {
    return Level::kScalar;
  }
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
  return Level::kScalar;
}

Level DetectedLevel() {
  static const Level detected = DetectLevel();
  return detected;
}

std::atomic<Level> g_forced{Level{-1}};  // -1 sentinel: not forced.

size_t AdmitPrefixScalar(const double* w, size_t stride, size_t n,
                         const AdmitBound& b) {
  for (size_t i = 0; i < n; ++i) {
    if (!b.Admits(w[i * stride])) return i;
  }
  return n;
}

#if CTXRANK_SIMD_HAVE_AVX2

/// Evaluates the admission chain on 4 weight lanes and returns the lane
/// mask of passing lanes (bit i set <=> lane i admits). Same operation
/// order as AdmitBound::Admits.
__attribute__((target("avx2"))) inline int AdmitMask4(__m256d vw,
                                                      const AdmitBound& b) {
  const __m256d dot_ub =
      _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(b.qw), vw),
                    _mm256_set1_pd(b.tail));
  const __m256d slack = _mm256_set1_pd(b.slack);
  const __m256d match_ub = _mm256_add_pd(
      _mm256_mul_pd(_mm256_add_pd(dot_ub, slack),
                    _mm256_set1_pd(b.inv_denom)),
      slack);
  const __m256d ub = _mm256_add_pd(
      _mm256_set1_pd(b.base),
      _mm256_mul_pd(_mm256_set1_pd(b.wm), match_ub));
  return _mm256_movemask_pd(
      _mm256_cmp_pd(ub, _mm256_set1_pd(b.theta), _CMP_GE_OQ));
}

__attribute__((target("avx2"))) size_t AdmitPrefixAvx2(const double* w,
                                                       size_t n,
                                                       const AdmitBound& b) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int mask = AdmitMask4(_mm256_loadu_pd(w + i), b);
    if (mask != 0xF) {
      // First failing lane: lowest zero bit of the mask.
      return i + static_cast<size_t>(__builtin_ctz(~static_cast<unsigned>(mask)));
    }
  }
  for (; i < n; ++i) {
    if (!b.Admits(w[i])) return i;
  }
  return n;
}

__attribute__((target("avx2"))) size_t AdmitPrefixStridedAvx2(
    const double* w, size_t stride, size_t n, const AdmitBound& b) {
  const long long s = static_cast<long long>(stride);
  const __m256i idx = _mm256_set_epi64x(3 * s, 2 * s, s, 0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vw =
        _mm256_i64gather_pd(w + i * stride, idx, sizeof(double));
    const int mask = AdmitMask4(vw, b);
    if (mask != 0xF) {
      return i + static_cast<size_t>(__builtin_ctz(~static_cast<unsigned>(mask)));
    }
  }
  for (; i < n; ++i) {
    if (!b.Admits(w[i * stride])) return i;
  }
  return n;
}

#endif  // CTXRANK_SIMD_HAVE_AVX2

}  // namespace

Level ActiveLevel() {
  const Level forced = g_forced.load(std::memory_order_relaxed);
  if (forced != Level{-1}) return forced;
  return DetectedLevel();
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kAvx2:
      return "avx2";
    case Level::kScalar:
    default:
      return "scalar";
  }
}

void ForceLevelForTest(Level level) {
  // Never force above what the build/CPU can execute.
  if (level == Level::kAvx2 && DetectedLevel() != Level::kAvx2) {
    level = DetectedLevel();
  }
  g_forced.store(level, std::memory_order_relaxed);
}

void ResetLevelForTest() {
  g_forced.store(Level{-1}, std::memory_order_relaxed);
}

size_t AdmitPrefix(const double* w, size_t n, const AdmitBound& bound) {
#if CTXRANK_SIMD_HAVE_AVX2
  if (ActiveLevel() == Level::kAvx2) return AdmitPrefixAvx2(w, n, bound);
#endif
  return AdmitPrefixScalar(w, 1, n, bound);
}

size_t AdmitPrefixStrided(const double* w, size_t stride, size_t n,
                          const AdmitBound& bound) {
#if CTXRANK_SIMD_HAVE_AVX2
  if (ActiveLevel() == Level::kAvx2) {
    return AdmitPrefixStridedAvx2(w, stride, n, bound);
  }
#endif
  return AdmitPrefixScalar(w, stride, n, bound);
}

}  // namespace ctxrank::simd
