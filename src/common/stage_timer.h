// Lightweight pipeline instrumentation: RAII scope timers that aggregate
// wall-clock and process-CPU time per named stage. With the parallel
// prestige engines, cpu/wall > 1 on a stage is the direct observable for
// "the pool is actually working" — perf_stages and the CLI both dump it.
#ifndef CTXRANK_COMMON_STAGE_TIMER_H_
#define CTXRANK_COMMON_STAGE_TIMER_H_

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace ctxrank {

/// \brief Aggregates per-stage timings. Not thread-safe: time stages from
/// one driver thread (the stages themselves may be internally parallel —
/// that is what the CPU column measures). Stages keep first-use order;
/// timing the same stage name again accumulates into its row.
class StageTimer {
 public:
  struct Stage {
    std::string name;
    double wall_seconds = 0.0;
    double cpu_seconds = 0.0;
    int calls = 0;
  };

  /// \brief RAII scope: records the enclosed wall/CPU interval into the
  /// owning timer when destroyed. Move-only.
  class Scope {
   public:
    Scope(StageTimer* timer, size_t index);
    Scope(Scope&& other) noexcept;
    Scope& operator=(Scope&&) = delete;
    Scope(const Scope&) = delete;
    ~Scope();

   private:
    StageTimer* timer_;  // Null after move-from.
    size_t index_;
    std::chrono::steady_clock::time_point wall_start_;
    double cpu_start_;
  };

  /// Starts timing `stage`; stops when the returned Scope dies.
  Scope Time(std::string stage);

  /// Times a callable and passes through its result.
  template <typename Fn>
  auto Time(std::string stage, Fn&& fn) {
    const Scope scope = Time(std::move(stage));
    return std::forward<Fn>(fn)();
  }

  const std::vector<Stage>& stages() const { return stages_; }

  /// Renders an aligned table: stage | wall | cpu | cpu/wall | calls.
  std::string ToString() const;

 private:
  friend class Scope;
  size_t IndexOf(std::string stage);
  void Record(size_t index, double wall_seconds, double cpu_seconds);

  std::vector<Stage> stages_;
};

}  // namespace ctxrank

#endif  // CTXRANK_COMMON_STAGE_TIMER_H_
