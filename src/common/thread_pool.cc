#include "common/thread_pool.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <utility>

#include "common/metrics.h"

namespace ctxrank {
namespace {

/// Pool telemetry, aggregated across every pool in the process (transient
/// ParallelFor pools included): instantaneous queue depth and the running
/// count of executed tasks.
struct PoolMetrics {
  obs::Gauge& queue_depth;
  obs::Counter& tasks;
};

PoolMetrics& Metrics() {
  static PoolMetrics m{
      obs::MetricsRegistry::Instance().GetGauge("ctxrank_threadpool_queue_depth"),
      obs::MetricsRegistry::Instance().GetCounter(
          "ctxrank_threadpool_tasks_total")};
  return m;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  Metrics().queue_depth.Add(1);
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    Metrics().queue_depth.Sub(1);
    task();
    Metrics().tasks.Increment();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    all_done_.notify_all();
  }
}

size_t ResolveNumThreads(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body,
                 const ParallelForOptions& options) {
  if (n == 0) return;
  const size_t grain = std::max<size_t>(1, options.grain);
  size_t threads = ResolveNumThreads(options.num_threads);
  // One chunk per thread, but never chunks smaller than the grain.
  threads = std::min(threads, (n + grain - 1) / grain);
  if (threads <= 1) {
    body(0, n);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mu;
  auto run_chunk = [&](size_t begin, size_t end) {
    try {
      body(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
  };

  // Static partition: chunk c covers [c*base + min(c, extra), ...) so sizes
  // differ by at most one and boundaries depend only on (n, threads).
  const size_t base = n / threads;
  const size_t extra = n % threads;
  auto chunk_begin = [&](size_t c) { return c * base + std::min(c, extra); };

  ThreadPool* pool = options.pool;
  std::unique_ptr<ThreadPool> transient;
  if (pool == nullptr) {
    // The calling thread runs chunk 0, so threads-1 workers suffice.
    transient = std::make_unique<ThreadPool>(threads - 1);
    pool = transient.get();
  }
  for (size_t c = 1; c < threads; ++c) {
    pool->Submit(
        [&, c] { run_chunk(chunk_begin(c), chunk_begin(c + 1)); });
  }
  run_chunk(chunk_begin(0), chunk_begin(1));
  pool->Wait();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ctxrank
