#include "pattern/pattern_builder.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

namespace ctxrank::pattern {

namespace {

using Phrase = std::vector<text::TermId>;

std::vector<text::TermId> SortedUnique(std::vector<text::TermId> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

/// Set intersection size for sorted unique vectors.
size_t IntersectionSize(const std::vector<text::TermId>& a,
                        const std::vector<text::TermId>& b) {
  size_t i = 0, j = 0, n = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++n;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return n;
}

MiddleType ClassifyMiddle(const Phrase& middle,
                          const std::unordered_set<text::TermId>& ctx_words) {
  bool has_ctx = false, has_other = false;
  for (text::TermId w : middle) {
    if (ctx_words.count(w) > 0) {
      has_ctx = true;
    } else {
      has_other = true;
    }
  }
  if (has_ctx && has_other) return MiddleType::kMixed;
  if (has_ctx) return MiddleType::kContextOnly;
  return MiddleType::kFrequentOnly;
}

}  // namespace

std::vector<Pattern> BuildPatterns(
    const std::vector<std::vector<text::TermId>>& training_docs,
    const std::vector<text::TermId>& context_term_words,
    const PatternBuilderOptions& options) {
  std::vector<Pattern> patterns;
  if (training_docs.empty()) return patterns;

  // --- significant terms: context term words + mined frequent phrases ---
  std::vector<Phrase> significant;
  if (!context_term_words.empty()) {
    // The full term-name sequence and each individual name word.
    significant.push_back(context_term_words);
    for (text::TermId w : context_term_words) significant.push_back({w});
  }
  const std::vector<MinedPhrase> mined =
      MineFrequentPhrases(training_docs, options.miner);
  for (const MinedPhrase& m : mined) {
    // Unigrams mined from prose are too unselective to anchor a pattern on
    // their own unless they also appear in the context term.
    if (m.words.size() >= 2) significant.push_back(m.words);
  }
  std::sort(significant.begin(), significant.end());
  significant.erase(std::unique(significant.begin(), significant.end()),
                    significant.end());

  const std::unordered_set<text::TermId> ctx_words(
      context_term_words.begin(), context_term_words.end());

  // --- regular patterns: one per distinct middle tuple, with left/right
  //     accumulated from every occurrence window ---
  struct Accum {
    std::set<text::TermId> left, right;
    int occurrences = 0;
    int papers = 0;
  };
  std::map<Phrase, Accum> accums;
  const size_t w = static_cast<size_t>(options.window);
  for (const auto& doc : training_docs) {
    for (const Phrase& sig : significant) {
      if (sig.empty() || doc.size() < sig.size()) continue;
      bool found = false;
      for (size_t i = 0; i + sig.size() <= doc.size(); ++i) {
        if (!std::equal(sig.begin(), sig.end(),
                        doc.begin() + static_cast<long>(i))) {
          continue;
        }
        found = true;
        Accum& acc = accums[sig];
        ++acc.occurrences;
        const size_t lo = i >= w ? i - w : 0;
        for (size_t k = lo; k < i; ++k) acc.left.insert(doc[k]);
        const size_t hi = std::min(doc.size(), i + sig.size() + w);
        for (size_t k = i + sig.size(); k < hi; ++k) acc.right.insert(doc[k]);
      }
      if (found) ++accums[sig].papers;
    }
  }
  for (auto& [middle, acc] : accums) {
    Pattern p;
    p.kind = PatternKind::kRegular;
    p.middle = middle;
    p.left.assign(acc.left.begin(), acc.left.end());
    p.right.assign(acc.right.begin(), acc.right.end());
    p.middle_type = ClassifyMiddle(middle, ctx_words);
    p.occurrence_freq = acc.occurrences;
    p.paper_freq = acc.papers;
    patterns.push_back(std::move(p));
  }
  // Keep the most supported regular patterns.
  std::sort(patterns.begin(), patterns.end(),
            [](const Pattern& a, const Pattern& b) {
              if (a.paper_freq != b.paper_freq) {
                return a.paper_freq > b.paper_freq;
              }
              if (a.occurrence_freq != b.occurrence_freq) {
                return a.occurrence_freq > b.occurrence_freq;
              }
              return a.middle < b.middle;
            });
  if (patterns.size() > static_cast<size_t>(options.max_regular_patterns)) {
    patterns.resize(static_cast<size_t>(options.max_regular_patterns));
  }

  if (!options.build_extended) return patterns;

  // --- extended patterns (joins over the regular set) ---
  const size_t n_regular = patterns.size();
  std::vector<Pattern> extended;
  size_t side_count = 0, middle_count = 0;
  for (size_t i = 0; i < n_regular; ++i) {
    for (size_t j = 0; j < n_regular; ++j) {
      if (i == j) continue;
      Pattern joined;
      if (side_count < static_cast<size_t>(options.max_extended_patterns) &&
          TrySideJoin(patterns[i], patterns[j], &joined)) {
        joined.component1 = static_cast<int>(i);
        joined.component2 = static_cast<int>(j);
        extended.push_back(joined);
        ++side_count;
      }
      if (middle_count < static_cast<size_t>(options.max_extended_patterns) &&
          TryMiddleJoin(patterns[i], patterns[j], &joined)) {
        joined.component1 = static_cast<int>(i);
        joined.component2 = static_cast<int>(j);
        extended.push_back(joined);
        ++middle_count;
      }
    }
  }
  patterns.insert(patterns.end(), extended.begin(), extended.end());
  return patterns;
}

bool TrySideJoin(const Pattern& p1, const Pattern& p2, Pattern* out) {
  if (p1.middle == p2.middle) return false;
  if (IntersectionSize(p1.right, p2.left) == 0) return false;
  Pattern p;
  p.kind = PatternKind::kSideJoined;
  p.left = p1.left;
  p.middle = p1.middle;
  p.middle.insert(p.middle.end(), p2.middle.begin(), p2.middle.end());
  p.right = p2.right;
  p.middle_type = p1.middle_type == p2.middle_type
                      ? p1.middle_type
                      : MiddleType::kMixed;
  p.occurrence_freq = std::min(p1.occurrence_freq, p2.occurrence_freq);
  p.paper_freq = std::min(p1.paper_freq, p2.paper_freq);
  *out = std::move(p);
  return true;
}

bool TryMiddleJoin(const Pattern& p1, const Pattern& p2, Pattern* out) {
  if (p1.middle == p2.middle) return false;
  // Overlap between P1's middle and P2's surrounding word sets.
  const std::vector<text::TermId> m1 = SortedUnique(p1.middle);
  const std::vector<text::TermId> m2 = SortedUnique(p2.middle);
  std::vector<text::TermId> p2_sides = p2.left;
  p2_sides.insert(p2_sides.end(), p2.right.begin(), p2.right.end());
  p2_sides = SortedUnique(std::move(p2_sides));
  const size_t o1 = IntersectionSize(m1, p2_sides);
  if (o1 == 0) return false;
  std::vector<text::TermId> p1_sides = p1.left;
  p1_sides.insert(p1_sides.end(), p1.right.begin(), p1.right.end());
  p1_sides = SortedUnique(std::move(p1_sides));
  const size_t o2 = IntersectionSize(m2, p1_sides);
  Pattern p;
  p.kind = PatternKind::kMiddleJoined;
  p.left = p1.left;
  p.middle = p1.middle;
  p.middle.insert(p.middle.end(), p2.middle.begin(), p2.middle.end());
  p.right = p2.right;
  p.middle_type = p1.middle_type == p2.middle_type
                      ? p1.middle_type
                      : MiddleType::kMixed;
  p.occurrence_freq = std::min(p1.occurrence_freq, p2.occurrence_freq);
  p.paper_freq = std::min(p1.paper_freq, p2.paper_freq);
  // DegreeOfOverlap: fraction of each middle included in the other
  // pattern's side tuples (paper §3.3 / ref [4]).
  p.doo1 = static_cast<double>(o1) / static_cast<double>(m1.size());
  p.doo2 = m2.empty() ? 0.0
                      : static_cast<double>(o2) / static_cast<double>(m2.size());
  *out = std::move(p);
  return true;
}

}  // namespace ctxrank::pattern
