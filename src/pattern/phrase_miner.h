// Apriori-style frequent phrase mining (paper §3.3 cites Agrawal &
// Srikant's apriori [5]): finds contiguous word sequences frequent in a
// context's training papers. These "significant terms", together with the
// context term's own words, become pattern middle tuples.
#ifndef CTXRANK_PATTERN_PHRASE_MINER_H_
#define CTXRANK_PATTERN_PHRASE_MINER_H_

#include <vector>

#include "text/vocabulary.h"

namespace ctxrank::pattern {

struct PhraseMinerOptions {
  /// Minimum number of training papers a phrase must occur in.
  int min_support = 2;
  /// Longest phrase mined.
  int max_phrase_length = 4;
  /// Keep at most this many phrases per length (by support).
  int max_phrases_per_length = 40;
};

struct MinedPhrase {
  std::vector<text::TermId> words;  // Contiguous sequence.
  int support = 0;                  // Distinct training papers containing it.
  int occurrences = 0;              // Total occurrences across papers.
};

/// Mines frequent contiguous phrases from `documents` (each a token-id
/// sequence, typically one training paper's text). Classic apriori
/// level-wise search: frequent k-phrases are extended by one token only if
/// both their k-prefixes and k-suffixes are frequent.
std::vector<MinedPhrase> MineFrequentPhrases(
    const std::vector<std::vector<text::TermId>>& documents,
    const PhraseMinerOptions& options = {});

}  // namespace ctxrank::pattern

#endif  // CTXRANK_PATTERN_PHRASE_MINER_H_
