#include "pattern/phrase_miner.h"

#include <algorithm>
#include <map>
#include <set>

namespace ctxrank::pattern {

namespace {

using Phrase = std::vector<text::TermId>;

struct Counts {
  int support = 0;
  int occurrences = 0;
};

/// Counts every contiguous k-gram of `doc` that passes `keep`.
void CountKGrams(const std::vector<Phrase>& documents, size_t k,
                 const std::set<Phrase>& candidates,
                 std::map<Phrase, Counts>& counts) {
  Phrase gram(k);
  for (const Phrase& doc : documents) {
    std::set<Phrase> seen_in_doc;
    if (doc.size() < k) continue;
    for (size_t i = 0; i + k <= doc.size(); ++i) {
      std::copy(doc.begin() + static_cast<long>(i),
                doc.begin() + static_cast<long>(i + k), gram.begin());
      if (!candidates.empty() && candidates.count(gram) == 0) continue;
      Counts& c = counts[gram];
      ++c.occurrences;
      if (seen_in_doc.insert(gram).second) ++c.support;
    }
  }
}

}  // namespace

std::vector<MinedPhrase> MineFrequentPhrases(
    const std::vector<std::vector<text::TermId>>& documents,
    const PhraseMinerOptions& options) {
  std::vector<MinedPhrase> result;
  if (documents.empty() || options.min_support <= 0) return result;

  auto keep_top = [&](std::map<Phrase, Counts>& counts) {
    // Prune below min_support, then keep the strongest per level.
    std::vector<std::pair<Phrase, Counts>> kept;
    for (const auto& [phrase, c] : counts) {
      if (c.support >= options.min_support) kept.emplace_back(phrase, c);
    }
    if (kept.size() > static_cast<size_t>(options.max_phrases_per_length)) {
      std::partial_sort(
          kept.begin(),
          kept.begin() + options.max_phrases_per_length, kept.end(),
          [](const auto& a, const auto& b) {
            if (a.second.support != b.second.support) {
              return a.second.support > b.second.support;
            }
            return a.first < b.first;
          });
      kept.resize(static_cast<size_t>(options.max_phrases_per_length));
    }
    return kept;
  };

  // Level 1: frequent unigrams.
  std::map<Phrase, Counts> counts;
  CountKGrams(documents, 1, {}, counts);
  auto frequent = keep_top(counts);
  for (const auto& [phrase, c] : frequent) {
    result.push_back({phrase, c.support, c.occurrences});
  }

  // Levels 2..max: apriori join — candidate (k+1)-grams whose k-prefix and
  // k-suffix are both frequent k-grams.
  for (int k = 1; k < options.max_phrase_length && !frequent.empty(); ++k) {
    std::set<Phrase> freq_set;
    for (const auto& [phrase, c] : frequent) freq_set.insert(phrase);
    std::set<Phrase> candidates;
    for (const auto& [a, ca] : frequent) {
      for (const auto& [b, cb] : frequent) {
        // Join a and b when a's tail (k-1) equals b's head (k-1).
        if (k > 1 && !std::equal(a.begin() + 1, a.end(), b.begin(),
                                 b.end() - 1)) {
          continue;
        }
        Phrase cand = a;
        cand.push_back(b.back());
        // Apriori pruning: every k-subsequence must be frequent; for
        // contiguous phrases only prefix and suffix matter.
        Phrase suffix(cand.begin() + 1, cand.end());
        if (freq_set.count(suffix) == 0) continue;
        candidates.insert(std::move(cand));
      }
    }
    if (candidates.empty()) break;
    std::map<Phrase, Counts> next_counts;
    CountKGrams(documents, static_cast<size_t>(k) + 1, candidates,
                next_counts);
    frequent = keep_top(next_counts);
    for (const auto& [phrase, c] : frequent) {
      result.push_back({phrase, c.support, c.occurrences});
    }
  }
  return result;
}

}  // namespace ctxrank::pattern
