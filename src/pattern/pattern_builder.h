// Builds a context's pattern set from its training (evidence) papers:
// regular patterns around every significant-term occurrence, then
// side-joined and middle-joined extended patterns (paper §3.3 / ref [4]).
#ifndef CTXRANK_PATTERN_PATTERN_BUILDER_H_
#define CTXRANK_PATTERN_PATTERN_BUILDER_H_

#include <vector>

#include "pattern/pattern.h"
#include "pattern/phrase_miner.h"
#include "text/vocabulary.h"

namespace ctxrank::pattern {

struct PatternBuilderOptions {
  /// Words captured on each side of a significant-term occurrence.
  int window = 2;
  PhraseMinerOptions miner;
  /// Cap on regular patterns kept (by paper frequency).
  int max_regular_patterns = 60;
  /// Cap on extended patterns of each kind.
  int max_extended_patterns = 30;
  /// Build side-/middle-joined patterns (the paper's simplified
  /// experimental variant turns this off, §4).
  bool build_extended = true;
};

/// \brief Constructs patterns for one context.
///
/// `context_term_words`: analyzed words of the ontology term name — one
/// significant term per §3.3 source (i). `training_docs`: analyzed token
/// sequences of the context's evidence papers — mined for frequent phrases,
/// §3.3 source (ii).
std::vector<Pattern> BuildPatterns(
    const std::vector<std::vector<text::TermId>>& training_docs,
    const std::vector<text::TermId>& context_term_words,
    const PatternBuilderOptions& options = {});

/// Joins two regular patterns side-by-side when P1.right overlaps P2.left:
/// <L1, M1·M2, R2>. Returns false if there is no overlap.
bool TrySideJoin(const Pattern& p1, const Pattern& p2, Pattern* out);

/// Joins two patterns when P1's middle overlaps P2's left/right word sets:
/// <L1, M1·M2, R2> with DegreeOfOverlap factors recorded. Returns false if
/// there is no overlap.
bool TryMiddleJoin(const Pattern& p1, const Pattern& p2, Pattern* out);

}  // namespace ctxrank::pattern

#endif  // CTXRANK_PATTERN_PATTERN_BUILDER_H_
