// Pattern confidence scoring (paper §3.3):
//   RegularPatternScore = BaseScore * (1/PaperCoverage)^t
//   BaseScore = MiddleTypeScore + TotalTermScore
//             + c * (PatternOccFreq + PatternPaperFreq)
//   Score(side-joined)   = (Score(P1) + Score(P2))^2
//   Score(middle-joined) = DOO1*Score(P1) + DOO2*Score(P2)
#ifndef CTXRANK_PATTERN_PATTERN_SCORER_H_
#define CTXRANK_PATTERN_PATTERN_SCORER_H_

#include <functional>
#include <vector>

#include "pattern/pattern.h"

namespace ctxrank::pattern {

struct PatternScorerOptions {
  /// Middle-type scores: frequent-only ("high"), context-only ("higher"),
  /// mixed ("highest").
  double middle_type_scores[3] = {1.0, 2.0, 3.0};
  /// Coverage exponent t.
  double t = 0.5;
  /// Frequency weight c.
  double c = 0.1;
};

/// Reports the fraction of database papers containing a middle tuple
/// (PaperCoverage). Must return a value in (0, 1]; 0/absent is clamped.
using CoverageFn =
    std::function<double(const std::vector<text::TermId>& middle)>;

/// Reports the selectivity of a context-term word: 1 minus the fraction of
/// ontology term names containing the word (rare words are selective).
using SelectivityFn = std::function<double(text::TermId word)>;

/// \brief Assigns `score` to every pattern in place. Regular patterns are
/// scored first; extended patterns are then scored from the *component*
/// scores, which we approximate by scoring their halves as regular patterns
/// whose statistics were recorded at join time.
class PatternScorer {
 public:
  PatternScorer(CoverageFn coverage, SelectivityFn selectivity,
                PatternScorerOptions options = {});

  /// Scores one regular pattern (kind must be kRegular).
  double ScoreRegular(const Pattern& pattern) const;

  /// Scores all patterns in place. Regular patterns are scored directly;
  /// extended patterns combine their components' scores via the recorded
  /// component indices (components always precede joins in the vector
  /// BuildPatterns emits).
  void ScoreAll(std::vector<Pattern>& patterns) const;

 private:
  CoverageFn coverage_;
  SelectivityFn selectivity_;
  PatternScorerOptions options_;
};

}  // namespace ctxrank::pattern

#endif  // CTXRANK_PATTERN_PATTERN_SCORER_H_
