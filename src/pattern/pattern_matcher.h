// Pattern-to-paper matching and the pattern-based paper score
// Score(P) = sum over matching patterns pt of Score(pt) * M(P, pt), where
// the matching strength M depends on (1) the section the match occurs in
// and (2) the similarity between the pattern's surroundings and the
// observed surroundings (paper §3.3).
#ifndef CTXRANK_PATTERN_PATTERN_MATCHER_H_
#define CTXRANK_PATTERN_PATTERN_MATCHER_H_

#include <vector>

#include "corpus/tokenized_corpus.h"
#include "pattern/pattern.h"

namespace ctxrank::pattern {

struct PatternMatcherOptions {
  /// Weight of a match found in each section (title, abstract, body, index
  /// terms). Title and curated index terms carry more signal than prose.
  double section_weights[corpus::kNumTextSections] = {1.0, 0.7, 0.4, 0.9};
  /// Simplified matching (paper §4's experimental variant): only the middle
  /// tuple is matched and M reduces to the section weight. When false, the
  /// observed left/right windows are compared to the pattern's tuples and
  /// blended into M.
  bool middle_only = true;
  /// Window used to read observed surroundings when middle_only == false.
  int window = 2;
  /// Relative weight of surrounding similarity vs the middle match when
  /// middle_only == false: M = w_s * (middle + sim) with sim in [0, 1].
  double surround_weight = 0.5;
};

struct PatternMatch {
  size_t pattern_index;
  corpus::Section section;
  /// Matching strength M(P, pt).
  double strength;
};

/// \brief Matches a context's scored pattern set against papers.
class PatternMatcher {
 public:
  /// `tc` must outlive the matcher.
  PatternMatcher(const corpus::TokenizedCorpus& tc,
                 PatternMatcherOptions options = {});

  /// All pattern matches in `paper` (strongest section per pattern).
  std::vector<PatternMatch> Match(const std::vector<Pattern>& patterns,
                                  corpus::PaperId paper) const;

  /// Pattern-based paper score: sum of Score(pt) * M(P, pt).
  double ScorePaper(const std::vector<Pattern>& patterns,
                    corpus::PaperId paper) const;

  /// Candidate papers that could match any pattern in `patterns`
  /// (postings intersection on middle words; supersedes a full corpus
  /// scan). Sorted, unique.
  std::vector<corpus::PaperId> CandidatePapers(
      const std::vector<Pattern>& patterns) const;

 private:
  const corpus::TokenizedCorpus* tc_;
  PatternMatcherOptions options_;
};

}  // namespace ctxrank::pattern

#endif  // CTXRANK_PATTERN_PATTERN_MATCHER_H_
