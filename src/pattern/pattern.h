// Textual patterns (paper §3.3 and its reference [4], "Annotating Genes
// Using Textual Patterns"): a pattern is a three-tuple <left, middle,
// right> where `middle` is a sequence of significant-term words and
// left/right are the word sets observed around it in training papers.
// Extended patterns are built by joining regular patterns.
#ifndef CTXRANK_PATTERN_PATTERN_H_
#define CTXRANK_PATTERN_PATTERN_H_

#include <string>
#include <vector>

#include "text/vocabulary.h"

namespace ctxrank::pattern {

enum class PatternKind {
  kRegular = 0,
  kSideJoined = 1,
  kMiddleJoined = 2,
};

/// Composition of the middle tuple (paper §3.3, MiddleTypeScore): ordered
/// by increasing score.
enum class MiddleType {
  /// Only frequent (mined) terms — "high".
  kFrequentOnly = 0,
  /// Only words from the context term's name — "higher".
  kContextOnly = 1,
  /// Both frequent and context-term words — "highest".
  kMixed = 2,
};

struct Pattern {
  PatternKind kind = PatternKind::kRegular;
  /// Word *set* to the left of the middle (sorted, unique term ids).
  std::vector<text::TermId> left;
  /// Word *sequence* forming the significant term.
  std::vector<text::TermId> middle;
  /// Word *set* to the right of the middle (sorted, unique).
  std::vector<text::TermId> right;
  MiddleType middle_type = MiddleType::kFrequentOnly;
  /// Occurrences of the middle tuple across the training papers.
  int occurrence_freq = 0;
  /// Number of distinct training papers containing the middle tuple.
  int paper_freq = 0;
  /// Confidence score (assigned by PatternScorer).
  double score = 0.0;
  /// For middle-joined patterns: the two degrees of overlap.
  double doo1 = 0.0;
  double doo2 = 0.0;
  /// For extended patterns: indices of the component regular patterns
  /// within the same pattern vector (-1 for regular patterns).
  int component1 = -1;
  int component2 = -1;
};

/// Renders a pattern as "{left} [middle words] {right}" for debugging.
std::string PatternToString(const Pattern& pattern,
                            const text::Vocabulary& vocab);

}  // namespace ctxrank::pattern

#endif  // CTXRANK_PATTERN_PATTERN_H_
