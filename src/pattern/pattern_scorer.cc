#include "pattern/pattern_scorer.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace ctxrank::pattern {

PatternScorer::PatternScorer(CoverageFn coverage, SelectivityFn selectivity,
                             PatternScorerOptions options)
    : coverage_(std::move(coverage)),
      selectivity_(std::move(selectivity)),
      options_(options) {}

double PatternScorer::ScoreRegular(const Pattern& pattern) const {
  const double middle_type_score =
      options_.middle_type_scores[static_cast<int>(pattern.middle_type)];
  // TotalTermScore: sum of selectivities of the context-term words in the
  // middle. Selectivity is supplied per word; non-context words contribute
  // 0 by the provider's contract.
  double total_term_score = 0.0;
  for (text::TermId w : pattern.middle) total_term_score += selectivity_(w);
  // Frequencies are log-damped: the paper's raw counts explode for large
  // training sets; log1p keeps the ordering while bounding the magnitude.
  const double freq_score =
      options_.c * (std::log1p(pattern.occurrence_freq) +
                    std::log1p(pattern.paper_freq));
  const double base = middle_type_score + total_term_score + freq_score;
  double coverage = coverage_(pattern.middle);
  coverage = std::clamp(coverage, 1e-6, 1.0);
  return base * std::pow(1.0 / coverage, options_.t);
}

void PatternScorer::ScoreAll(std::vector<Pattern>& patterns) const {
  for (Pattern& p : patterns) {
    if (p.kind == PatternKind::kRegular) p.score = ScoreRegular(p);
  }
  for (Pattern& p : patterns) {
    if (p.kind == PatternKind::kRegular) continue;
    double s1 = 0.0, s2 = 0.0;
    if (p.component1 >= 0 &&
        p.component1 < static_cast<int>(patterns.size())) {
      s1 = patterns[static_cast<size_t>(p.component1)].score;
    }
    if (p.component2 >= 0 &&
        p.component2 < static_cast<int>(patterns.size())) {
      s2 = patterns[static_cast<size_t>(p.component2)].score;
    }
    if (p.kind == PatternKind::kSideJoined) {
      p.score = (s1 + s2) * (s1 + s2);
    } else {
      p.score = p.doo1 * s1 + p.doo2 * s2;
    }
  }
}

}  // namespace ctxrank::pattern
