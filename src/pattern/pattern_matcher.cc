#include "pattern/pattern_matcher.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace ctxrank::pattern {

namespace {

using corpus::PaperId;
using corpus::Section;

/// Jaccard overlap of a pattern side tuple (sorted unique) with an observed
/// window (arbitrary vector).
double SideSimilarity(const std::vector<text::TermId>& side,
                      std::vector<text::TermId> observed) {
  if (side.empty() && observed.empty()) return 1.0;
  if (side.empty() || observed.empty()) return 0.0;
  std::sort(observed.begin(), observed.end());
  observed.erase(std::unique(observed.begin(), observed.end()),
                 observed.end());
  size_t i = 0, j = 0, inter = 0;
  while (i < side.size() && j < observed.size()) {
    if (side[i] == observed[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (side[i] < observed[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t uni = side.size() + observed.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace

PatternMatcher::PatternMatcher(const corpus::TokenizedCorpus& tc,
                               PatternMatcherOptions options)
    : tc_(&tc), options_(options) {}

std::vector<PatternMatch> PatternMatcher::Match(
    const std::vector<Pattern>& patterns, PaperId paper) const {
  std::vector<PatternMatch> matches;
  const size_t w = static_cast<size_t>(options_.window);
  for (size_t pi = 0; pi < patterns.size(); ++pi) {
    const Pattern& pt = patterns[pi];
    if (pt.middle.empty()) continue;
    double best = 0.0;
    Section best_section = Section::kTitle;
    for (int s = 0; s < corpus::kNumTextSections; ++s) {
      const auto& tokens =
          tc_->SectionTokens(paper, static_cast<Section>(s));
      if (tokens.size() < pt.middle.size()) continue;
      // Cheap bag-of-words prefilter: a section missing any middle word
      // cannot contain the phrase, and most sections miss.
      if (!tc_->SectionContainsAllTerms(paper, static_cast<Section>(s),
                                        pt.middle)) {
        continue;
      }
      const size_t limit = tokens.size() - pt.middle.size();
      size_t found = SIZE_MAX;
      int occurrences = 0;
      for (size_t i = 0; i <= limit; ++i) {
        if (std::equal(pt.middle.begin(), pt.middle.end(),
                       tokens.begin() + static_cast<long>(i))) {
          if (found == SIZE_MAX) found = i;
          ++occurrences;
        }
      }
      if (found == SIZE_MAX) continue;
      // Matching strength grows with repeated occurrences but saturates:
      // a pattern seen three times in the abstract is stronger evidence
      // than once, but thirty mentions are not ten times stronger.
      double strength = options_.section_weights[s] *
                        (1.0 - std::exp(-static_cast<double>(occurrences) /
                                        2.0));
      if (!options_.middle_only) {
        // Blend in surrounding agreement.
        std::vector<text::TermId> obs_left(
            tokens.begin() +
                static_cast<long>(found >= w ? found - w : 0),
            tokens.begin() + static_cast<long>(found));
        const size_t after = found + pt.middle.size();
        std::vector<text::TermId> obs_right(
            tokens.begin() + static_cast<long>(after),
            tokens.begin() +
                static_cast<long>(std::min(tokens.size(), after + w)));
        const double sim =
            0.5 * (SideSimilarity(pt.left, std::move(obs_left)) +
                   SideSimilarity(pt.right, std::move(obs_right)));
        strength *= (1.0 + options_.surround_weight * sim) /
                    (1.0 + options_.surround_weight);
      }
      if (strength > best) {
        best = strength;
        best_section = static_cast<Section>(s);
      }
    }
    if (best > 0.0) matches.push_back({pi, best_section, best});
  }
  return matches;
}

double PatternMatcher::ScorePaper(const std::vector<Pattern>& patterns,
                                  PaperId paper) const {
  double score = 0.0;
  for (const PatternMatch& m : Match(patterns, paper)) {
    score += patterns[m.pattern_index].score * m.strength;
  }
  return score;
}

std::vector<PaperId> PatternMatcher::CandidatePapers(
    const std::vector<Pattern>& patterns) const {
  std::unordered_set<PaperId> candidates;
  for (const Pattern& pt : patterns) {
    if (pt.middle.empty()) continue;
    std::vector<text::TermId> unique = pt.middle;
    std::sort(unique.begin(), unique.end());
    unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
    for (PaperId p : tc_->PapersContainingAll(unique)) {
      candidates.insert(p);
    }
  }
  std::vector<PaperId> out(candidates.begin(), candidates.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ctxrank::pattern
