#include "pattern/pattern.h"

namespace ctxrank::pattern {

std::string PatternToString(const Pattern& pattern,
                            const text::Vocabulary& vocab) {
  std::string out = "{";
  for (size_t i = 0; i < pattern.left.size(); ++i) {
    if (i > 0) out += ' ';
    out += vocab.term(pattern.left[i]);
  }
  out += "} [";
  for (size_t i = 0; i < pattern.middle.size(); ++i) {
    if (i > 0) out += ' ';
    out += vocab.term(pattern.middle[i]);
  }
  out += "] {";
  for (size_t i = 0; i < pattern.right.size(); ++i) {
    if (i > 0) out += ' ';
    out += vocab.term(pattern.right[i]);
  }
  out += '}';
  return out;
}

}  // namespace ctxrank::pattern
