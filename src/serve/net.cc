#include "serve/net.h"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>

#include "common/endian.h"

namespace ctxrank::serve::net {
namespace {

/// Body layout offsets of a SearchRequest (all little-endian).
constexpr size_t kReqTopK = 0;
constexpr size_t kReqMaxContexts = 4;
constexpr size_t kReqDeadlineMs = 8;
constexpr size_t kReqFlags = 12;
constexpr size_t kReqSemanticExpansion = 16;
constexpr size_t kReqReserved = 20;
constexpr size_t kReqMinRelevancy = 24;
constexpr size_t kReqWeightPrestige = 32;
constexpr size_t kReqWeightMatching = 40;
constexpr size_t kReqMinContextScore = 48;
constexpr size_t kReqQueryLen = 56;
static_assert(kReqQueryLen + 4 == kRequestFixedBytes);

/// The options block (offsets 0..55) is shared between SearchRequest and
/// ShardSearchRequest bodies; the tails differ.
constexpr size_t kOptionsBytes = 56;
constexpr size_t kShardReqBudgetUs = 56;
constexpr size_t kShardReqNumContexts = 64;
constexpr size_t kShardReqQueryLen = 68;
static_assert(kShardReqQueryLen + 4 == kShardRequestFixedBytes);

/// Body layout offsets of a SearchResponse.
constexpr size_t kRespStatus = 0;
constexpr size_t kRespFlags = 4;
constexpr size_t kRespNumSkipped = 8;
constexpr size_t kRespNumHits = 12;
constexpr size_t kRespMessageLen = 16;
constexpr size_t kRespNumSkippedShards = 20;  // Reserved (0) pre-sharding.
static_assert(kRespNumSkippedShards + 4 == kResponseFixedBytes);

constexpr uint32_t kMaxStatusCode =
    static_cast<uint32_t>(StatusCode::kResourceExhausted);

void AppendFrameHeader(std::string& out, uint8_t type, uint32_t body_len,
                       uint16_t header_flags = 0) {
  out.append(kFrameMagic, kFrameMagicBytes);
  out.push_back(static_cast<char>(type));
  char flags[2];
  StoreLE16(reinterpret_cast<unsigned char*>(flags), header_flags);
  out.append(flags, sizeof(flags));
  AppendLE32(out, body_len);
}

/// Appends the 56-byte options block shared by SearchRequest and
/// ShardSearchRequest bodies.
void AppendOptionsBlock(std::string& out, const context::SearchOptions& o) {
  AppendLE32(out, static_cast<uint32_t>(o.top_k));
  AppendLE32(out, static_cast<uint32_t>(o.max_contexts));
  AppendLE32(out, static_cast<uint32_t>(o.deadline_ms));
  uint32_t flags = 0;
  if (o.exact_scan) flags |= kRequestExactScan;
  if (o.bypass_cache) flags |= kRequestBypassCache;
  AppendLE32(out, flags);
  AppendLE32(out, static_cast<uint32_t>(o.semantic_expansion));
  AppendLE32(out, 0);  // Reserved.
  AppendLEDouble(out, o.min_relevancy);
  AppendLEDouble(out, o.weights.prestige);
  AppendLEDouble(out, o.weights.matching);
  AppendLEDouble(out, o.min_context_score);
}

/// Decodes the shared options block at `p` (kOptionsBytes readable).
Status DecodeOptionsBlock(const char* p, context::SearchOptions& o) {
  o.top_k = LoadLE32(p + kReqTopK);
  o.max_contexts = LoadLE32(p + kReqMaxContexts);
  o.deadline_ms = LoadLE32(p + kReqDeadlineMs);
  const uint32_t flags = LoadLE32(p + kReqFlags);
  if ((flags & ~(kRequestExactScan | kRequestBypassCache)) != 0) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%x", flags);
    return Status::InvalidArgument(
        std::string("unknown SearchRequest flag bits 0x") + buf);
  }
  o.exact_scan = (flags & kRequestExactScan) != 0;
  o.bypass_cache = (flags & kRequestBypassCache) != 0;
  o.semantic_expansion = LoadLE32(p + kReqSemanticExpansion);
  o.min_relevancy = LoadLEDouble(p + kReqMinRelevancy);
  o.weights.prestige = LoadLEDouble(p + kReqWeightPrestige);
  o.weights.matching = LoadLEDouble(p + kReqWeightMatching);
  o.min_context_score = LoadLEDouble(p + kReqMinContextScore);
  return Status::OK();
}

}  // namespace

Frame NextFrame(std::string_view buf, uint32_t max_frame_bytes) {
  Frame frame;
  if (buf.empty()) return frame;  // kNeedMore.
  // Magic check over however many bytes we have: a wrong byte anywhere in
  // the first five is a protocol mismatch immediately — no need to wait
  // for a full header to reject HTTP or garbage.
  const size_t check = buf.size() < kFrameMagicBytes ? buf.size()
                                                     : kFrameMagicBytes;
  if (std::memcmp(buf.data(), kFrameMagic, check) != 0) {
    frame.state = FrameState::kBadMagic;
    frame.error = "frame magic mismatch (expected CTXQ1)";
    return frame;
  }
  if (buf.size() < kFrameHeaderBytes) return frame;  // kNeedMore.
  const uint8_t type = static_cast<uint8_t>(buf[kFrameMagicBytes]);
  const uint16_t flags = LoadLE16(
      reinterpret_cast<const unsigned char*>(buf.data() + kFrameMagicBytes +
                                             1));
  const uint32_t body_len = LoadLE32(buf.data() + kFrameMagicBytes + 3);
  if (type < kFrameSearchRequest || type > kFrameAddPaperResponse) {
    frame.state = FrameState::kBadFrame;
    frame.error = "unknown frame type " + std::to_string(type);
    return frame;
  }
  // The header flags word is a generation tag on SearchResponse frames
  // (see GenerationTag in net.h) and still reserved-zero everywhere else.
  if (flags != 0 && type != kFrameSearchResponse) {
    frame.state = FrameState::kBadFrame;
    frame.error = "nonzero frame flags " + std::to_string(flags) +
                  " on frame type " + std::to_string(type) +
                  " (flags carry data only on SearchResponse)";
    return frame;
  }
  if (body_len > max_frame_bytes) {
    frame.state = FrameState::kOversized;
    frame.error = "frame body of " + std::to_string(body_len) +
                  " bytes exceeds the " + std::to_string(max_frame_bytes) +
                  "-byte limit";
    return frame;
  }
  if (buf.size() < kFrameHeaderBytes + body_len) return frame;  // kNeedMore.
  frame.state = FrameState::kReady;
  frame.type = type;
  frame.flags = flags;
  frame.body = buf.substr(kFrameHeaderBytes, body_len);
  frame.consumed = kFrameHeaderBytes + body_len;
  return frame;
}

std::string EncodeSearchRequest(const WireRequest& request) {
  std::string out;
  out.reserve(kFrameHeaderBytes + kRequestFixedBytes + request.query.size());
  AppendFrameHeader(
      out, kFrameSearchRequest,
      static_cast<uint32_t>(kRequestFixedBytes + request.query.size()));
  AppendOptionsBlock(out, request.options);
  AppendLE32(out, static_cast<uint32_t>(request.query.size()));
  out.append(request.query);
  return out;
}

Result<WireRequest> DecodeSearchRequestBody(std::string_view body) {
  if (body.size() < kRequestFixedBytes) {
    return Status::InvalidArgument(
        "SearchRequest body truncated: " + std::to_string(body.size()) +
        " bytes, need at least " + std::to_string(kRequestFixedBytes));
  }
  const char* p = body.data();
  WireRequest request;
  CTXRANK_RETURN_NOT_OK(DecodeOptionsBlock(p, request.options));
  const uint32_t query_len = LoadLE32(p + kReqQueryLen);
  if (body.size() != kRequestFixedBytes + query_len) {
    return Status::InvalidArgument(
        "SearchRequest body of " + std::to_string(body.size()) +
        " bytes does not match declared query length " +
        std::to_string(query_len));
  }
  request.query.assign(body.substr(kRequestFixedBytes, query_len));
  return request;
}

std::string EncodeShardSearchRequest(const WireShardRequest& request) {
  const size_t body_len = kShardRequestFixedBytes +
                          request.contexts.size() * kContextMatchBytes +
                          request.query.size();
  std::string out;
  out.reserve(kFrameHeaderBytes + body_len);
  AppendFrameHeader(out, kFrameShardSearchRequest,
                    static_cast<uint32_t>(body_len));
  AppendOptionsBlock(out, request.options);
  AppendLE64(out, request.budget_us);
  AppendLE32(out, static_cast<uint32_t>(request.contexts.size()));
  AppendLE32(out, static_cast<uint32_t>(request.query.size()));
  for (const context::ContextMatch& cm : request.contexts) {
    AppendLE32(out, cm.term);
    AppendLEDouble(out, cm.score);
  }
  out.append(request.query);
  return out;
}

Result<WireShardRequest> DecodeShardSearchRequestBody(std::string_view body) {
  if (body.size() < kShardRequestFixedBytes) {
    return Status::InvalidArgument(
        "ShardSearchRequest body truncated: " + std::to_string(body.size()) +
        " bytes, need at least " + std::to_string(kShardRequestFixedBytes));
  }
  const char* p = body.data();
  WireShardRequest request;
  CTXRANK_RETURN_NOT_OK(DecodeOptionsBlock(p, request.options));
  request.budget_us = LoadLE64(p + kShardReqBudgetUs);
  const uint32_t num_contexts = LoadLE32(p + kShardReqNumContexts);
  const uint32_t query_len = LoadLE32(p + kShardReqQueryLen);
  const uint64_t expected =
      static_cast<uint64_t>(kShardRequestFixedBytes) +
      static_cast<uint64_t>(num_contexts) * kContextMatchBytes + query_len;
  if (body.size() != expected) {
    return Status::InvalidArgument(
        "ShardSearchRequest body of " + std::to_string(body.size()) +
        " bytes does not match declared contents (" +
        std::to_string(expected) + " expected)");
  }
  request.contexts.resize(num_contexts);
  const char* cursor = p + kShardRequestFixedBytes;
  for (uint32_t i = 0; i < num_contexts; ++i, cursor += kContextMatchBytes) {
    request.contexts[i].term = LoadLE32(cursor);
    request.contexts[i].score = LoadLEDouble(cursor + 4);
  }
  request.query.assign(cursor, query_len);
  return request;
}

std::string EncodePing() {
  std::string out;
  out.reserve(kFrameHeaderBytes);
  AppendFrameHeader(out, kFramePing, 0);
  return out;
}

std::string EncodePong(const WirePong& pong) {
  std::string out;
  out.reserve(kFrameHeaderBytes + kPongBytes);
  AppendFrameHeader(out, kFramePong, kPongBytes);
  AppendLE32(out, pong.ok ? 1 : 0);
  AppendLE32(out, pong.shard_id);
  AppendLE64(out, pong.generation);
  return out;
}

Result<WirePong> DecodePongBody(std::string_view body) {
  if (body.size() != kPongBytes) {
    return Status::InvalidArgument("Pong body of " +
                                   std::to_string(body.size()) +
                                   " bytes (want " +
                                   std::to_string(kPongBytes) + ")");
  }
  WirePong pong;
  pong.ok = LoadLE32(body.data()) != 0;
  pong.shard_id = LoadLE32(body.data() + 4);
  pong.generation = LoadLE64(body.data() + 8);
  return pong;
}

std::string EncodeAddPaperRequest(const WireAddPaper& paper) {
  const size_t body_len =
      kAddPaperFixedBytes +
      (paper.authors.size() + paper.references.size() +
       paper.evidence_terms.size()) * 4 +
      paper.title.size() + paper.abstract_text.size() + paper.body.size() +
      paper.index_terms.size();
  std::string out;
  out.reserve(kFrameHeaderBytes + body_len);
  AppendFrameHeader(out, kFrameAddPaperRequest,
                    static_cast<uint32_t>(body_len));
  AppendLE32(out, static_cast<uint32_t>(paper.title.size()));
  AppendLE32(out, static_cast<uint32_t>(paper.abstract_text.size()));
  AppendLE32(out, static_cast<uint32_t>(paper.body.size()));
  AppendLE32(out, static_cast<uint32_t>(paper.index_terms.size()));
  AppendLE32(out, static_cast<uint32_t>(paper.authors.size()));
  AppendLE32(out, static_cast<uint32_t>(paper.references.size()));
  AppendLE32(out, static_cast<uint32_t>(paper.evidence_terms.size()));
  AppendLE32(out, 0);  // Reserved.
  for (const uint32_t a : paper.authors) AppendLE32(out, a);
  for (const uint32_t r : paper.references) AppendLE32(out, r);
  for (const uint32_t t : paper.evidence_terms) AppendLE32(out, t);
  out.append(paper.title);
  out.append(paper.abstract_text);
  out.append(paper.body);
  out.append(paper.index_terms);
  return out;
}

Result<WireAddPaper> DecodeAddPaperRequestBody(std::string_view body) {
  if (body.size() < kAddPaperFixedBytes) {
    return Status::InvalidArgument(
        "AddPaperRequest body truncated: " + std::to_string(body.size()) +
        " bytes, need at least " + std::to_string(kAddPaperFixedBytes));
  }
  const char* p = body.data();
  const uint32_t title_len = LoadLE32(p);
  const uint32_t abstract_len = LoadLE32(p + 4);
  const uint32_t paper_body_len = LoadLE32(p + 8);
  const uint32_t index_terms_len = LoadLE32(p + 12);
  const uint32_t num_authors = LoadLE32(p + 16);
  const uint32_t num_references = LoadLE32(p + 20);
  const uint32_t num_evidence = LoadLE32(p + 24);
  if (LoadLE32(p + 28) != 0) {
    return Status::InvalidArgument(
        "AddPaperRequest reserved word is nonzero");
  }
  const uint64_t expected =
      static_cast<uint64_t>(kAddPaperFixedBytes) +
      (static_cast<uint64_t>(num_authors) + num_references + num_evidence) *
          4 +
      static_cast<uint64_t>(title_len) + abstract_len + paper_body_len +
      index_terms_len;
  if (body.size() != expected) {
    return Status::InvalidArgument(
        "AddPaperRequest body of " + std::to_string(body.size()) +
        " bytes does not match declared contents (" +
        std::to_string(expected) + " expected)");
  }
  WireAddPaper paper;
  const char* cursor = p + kAddPaperFixedBytes;
  paper.authors.resize(num_authors);
  for (uint32_t i = 0; i < num_authors; ++i, cursor += 4) {
    paper.authors[i] = LoadLE32(cursor);
  }
  paper.references.resize(num_references);
  for (uint32_t i = 0; i < num_references; ++i, cursor += 4) {
    paper.references[i] = LoadLE32(cursor);
  }
  paper.evidence_terms.resize(num_evidence);
  for (uint32_t i = 0; i < num_evidence; ++i, cursor += 4) {
    paper.evidence_terms[i] = LoadLE32(cursor);
  }
  paper.title.assign(cursor, title_len);
  cursor += title_len;
  paper.abstract_text.assign(cursor, abstract_len);
  cursor += abstract_len;
  paper.body.assign(cursor, paper_body_len);
  cursor += paper_body_len;
  paper.index_terms.assign(cursor, index_terms_len);
  return paper;
}

std::string EncodeAddPaperResponse(const WireAddPaperResponse& response) {
  const size_t body_len = kAddPaperResponseFixedBytes + response.message.size();
  std::string out;
  out.reserve(kFrameHeaderBytes + body_len);
  AppendFrameHeader(out, kFrameAddPaperResponse,
                    static_cast<uint32_t>(body_len));
  AppendLE32(out, static_cast<uint32_t>(response.code));
  AppendLE32(out, response.paper_id);
  AppendLE32(out, response.num_papers);
  AppendLE32(out, static_cast<uint32_t>(response.message.size()));
  AppendLE64(out, response.generation);
  out.append(response.message);
  return out;
}

Result<WireAddPaperResponse> DecodeAddPaperResponseBody(
    std::string_view body) {
  if (body.size() < kAddPaperResponseFixedBytes) {
    return Status::InvalidArgument(
        "AddPaperResponse body truncated: " + std::to_string(body.size()) +
        " bytes, need at least " +
        std::to_string(kAddPaperResponseFixedBytes));
  }
  const char* p = body.data();
  const uint32_t status = LoadLE32(p);
  if (status > kMaxStatusCode) {
    return Status::InvalidArgument("unknown status code " +
                                   std::to_string(status));
  }
  const uint32_t message_len = LoadLE32(p + 12);
  if (body.size() !=
      static_cast<uint64_t>(kAddPaperResponseFixedBytes) + message_len) {
    return Status::InvalidArgument(
        "AddPaperResponse body of " + std::to_string(body.size()) +
        " bytes does not match declared message length " +
        std::to_string(message_len));
  }
  WireAddPaperResponse response;
  response.code = static_cast<StatusCode>(status);
  response.paper_id = LoadLE32(p + 4);
  response.num_papers = LoadLE32(p + 8);
  response.generation = LoadLE64(p + 16);
  response.message.assign(body.substr(kAddPaperResponseFixedBytes));
  return response;
}

std::string EncodeSearchResponse(const context::SearchResponse& response,
                                 uint16_t header_flags) {
  const std::string& message = response.status.message();
  const size_t body_len = kResponseFixedBytes +
                          response.hits.size() * kHitBytes +
                          response.skipped_contexts.size() * 4 +
                          response.skipped_shards.size() * 4 +
                          message.size();
  std::string out;
  out.reserve(kFrameHeaderBytes + body_len);
  AppendFrameHeader(out, kFrameSearchResponse,
                    static_cast<uint32_t>(body_len), header_flags);
  AppendLE32(out, static_cast<uint32_t>(response.status.code()));
  AppendLE32(out, response.degraded ? kResponseDegraded : 0);
  AppendLE32(out, static_cast<uint32_t>(response.skipped_contexts.size()));
  AppendLE32(out, static_cast<uint32_t>(response.hits.size()));
  AppendLE32(out, static_cast<uint32_t>(message.size()));
  AppendLE32(out, static_cast<uint32_t>(response.skipped_shards.size()));
  for (const context::SearchHit& h : response.hits) {
    AppendLE32(out, h.paper);
    AppendLE32(out, h.context);
    AppendLEDouble(out, h.relevancy);
    AppendLEDouble(out, h.prestige);
    AppendLEDouble(out, h.match);
  }
  for (const ontology::TermId t : response.skipped_contexts) {
    AppendLE32(out, t);
  }
  for (const uint32_t s : response.skipped_shards) {
    AppendLE32(out, s);
  }
  out.append(message);
  return out;
}

Result<WireResponse> DecodeSearchResponseBody(std::string_view body) {
  if (body.size() < kResponseFixedBytes) {
    return Status::InvalidArgument(
        "SearchResponse body truncated: " + std::to_string(body.size()) +
        " bytes, need at least " + std::to_string(kResponseFixedBytes));
  }
  const char* p = body.data();
  const uint32_t status = LoadLE32(p + kRespStatus);
  if (status > kMaxStatusCode) {
    return Status::InvalidArgument("unknown status code " +
                                   std::to_string(status));
  }
  const uint32_t flags = LoadLE32(p + kRespFlags);
  if ((flags & ~kResponseDegraded) != 0) {
    return Status::InvalidArgument("unknown SearchResponse flag bits");
  }
  const uint32_t num_skipped = LoadLE32(p + kRespNumSkipped);
  const uint32_t num_hits = LoadLE32(p + kRespNumHits);
  const uint32_t message_len = LoadLE32(p + kRespMessageLen);
  const uint32_t num_skipped_shards = LoadLE32(p + kRespNumSkippedShards);
  // Overflow-safe expected-size check: the individual counts are u32 but
  // the sum is computed in 64 bits.
  const uint64_t expected = static_cast<uint64_t>(kResponseFixedBytes) +
                            static_cast<uint64_t>(num_hits) * kHitBytes +
                            static_cast<uint64_t>(num_skipped) * 4 +
                            static_cast<uint64_t>(num_skipped_shards) * 4 +
                            message_len;
  if (body.size() != expected) {
    return Status::InvalidArgument(
        "SearchResponse body of " + std::to_string(body.size()) +
        " bytes does not match declared contents (" +
        std::to_string(expected) + " expected)");
  }
  WireResponse response;
  response.code = static_cast<StatusCode>(status);
  response.degraded = (flags & kResponseDegraded) != 0;
  response.hits.resize(num_hits);
  const char* cursor = p + kResponseFixedBytes;
  for (uint32_t i = 0; i < num_hits; ++i, cursor += kHitBytes) {
    context::SearchHit& h = response.hits[i];
    h.paper = LoadLE32(cursor);
    h.context = LoadLE32(cursor + 4);
    h.relevancy = LoadLEDouble(cursor + 8);
    h.prestige = LoadLEDouble(cursor + 16);
    h.match = LoadLEDouble(cursor + 24);
  }
  response.skipped_contexts.resize(num_skipped);
  for (uint32_t i = 0; i < num_skipped; ++i, cursor += 4) {
    response.skipped_contexts[i] = LoadLE32(cursor);
  }
  response.skipped_shards.resize(num_skipped_shards);
  for (uint32_t i = 0; i < num_skipped_shards; ++i, cursor += 4) {
    response.skipped_shards[i] = LoadLE32(cursor);
  }
  response.message.assign(cursor, message_len);
  return response;
}

// ---------------------------------------------------------------------------
// HTTP.

std::string_view HttpRequest::Param(std::string_view key,
                                    std::string_view fallback) const {
  std::string_view value = fallback;
  for (const auto& [k, v] : params) {
    if (k == key) value = v;
  }
  return value;
}

std::string UrlDecode(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < in.size()) {
      const auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        if (h >= 'A' && h <= 'F') return h - 'A' + 10;
        return -1;
      };
      const int hi = hex(in[i + 1]);
      const int lo = hex(in[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back(c);  // Bad escape: keep verbatim.
      }
    } else {
      out.push_back(c);
    }
  }
  return out;
}

namespace {

std::string_view TrimSpaces(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    const char ca = a[i] | 0x20, cb = b[i] | 0x20;
    if (ca != cb) return false;
  }
  return true;
}

}  // namespace

HttpParseResult ParseHttpRequest(std::string_view buf,
                                 size_t max_header_bytes) {
  HttpParseResult result;
  // Header block terminator — accept bare-LF blank lines too, so shell
  // probes (`printf 'GET / HTTP/1.0\n\n'`) work against the daemon.
  size_t end = buf.find("\r\n\r\n");
  size_t terminator = 4;
  const size_t lf = buf.find("\n\n");
  if (lf != std::string_view::npos && (end == std::string_view::npos ||
                                       lf + 2 < end + 4)) {
    end = lf;
    terminator = 2;
  }
  if (end == std::string_view::npos) {
    if (buf.size() > max_header_bytes) {
      result.state = HttpParseState::kTooLarge;
      result.error = "request headers exceed " +
                     std::to_string(max_header_bytes) + " bytes";
    }
    return result;  // kNeedMore.
  }
  if (end + terminator > max_header_bytes) {
    result.state = HttpParseState::kTooLarge;
    result.error = "request headers exceed " +
                   std::to_string(max_header_bytes) + " bytes";
    return result;
  }
  result.consumed = end + terminator;
  const std::string_view block = buf.substr(0, end);

  // Request line: METHOD SP TARGET SP HTTP/x.y
  const size_t line_end = block.find('\n');
  const std::string_view line = TrimSpaces(
      line_end == std::string_view::npos ? block : block.substr(0, line_end));
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    result.state = HttpParseState::kBad;
    result.error = "malformed request line";
    return result;
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = TrimSpaces(line.substr(sp1 + 1, sp2 - sp1 - 1));
  const std::string_view version = line.substr(sp2 + 1);
  if (method.empty() || target.empty() || target.front() != '/' ||
      !version.starts_with("HTTP/")) {
    result.state = HttpParseState::kBad;
    result.error = "malformed request line";
    return result;
  }
  HttpRequest& request = result.request;
  request.method.assign(method);
  // HTTP/1.0 defaults to close, 1.1+ to keep-alive.
  request.keep_alive = version != "HTTP/1.0";

  // Split target into path + query parameters.
  const size_t qmark = target.find('?');
  request.path = UrlDecode(target.substr(0, qmark));
  if (qmark != std::string_view::npos) {
    std::string_view qs = target.substr(qmark + 1);
    while (!qs.empty()) {
      const size_t amp = qs.find('&');
      const std::string_view pair = qs.substr(0, amp);
      if (!pair.empty()) {
        const size_t eq = pair.find('=');
        request.params.emplace_back(
            UrlDecode(pair.substr(0, eq)),
            eq == std::string_view::npos ? ""
                                         : UrlDecode(pair.substr(eq + 1)));
      }
      if (amp == std::string_view::npos) break;
      qs.remove_prefix(amp + 1);
    }
  }

  // Headers: only Connection matters to this server.
  std::string_view rest =
      line_end == std::string_view::npos ? "" : block.substr(line_end + 1);
  while (!rest.empty()) {
    const size_t nl = rest.find('\n');
    const std::string_view header =
        nl == std::string_view::npos ? rest : rest.substr(0, nl);
    const size_t colon = header.find(':');
    if (colon != std::string_view::npos) {
      const std::string_view name = TrimSpaces(header.substr(0, colon));
      const std::string_view value = TrimSpaces(header.substr(colon + 1));
      if (EqualsIgnoreCase(name, "connection")) {
        if (EqualsIgnoreCase(value, "close")) request.keep_alive = false;
        if (EqualsIgnoreCase(value, "keep-alive")) request.keep_alive = true;
      }
    }
    if (nl == std::string_view::npos) break;
    rest.remove_prefix(nl + 1);
  }
  result.state = HttpParseState::kReady;
  return result;
}

int HttpStatusFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kDeadlineExceeded:
      return 504;
    default:
      return 500;
  }
}

namespace {

const char* HttpReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

}  // namespace

std::string BuildHttpResponse(int status, std::string_view content_type,
                              std::string_view body, bool keep_alive) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += HttpReason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  out += body;
  return out;
}

std::string JsonEscape(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string SearchResponseJson(
    const context::SearchResponse& response,
    const std::function<std::string_view(corpus::PaperId)>& title) {
  std::string out;
  out.reserve(256 + response.hits.size() * 96);
  out += "{\"status\":\"";
  out += StatusCodeToString(response.status.code());
  out += '"';
  if (!response.status.message().empty()) {
    out += ",\"message\":\"";
    out += JsonEscape(response.status.message());
    out += '"';
  }
  out += ",\"degraded\":";
  out += response.degraded ? "true" : "false";
  out += ",\"skipped_contexts\":[";
  for (size_t i = 0; i < response.skipped_contexts.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(response.skipped_contexts[i]);
  }
  out += "],\"skipped_shards\":[";
  for (size_t i = 0; i < response.skipped_shards.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(response.skipped_shards[i]);
  }
  out += "],\"hits\":[";
  char num[40];
  for (size_t i = 0; i < response.hits.size(); ++i) {
    const context::SearchHit& h = response.hits[i];
    if (i > 0) out += ',';
    out += "{\"paper\":";
    out += std::to_string(h.paper);
    out += ",\"relevancy\":";
    // %.17g round-trips any double exactly through decimal.
    std::snprintf(num, sizeof(num), "%.17g", h.relevancy);
    out += num;
    out += ",\"context\":";
    out += std::to_string(h.context);
    out += ",\"prestige\":";
    std::snprintf(num, sizeof(num), "%.17g", h.prestige);
    out += num;
    out += ",\"match\":";
    std::snprintf(num, sizeof(num), "%.17g", h.match);
    out += num;
    if (title) {
      const std::string_view t = title(h.paper);
      if (!t.empty()) {
        out += ",\"title\":\"";
        out += JsonEscape(t);
        out += '"';
      }
    }
    out += '}';
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// Hardened socket writes.

IoResult WriteSome(int fd, std::string_view data) {
  IoResult result;
  while (result.written < data.size()) {
    const ssize_t n = ::send(fd, data.data() + result.written,
                             data.size() - result.written, MSG_NOSIGNAL);
    if (n > 0) {
      // Short write: the kernel took part of the buffer — resume from the
      // new offset rather than reporting progress as an error.
      result.written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      result.state = IoState::kWouldBlock;
      return result;
    }
    // EPIPE (dead peer, SIGPIPE suppressed by MSG_NOSIGNAL), ECONNRESET,
    // or a zero-byte send result: the connection is unusable.
    result.state = IoState::kError;
    result.error = n < 0 ? errno : EPIPE;
    return result;
  }
  result.state = IoState::kDone;
  return result;
}

Status SendAll(int fd, std::string_view data, const Deadline& deadline) {
  size_t off = 0;
  for (;;) {
    const IoResult r = WriteSome(fd, data.substr(off));
    off += r.written;
    switch (r.state) {
      case IoState::kDone:
        return Status::OK();
      case IoState::kError:
        return Status::IoError(std::string("send: ") +
                               std::strerror(r.error));
      case IoState::kWouldBlock:
        break;
    }
    if (deadline.expired()) {
      return Status::DeadlineExceeded("send: deadline expired with " +
                                      std::to_string(data.size() - off) +
                                      " bytes unsent");
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int64_t remaining_ms =
        deadline.armed() ? deadline.remaining_ms() : -1;
    const int timeout =
        remaining_ms < 0 ? -1
                         : static_cast<int>(std::min<int64_t>(remaining_ms,
                                                              INT32_MAX));
    const int rc = ::poll(&pfd, 1, timeout);
    if (rc < 0 && errno != EINTR) {
      return Status::IoError(std::string("poll: ") + std::strerror(errno));
    }
    if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
      return Status::IoError("send: peer closed while writing");
    }
  }
}

}  // namespace ctxrank::serve::net
