#include "serve/shard_partition.h"

#include <algorithm>
#include <cassert>

namespace ctxrank::serve {

ShardPartition PartitionContexts(const context::ContextAssignment& assignment,
                                 uint32_t num_shards) {
  assert(num_shards >= 1);
  const size_t num_terms = assignment.num_terms();
  const size_t num_papers = assignment.num_papers();

  ShardPartition p;
  p.num_shards = num_shards;
  p.owners.assign(num_terms, kNoShardOwner);
  p.paper_masks.assign(num_shards, std::vector<uint8_t>(num_papers, 0));
  p.member_load.assign(num_shards, 0);
  p.paper_counts.assign(num_shards, 0);
  p.context_counts.assign(num_shards, 0);

  // Largest contexts placed first: the classic LPT greedy bound keeps the
  // heaviest shard within 4/3 of optimal, and placing big contexts early
  // lets the small ones fill the gaps. Every tie (equal member counts,
  // equal shard loads) breaks toward the smaller id, making the whole
  // partition a pure function of its inputs.
  struct Candidate {
    uint32_t term;
    uint64_t members;
  };
  std::vector<Candidate> order;
  order.reserve(num_terms);
  for (size_t t = 0; t < num_terms; ++t) {
    const size_t n = assignment.Members(static_cast<ontology::TermId>(t)).size();
    if (n > 0) order.push_back({static_cast<uint32_t>(t), n});
  }
  std::sort(order.begin(), order.end(), [](const Candidate& a,
                                           const Candidate& b) {
    if (a.members != b.members) return a.members > b.members;
    return a.term < b.term;
  });

  for (const Candidate& c : order) {
    uint32_t best = 0;
    for (uint32_t s = 1; s < num_shards; ++s) {
      if (p.member_load[s] < p.member_load[best]) best = s;
    }
    p.owners[c.term] = best;
    p.member_load[best] += c.members;
    p.context_counts[best] += 1;
    for (const corpus::PaperId paper :
         assignment.Members(static_cast<ontology::TermId>(c.term))) {
      p.paper_masks[best][paper] = 1;
    }
  }

  for (uint32_t s = 0; s < num_shards; ++s) {
    for (const uint8_t bit : p.paper_masks[s]) p.paper_counts[s] += bit;
  }
  return p;
}

}  // namespace ctxrank::serve
