// The serving snapshot: one relocatable binary file holding every artifact
// needed to answer queries — vocabulary, analyzed sections, TF-IDF model,
// forward vectors, per-context impact-ordered postings, the context routing
// index, prestige scores and assignment tables — laid out as flat,
// alignment-padded little-endian arrays so the loader can mmap the file
// and point the serving structures at it zero-copy.
//
// File layout (format version 1, see docs/PERFORMANCE.md for details):
//   [header: magic "CTXSNAP1", version u32, endian marker u32,
//    section count u64, total file size u64]
//   [section table: {kind u32, reserved u32, offset u64, byte size u64,
//    element count u64, FNV-1a64 checksum u64} per section]
//   [sections, each 64-byte aligned]
// Everything is little-endian on disk; the zero-copy load path therefore
// requires a little-endian host (checked at save and load).
#ifndef CTXRANK_SERVE_SNAPSHOT_H_
#define CTXRANK_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/mmap_file.h"
#include "common/status.h"
#include "context/search_engine.h"
#include "corpus/tokenized_corpus.h"
#include "ontology/ontology.h"

namespace ctxrank::eval {
class World;
}  // namespace ctxrank::eval

namespace ctxrank::serve {

inline constexpr char kSnapshotMagic[8] = {'C', 'T', 'X', 'S',
                                           'N', 'A', 'P', '1'};
inline constexpr uint32_t kSnapshotVersion = 1;
inline constexpr uint32_t kSnapshotEndianMarker = 0x01020304;
inline constexpr size_t kSnapshotAlignment = 64;

/// Section kinds — the snapshot's section registry. Values are part of the
/// on-disk format: NEVER renumber, only append. Appending a kind does not
/// bump the format version: sections are self-describing table entries, an
/// older loader ignores kinds it does not know, and a newer loader treats
/// a missing optional section as "feature absent" (see SectionRegistry()
/// for which kinds are required). That is how format version 1 files
/// written before the block-max sections existed keep loading: the loader
/// falls back to per-term pruning and records the downgrade in
/// ServingSnapshot::load_notes().
enum class SectionKind : uint32_t {
  kMeta = 0,
  kVocabBlob = 1,
  kVocabOffsets = 2,
  kVocabSorted = 3,
  kTfIdfDf = 4,
  kTokenOffsets = 5,
  kTokens = 6,
  kSetOffsets = 7,
  kSetTokens = 8,
  kPostingsOffsets = 9,
  kPostingsPapers = 10,
  kForwardOffsets = 11,
  kForwardEntries = 12,
  kMembersOffsets = 13,
  kMembers = 14,
  kContextsOffsets = 15,
  kContexts = 16,
  kRepresentatives = 17,
  kInheritedFrom = 18,
  kDecay = 19,
  kPrestigeOffsets = 20,
  kPrestigeValues = 21,
  kRoutingOffsets = 22,
  kRoutingEntries = 23,
  kNameNorms = 24,
  kCiBuilt = 25,
  kCiMaxPrestige = 26,
  kCiMinNorm = 27,
  kCiTermOffsetsOuter = 28,
  kCiTermOffsets = 29,
  kCiDocsOuter = 30,
  kCiNorms = 31,
  kCiByPrestige = 32,
  kCiPostings = 33,
  kOntoAccessionBlob = 34,
  kOntoAccessionOffsets = 35,
  kOntoNameBlob = 36,
  kOntoNameOffsets = 37,
  kOntoParentsOffsets = 38,
  kOntoParents = 39,
  kTitleBlob = 40,
  kTitleOffsets = 41,
  // Block-max metadata for the per-context impact indexes (optional —
  // written when the engine was built with a block size, consumed by the
  // block pruning fast path). Same concatenation/rebase convention as
  // kCiTermOffsets: per-context runs share kCiTermOffsetsOuter's shape.
  kCiBlockOffsets = 42,
  kCiBlockMax = 43,
  kCiBlockDocMin = 44,
  kCiBlockDocMax = 45,
  // Global context-ownership map for sharded serving (optional — written
  // by shard snapshot sets): one u32 per ontology term, the owning shard
  // id or 0xFFFFFFFF for globally-empty contexts. Identical across every
  // shard of a set, so any one shard can route for the whole fleet.
  kShardOwners = 46,
};

/// Registry metadata for one section kind: its stable on-disk id, a
/// diagnostic name, and whether a loadable snapshot must contain it
/// (optional sections degrade a feature when absent — titles render empty,
/// block pruning falls back to per-term bounds).
struct SectionDescriptor {
  SectionKind kind;
  const char* name;
  bool required;
};

/// All known section kinds in id order (the append-only registry).
std::span<const SectionDescriptor> SectionRegistry();

/// Diagnostic name of `kind` ("unknown" for ids past the registry — a
/// newer writer's section this build does not know).
const char* SectionName(SectionKind kind);

/// \brief Everything SaveSnapshot serializes. All pointers must be
/// non-null except `corpus` (titles are then omitted and loaded results
/// render without them). The engine must have been built over exactly
/// these components.
struct SnapshotInputs {
  const corpus::TokenizedCorpus* tc = nullptr;
  const ontology::Ontology* onto = nullptr;
  const context::ContextAssignment* assignment = nullptr;
  const context::PrestigeScores* prestige = nullptr;
  const context::ContextSearchEngine* engine = nullptr;
  const corpus::Corpus* corpus = nullptr;  // Optional: paper titles.

  // Sharded saves only (all default-empty: a plain save is byte-identical
  // to what it always was). `paper_mask` (num_papers entries, 1 = local)
  // drops the per-paper text payload of non-local papers — their CSR runs
  // stay in every offsets table as empty runs, so paper ids remain GLOBAL
  // and the loader's table-length validation is untouched. The assignment,
  // prestige and engine must already be restricted to the shard's owned
  // contexts by the caller. `shard_owners` (one u32 per ontology term, see
  // SectionKind::kShardOwners) and the shard_id/num_shards meta ride along
  // so a loaded shard knows its place in the set.
  std::span<const uint8_t> paper_mask;
  std::span<const uint32_t> shard_owners;
  uint32_t shard_id = 0;
  uint32_t num_shards = 0;
};

/// Serializes a complete serving state into `path`. Sections are
/// serialized and written concurrently (`num_threads`: 0 = hardware
/// concurrency, 1 = sequential). The file is written atomically enough
/// for local use: a partial write leaves a file the loader rejects.
Status SaveSnapshot(const SnapshotInputs& inputs, const std::string& path,
                    size_t num_threads = 0);

/// Convenience: snapshots a built World's text-based context set with its
/// text prestige scores plus a search engine over them.
Status SaveSnapshot(const eval::World& world,
                    const context::ContextSearchEngine& engine,
                    const std::string& path, size_t num_threads = 0);

/// \brief A query-ready serving state backed by an mmap'd snapshot file.
/// The heavy arrays (postings, forward vectors, tokens, scores, routing
/// index) are served directly out of the mapping; only inherently
/// pointer-shaped structures (the ontology DAG, per-paper vector headers)
/// are rebuilt on the heap. Non-movable — the engine holds pointers into
/// sibling members — so Load returns it behind a unique_ptr.
class ServingSnapshot {
 public:
  /// Maps `path`, validates magic / version / endianness / section bounds
  /// and every section checksum (in parallel), and assembles the serving
  /// structures. Any mismatch yields a descriptive error and no snapshot.
  static Result<std::unique_ptr<ServingSnapshot>> Load(
      const std::string& path, size_t num_threads = 0);

  ServingSnapshot(const ServingSnapshot&) = delete;
  ServingSnapshot& operator=(const ServingSnapshot&) = delete;

  const context::ContextSearchEngine& engine() const { return *engine_; }
  /// Configuration-time engine access (enable the query cache, set an
  /// admission limit) for SnapshotSupervisor::Options::on_load hooks.
  /// Must not be called once the snapshot serves concurrent queries —
  /// those engine setters are not safe against in-flight searches.
  context::ContextSearchEngine& mutable_engine() { return *engine_; }
  const corpus::TokenizedCorpus& tc() const { return *tc_; }
  const ontology::Ontology& onto() const { return onto_; }
  const context::ContextAssignment& assignment() const { return *assignment_; }
  const context::PrestigeScores& prestige() const { return *prestige_; }

  size_t num_papers() const { return tc_->size(); }
  bool has_titles() const { return !title_offsets_.empty(); }
  /// Title of paper `p` ("" when the snapshot was saved without a corpus).
  std::string_view title(corpus::PaperId p) const;

  /// Bitmask of loaded section kinds (bit k set when a section of kind k
  /// was present in the file; kinds >= 64 are ignored, far beyond the
  /// registry). Lets callers and tests check which optional features a
  /// snapshot carries without re-parsing the file.
  uint64_t section_presence() const { return section_presence_; }
  /// Human-readable notes from the load (one line per note): currently
  /// the per-term-pruning downgrade when block-max sections are absent.
  /// Empty when the snapshot loaded with every optional feature intact.
  const std::string& load_notes() const { return load_notes_; }

  /// Sharded snapshots: this shard's id and the set size (both 0 for a
  /// monolithic snapshot), plus the global context-ownership map (empty
  /// when absent). When present the map is already installed as the
  /// engine's routing override, so context selection on any one shard
  /// matches the monolithic engine exactly.
  uint32_t shard_id() const { return shard_id_; }
  uint32_t num_shards() const { return num_shards_; }
  std::span<const uint32_t> shard_owners() const { return shard_owners_; }

 private:
  friend struct SnapshotAccess;
  ServingSnapshot() = default;

  uint64_t section_presence_ = 0;
  std::string load_notes_;
  uint32_t shard_id_ = 0;
  uint32_t num_shards_ = 0;
  std::span<const uint32_t> shard_owners_;
  MmapFile file_;
  ontology::Ontology onto_;
  std::optional<corpus::TokenizedCorpus> tc_;
  std::optional<context::ContextAssignment> assignment_;
  std::optional<context::PrestigeScores> prestige_;
  std::optional<context::ContextSearchEngine> engine_;
  std::span<const char> title_blob_;
  std::span<const uint64_t> title_offsets_;
};

/// \brief Private-member bridge between the snapshot reader/writer and the
/// serving classes (declared a friend by TokenizedCorpus and
/// ContextSearchEngine). Keeps the view-assembly surface out of their
/// public APIs.
struct SnapshotAccess {
  static Status Save(const SnapshotInputs& inputs, const std::string& path,
                     size_t num_threads);
  static Result<std::unique_ptr<ServingSnapshot>> Load(const std::string& path,
                                                       size_t num_threads);
};

}  // namespace ctxrank::serve

#endif  // CTXRANK_SERVE_SNAPSHOT_H_
