// serve::RequestContext — the per-request serving spine shared by every
// front end (the stdin REPL, the ctxrankd network daemon, and future
// shard fan-out paths). One RequestContext is one query's lifetime:
//
//   * the Deadline is armed at *construction*, so queue time, admission
//     wait and (for the daemon) snapshot pinning all count against the
//     query's budget — exactly the SearchManyEx slot semantics;
//   * Run() applies admission control (an optional front-end limiter such
//     as the daemon's, on top of whatever limit the engine itself
//     carries), executes through ContextSearchEngine::SearchGuarded, and
//     records the wire-to-wire wall time;
//   * shed/degraded outcomes surface in the response's status/degraded
//     fields — a RequestContext never swallows them into empty hit lists.
//
// The extraction exists so new entry points cannot fork the deadline /
// admission / trace / metrics behavior: they construct a RequestContext
// and everything downstream is the one spine (see docs/ARCHITECTURE.md).
#ifndef CTXRANK_SERVE_REQUEST_CONTEXT_H_
#define CTXRANK_SERVE_REQUEST_CONTEXT_H_

#include <chrono>
#include <string>
#include <utility>

#include "common/admission_limiter.h"
#include "common/deadline.h"
#include "context/search_engine.h"

namespace ctxrank::serve {

class ShardedEngine;
class MutableIndex;

class RequestContext {
 public:
  /// Arms `options.deadline_ms` from this instant (0 = unlimited). The
  /// query string is copied: network buffers may be reused while the
  /// request waits for a worker.
  RequestContext(std::string query, context::SearchOptions options)
      : query_(std::move(query)),
        options_(std::move(options)),
        deadline_(options_.deadline_ms > 0
                      ? Deadline::AfterMs(options_.deadline_ms)
                      : Deadline()),
        start_(std::chrono::steady_clock::now()) {}

  const std::string& query() const { return query_; }
  const context::SearchOptions& options() const { return options_; }
  const Deadline& deadline() const { return deadline_; }

  /// Executes the query. `limiter` is the front end's own admission
  /// limiter (the daemon's in-flight bound); nullptr means only the
  /// engine's internal limit (if any) applies. A request that cannot be
  /// admitted before its deadline gets the canonical shed response —
  /// kResourceExhausted, degraded, never a silent empty. Call at most
  /// once.
  const context::SearchResponse& Run(
      const context::ContextSearchEngine& engine,
      AdmissionLimiter* limiter = nullptr);

  /// Same spine over a sharded backend: the scatter-gather engine replaces
  /// the single ContextSearchEngine, everything else (deadline armed at
  /// construction, admission, shed semantics, wall-time) is identical.
  const context::SearchResponse& Run(const ShardedEngine& engine,
                                     AdmissionLimiter* limiter = nullptr);

  /// Same spine over a live mutable index (base + delta segments): the
  /// delta-aware two-leg search replaces the frozen engine, the spine is
  /// unchanged.
  const context::SearchResponse& Run(const MutableIndex& index,
                                     AdmissionLimiter* limiter = nullptr);

  /// Result of Run() (default-constructed before it).
  const context::SearchResponse& response() const { return response_; }

  /// Wall microseconds from construction to the end of Run — the
  /// front-end-observed request latency, admission wait included.
  double wall_us() const { return wall_us_; }

 private:
  std::string query_;
  context::SearchOptions options_;
  Deadline deadline_;
  std::chrono::steady_clock::time_point start_;
  context::SearchResponse response_;
  double wall_us_ = 0.0;
};

}  // namespace ctxrank::serve

#endif  // CTXRANK_SERVE_REQUEST_CONTEXT_H_
