#include "serve/daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/deadline.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "serve/mutable_index.h"
#include "serve/request_context.h"
#include "serve/sharded_engine.h"

namespace ctxrank::serve {
namespace {

/// Daemon-level telemetry (serving-spine metrics — queries, shed,
/// latency stages — are recorded by the engine underneath; these cover
/// the network layer itself). See docs/OBSERVABILITY.md.
struct DaemonMetrics {
  obs::Gauge& connections_open;
  obs::Counter& connections_total;
  obs::Counter& connections_rejected;
  obs::Counter& requests;
  obs::Counter& http_requests;
  obs::Counter& frame_errors;
  obs::Counter& idle_closed;
  obs::Counter& loris_closed;
  obs::Counter& pings;
  obs::Counter& shard_legs;
  obs::Counter& bytes_read;
  obs::Counter& bytes_written;
  obs::Histogram& request_us;
};

DaemonMetrics& Metrics() {
  auto& reg = obs::MetricsRegistry::Instance();
  static DaemonMetrics m{
      reg.GetGauge("ctxrankd_connections_open"),
      reg.GetCounter("ctxrankd_connections_total"),
      reg.GetCounter("ctxrankd_connections_rejected_total"),
      reg.GetCounter("ctxrankd_requests_total"),
      reg.GetCounter("ctxrankd_http_requests_total"),
      reg.GetCounter("ctxrankd_frame_errors_total"),
      reg.GetCounter("ctxrankd_idle_closed_total"),
      reg.GetCounter("ctxrankd_loris_closed_total"),
      reg.GetCounter("ctxrankd_pings_total"),
      reg.GetCounter("ctxrankd_shard_legs_total"),
      reg.GetCounter("ctxrankd_bytes_read_total"),
      reg.GetCounter("ctxrankd_bytes_written_total"),
      reg.GetHistogram("ctxrankd_request_us", obs::LatencyBucketsUs())};
  return m;
}

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

size_t ParamSizeT(const net::HttpRequest& request, std::string_view key,
                  size_t fallback) {
  const std::string_view v = request.Param(key);
  if (v.empty()) return fallback;
  size_t out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc() || ptr != v.data() + v.size()) return fallback;
  return out;
}

/// An error SearchResponse frame for protocol-level failures, so a
/// misbehaving client gets a diagnosable answer instead of a silent
/// disconnect (where the framing still permits one).
std::string EncodeErrorFrame(Status status) {
  context::SearchResponse response;
  response.status = std::move(status);
  return net::EncodeSearchResponse(response);
}

}  // namespace

Daemon::Daemon(SnapshotSupervisor& supervisor, Options options)
    : supervisor_(&supervisor), options_(std::move(options)) {}

Daemon::Daemon(ShardedEngine& engine, Options options)
    : sharded_(&engine), options_(std::move(options)) {}

Daemon::Daemon(MutableIndex& index, Options options)
    : mutable_(&index), options_(std::move(options)) {}

Daemon::~Daemon() { Stop(); }

Status Daemon::Start() {
  if (started_) return Status::FailedPrecondition("daemon already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("unparseable listen address \"" +
                                   options_.host + "\"");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st = Errno("bind " + options_.host + ":" +
                            std::to_string(options_.port));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 128) != 0) {
    const Status st = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  bound_port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    const Status st = Errno("epoll_create1/eventfd");
    Stop();
    return st;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    const Status st = Errno("epoll_ctl(wake)");
    Stop();
    return st;
  }

  if (options_.max_in_flight > 0) {
    limiter_ = std::make_unique<AdmissionLimiter>(options_.max_in_flight);
  }
  pool_ = std::make_unique<ThreadPool>(ResolveNumThreads(options_.workers));

  stop_.store(false);
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  reactor_thread_ = std::thread([this] { ReactorLoop(); });
  return Status::OK();
}

void Daemon::Stop() {
  if (!started_) {
    // Start() may have half-initialized fds before failing.
    for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_}) {
      if (*fd >= 0) {
        ::close(*fd);
        *fd = -1;
      }
    }
    return;
  }
  stop_.store(true);
  // Unblock the accept thread: shutdown wakes the blocking accept.
  ::shutdown(listen_fd_, SHUT_RDWR);
  accept_thread_.join();
  // Wake the reactor; it observes stop_ at the top of its loop.
  uint64_t v = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &v, sizeof(v));
  reactor_thread_.join();
  // Drain in-flight workers before tearing down fds (workers write the
  // eventfd on completion, so it must stay open until they are done).
  pool_.reset();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [fd, conn] : conns_) {
      conn->open = false;
      ::close(fd);
    }
    conns_.clear();
  }
  Metrics().connections_open.Set(0);
  ::close(listen_fd_);
  ::close(epoll_fd_);
  ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
  started_ = false;
}

size_t Daemon::open_connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

void Daemon::AcceptLoop() {
  while (!stop_.load()) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (stop_.load()) break;
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN) {
        continue;
      }
      break;  // Listen socket is gone — shutdown in progress.
    }
    Metrics().connections_total.Increment();
    size_t open = 0;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      open = conns_.size();
    }
    if (open >= options_.max_connections) {
      Metrics().connections_rejected.Increment();
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>(fd);
    conn->last_activity_ms = NowMs();
    conn->interest = EPOLLIN | EPOLLRDHUP;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_[fd] = conn;
    }
    epoll_event ev{};
    ev.events = conn->interest | EPOLLET;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.erase(fd);
      ::close(fd);
      continue;
    }
    Metrics().connections_open.Add(1);
  }
}

void Daemon::ReactorLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  uint64_t last_idle_scan_ms = NowMs();
  while (!stop_.load()) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, 200);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t ev = events[i].events;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        DrainCompletions();
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        const auto it = conns_.find(fd);
        if (it == conns_.end()) continue;  // Closed earlier this batch.
        conn = it->second;
      }
      if ((ev & EPOLLERR) != 0) {
        CloseConn(conn);
        continue;
      }
      if ((ev & EPOLLIN) != 0) HandleReadable(conn);
      if (conn->open && (ev & EPOLLOUT) != 0) {
        FlushWrites(conn);
        if (conn->open) UpdateBackpressure(conn);
      }
      if (conn->open && (ev & (EPOLLRDHUP | EPOLLHUP)) != 0 &&
          (ev & EPOLLIN) == 0) {
        // Peer half-closed with no readable data: treat as EOF. (With
        // EPOLLIN set, HandleReadable already saw the 0-byte read.)
        HandleReadable(conn);
      }
    }
    const uint64_t now_ms = NowMs();
    if (now_ms - last_idle_scan_ms >= 500) {
      ScanIdle(now_ms);
      last_idle_scan_ms = now_ms;
    }
  }
}

void Daemon::HandleReadable(const std::shared_ptr<Conn>& conn) {
  if (!conn->open) return;
  bool eof = false;
  if (!conn->reading_paused) {
    char buf[16384];
    for (;;) {
      const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn->in.append(buf, static_cast<size_t>(n));
        Metrics().bytes_read.Increment(static_cast<uint64_t>(n));
        conn->last_activity_ms = NowMs();
        continue;
      }
      if (n == 0) {
        eof = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConn(conn);
      return;
    }
  } else {
    // Backpressured: leave the bytes in the kernel buffer. Re-enabling
    // EPOLLIN via EPOLL_CTL_MOD re-reports the readiness edge.
    eof = false;
  }
  // Slow-loris guard, size axis: unconsumed input past the cap means the
  // peer is feeding bytes that never complete into frames we accept.
  const size_t input_cap = options_.max_input_buffer > 0
                               ? options_.max_input_buffer
                               : options_.max_frame_bytes + (16u << 10);
  if (conn->in.size() > input_cap) {
    Metrics().loris_closed.Increment();
    CloseConn(conn);
    return;
  }
  ParseBuffered(conn);
  if (!conn->open || !eof) return;
  // EOF with work still in flight: finish and flush the responses the
  // peer is (half-close) waiting for, then close. Otherwise close now.
  bool busy = conn->executing || !conn->pending.empty();
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    busy = busy || !conn->out.empty();
    if (busy) conn->close_after_flush = true;
  }
  if (!busy) {
    CloseConn(conn);
  } else {
    conn->reading_paused = true;
    SetInterest(conn, conn->interest & ~static_cast<uint32_t>(EPOLLIN));
  }
}

void Daemon::ParseBuffered(const std::shared_ptr<Conn>& conn) {
  if (!conn->open) return;
  if (conn->proto == Protocol::kUnknown) {
    if (conn->in.empty()) return;
    const net::Frame f = net::NextFrame(conn->in, options_.max_frame_bytes);
    if (f.state == net::FrameState::kBadMagic) {
      conn->proto = Protocol::kHttp;
    } else if (conn->in.size() >= net::kFrameMagicBytes) {
      conn->proto = Protocol::kBinary;
    } else {
      // "C".."CTXQ" prefix: need more bytes to decide — but the assembly
      // clock starts now, or a sub-5-byte trickle never times out.
      if (conn->partial_since_ms == 0) conn->partial_since_ms = NowMs();
      return;
    }
  }
  if (conn->proto == Protocol::kBinary) {
    ParseBinary(conn);
  } else {
    ParseHttp(conn);
  }
  if (conn->open) {
    // Slow-loris guard, time axis: leftover bytes are by construction an
    // incomplete frame / request head (complete ones were just consumed).
    // Start the assembly clock on the first partial byte; ScanIdle closes
    // connections that dribble without ever completing.
    if (conn->in.empty()) {
      conn->partial_since_ms = 0;
    } else if (conn->partial_since_ms == 0) {
      conn->partial_since_ms = NowMs();
    }
    UpdateBackpressure(conn);
    MaybeDispatch(conn);
  }
}

void Daemon::ParseBinary(const std::shared_ptr<Conn>& conn) {
  for (;;) {
    const net::Frame f = net::NextFrame(conn->in, options_.max_frame_bytes);
    switch (f.state) {
      case net::FrameState::kNeedMore:
        return;
      case net::FrameState::kBadMagic:
        // Garbage between frames: framing is lost, nothing sane to say.
        Metrics().frame_errors.Increment();
        CloseConn(conn);
        return;
      case net::FrameState::kBadFrame:
      case net::FrameState::kOversized:
        // Header parsed but unusable: report, then drop the connection
        // (the declared body length cannot be trusted for resync).
        Metrics().frame_errors.Increment();
        conn->in.clear();
        conn->reading_paused = true;
        SetInterest(conn, conn->interest & ~static_cast<uint32_t>(EPOLLIN));
        QueueOutput(conn,
                    EncodeErrorFrame(Status::InvalidArgument(f.error)),
                    /*close_after=*/true);
        return;
      case net::FrameState::kReady:
        break;
    }
    const std::string_view body = f.body;
    const uint8_t type = f.type;
    if (type == net::kFramePing) {
      // Answered reactor-inline, like /healthz: a saturated worker pool
      // must not fail the shard client's connection health checks.
      conn->in.erase(0, f.consumed);
      Metrics().pings.Increment();
      net::WirePong pong;
      pong.ok = BackendHealthy();
      if (supervisor_ != nullptr) {
        const auto snap = supervisor_->current();
        pong.shard_id = snap != nullptr ? snap->shard_id() : 0;
        pong.generation = supervisor_->generation();
      } else if (mutable_ != nullptr) {
        pong.generation = mutable_->generation();
      }
      QueueOutput(conn, net::EncodePong(pong), /*close_after=*/false);
      if (!conn->open) return;
      continue;
    }
    if (type == net::kFrameAddPaperRequest) {
      conn->in.erase(0, f.consumed);
      if (mutable_ == nullptr) {
        // Ingest targets a mutable-index daemon only; a frozen snapshot
        // or gateway has nowhere to put the paper. kFailedPrecondition
        // is final on the client — no retry storm.
        Metrics().frame_errors.Increment();
        QueueOutput(conn,
                    EncodeErrorFrame(Status::FailedPrecondition(
                        "this daemon serves an immutable backend; "
                        "AddPaper needs ctxrankd --ingest")),
                    /*close_after=*/false);
        if (!conn->open) return;
        continue;
      }
      auto decoded = net::DecodeAddPaperRequestBody(body);
      if (!decoded.ok()) {
        Metrics().frame_errors.Increment();
        net::WireAddPaperResponse err;
        err.code = decoded.status().code();
        err.message.assign(decoded.status().message());
        QueueOutput(conn, net::EncodeAddPaperResponse(err),
                    /*close_after=*/false);
        if (!conn->open) return;
        continue;
      }
      PendingRequest req;
      req.add_paper = true;
      req.paper = std::move(decoded).value();
      conn->pending.push_back(std::move(req));
      continue;
    }
    if (type == net::kFrameShardSearchRequest) {
      if (sharded_ != nullptr || mutable_ != nullptr) {
        // A gateway is not a shard, and a mutable index serves whole
        // queries, not routed legs. The error frame fails the leg
        // cleanly on the client (kFailedPrecondition is final — no
        // retry storm).
        conn->in.erase(0, f.consumed);
        Metrics().frame_errors.Increment();
        QueueOutput(conn,
                    EncodeErrorFrame(Status::FailedPrecondition(
                        "this daemon does not serve routed shard legs")),
                    /*close_after=*/false);
        if (!conn->open) return;
        continue;
      }
      auto decoded = net::DecodeShardSearchRequestBody(body);
      conn->in.erase(0, f.consumed);
      if (!decoded.ok()) {
        Metrics().frame_errors.Increment();
        QueueOutput(conn, EncodeErrorFrame(decoded.status()),
                    /*close_after=*/false);
        if (!conn->open) return;
        continue;
      }
      net::WireShardRequest shard = std::move(decoded).value();
      PendingRequest req;
      req.shard_leg = true;
      req.budget_us = shard.budget_us;
      req.contexts = std::move(shard.contexts);
      req.wire.query = std::move(shard.query);
      req.wire.options = shard.options;
      conn->pending.push_back(std::move(req));
      continue;
    }
    if (type != net::kFrameSearchRequest) {
      Metrics().frame_errors.Increment();
      conn->in.clear();
      conn->reading_paused = true;
      SetInterest(conn, conn->interest & ~static_cast<uint32_t>(EPOLLIN));
      QueueOutput(conn,
                  EncodeErrorFrame(Status::InvalidArgument(
                      "unexpected frame type " + std::to_string(type) +
                      " from client (want SearchRequest)")),
                  /*close_after=*/true);
      return;
    }
    auto decoded = net::DecodeSearchRequestBody(body);
    conn->in.erase(0, f.consumed);
    if (!decoded.ok()) {
      // Framing stayed intact — answer the error and keep the
      // connection: the next frame may be fine.
      Metrics().frame_errors.Increment();
      QueueOutput(conn, EncodeErrorFrame(decoded.status()),
                  /*close_after=*/false);
      if (!conn->open) return;
      continue;
    }
    PendingRequest req;
    req.wire = std::move(decoded).value();
    req.http = false;
    conn->pending.push_back(std::move(req));
  }
}

void Daemon::ParseHttp(const std::shared_ptr<Conn>& conn) {
  for (;;) {
    net::HttpParseResult parsed = net::ParseHttpRequest(conn->in);
    switch (parsed.state) {
      case net::HttpParseState::kNeedMore:
        return;
      case net::HttpParseState::kTooLarge:
        QueueOutput(conn,
                    net::BuildHttpResponse(431, "text/plain",
                                           parsed.error + "\n", false),
                    /*close_after=*/true);
        return;
      case net::HttpParseState::kBad:
        QueueOutput(conn,
                    net::BuildHttpResponse(400, "text/plain",
                                           parsed.error + "\n", false),
                    /*close_after=*/true);
        return;
      case net::HttpParseState::kReady:
        break;
    }
    conn->in.erase(0, parsed.consumed);
    const net::HttpRequest& request = parsed.request;
    const bool keep_alive = request.keep_alive;
    Metrics().http_requests.Increment();
    conn->last_activity_ms = NowMs();

    if (request.method != "GET") {
      QueueOutput(conn,
                  net::BuildHttpResponse(405, "text/plain",
                                         "only GET is supported\n",
                                         keep_alive),
                  !keep_alive);
    } else if (request.path == "/metrics") {
      QueueOutput(conn,
                  net::BuildHttpResponse(
                      200, "text/plain; version=0.0.4",
                      obs::MetricsRegistry::Instance().RenderPrometheus(),
                      keep_alive),
                  !keep_alive);
    } else if (request.path == "/healthz") {
      const bool ok = BackendHealthy();
      QueueOutput(conn,
                  net::BuildHttpResponse(ok ? 200 : 503, "application/json",
                                         HealthzJson(), keep_alive),
                  !keep_alive);
    } else if (request.path == "/compact" && mutable_ != nullptr) {
      // Compaction is heavy (a full base rebuild) — dispatch through the
      // pending-request machinery so it runs on a worker, not the
      // reactor.
      PendingRequest req;
      req.compact = true;
      req.http = true;
      req.http_keep_alive = keep_alive;
      conn->pending.push_back(std::move(req));
    } else if (request.path == "/search") {
      const std::string_view q = request.Param("q");
      if (q.empty()) {
        QueueOutput(conn,
                    net::BuildHttpResponse(
                        400, "text/plain",
                        "missing required parameter q\n", keep_alive),
                    !keep_alive);
      } else {
        PendingRequest req;
        req.http = true;
        req.http_keep_alive = keep_alive;
        req.wire.query.assign(q);
        req.wire.options = options_.search;
        req.wire.options.top_k =
            ParamSizeT(request, "topk", options_.search.top_k);
        req.wire.options.max_contexts =
            ParamSizeT(request, "contexts", options_.search.max_contexts);
        req.wire.options.deadline_ms = ParamSizeT(
            request, "deadline_ms", options_.search.deadline_ms);
        req.wire.options.exact_scan =
            request.Param("exact", options_.search.exact_scan ? "1" : "0") ==
            "1";
        conn->pending.push_back(std::move(req));
      }
    } else {
      QueueOutput(conn,
                  net::BuildHttpResponse(404, "text/plain",
                                         "unknown path (have /search, "
                                         "/metrics, /healthz)\n",
                                         keep_alive),
                  !keep_alive);
    }
    if (!conn->open) return;
    if (!keep_alive) {
      // No point parsing pipelined requests behind a Connection: close.
      conn->reading_paused = true;
      SetInterest(conn, conn->interest & ~static_cast<uint32_t>(EPOLLIN));
      return;
    }
  }
}

void Daemon::MaybeDispatch(const std::shared_ptr<Conn>& conn) {
  if (!conn->open || conn->executing || conn->pending.empty()) return;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->close_after_flush) return;
  }
  if (options_.inline_execution) {
    // Drain the whole queue on the reactor thread: no handoff, and one
    // flush covers the batch when the client pipelines. Output growth is
    // bounded by the pending cap (UpdateBackpressure pauses reads long
    // before the queue gets deep).
    while (conn->open && !conn->pending.empty()) {
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->close_after_flush) break;
      }
      PendingRequest req = std::move(conn->pending.front());
      conn->pending.pop_front();
      Metrics().requests.Increment();
      RunRequest(conn, std::move(req));
    }
    conn->last_activity_ms = NowMs();
    FlushWrites(conn);
    if (conn->open) UpdateBackpressure(conn);
    return;
  }
  PendingRequest req = std::move(conn->pending.front());
  conn->pending.pop_front();
  conn->executing = true;
  Metrics().requests.Increment();
  pool_->Submit([this, conn, req = std::move(req)]() mutable {
    ExecuteRequest(conn, std::move(req));
  });
}

void Daemon::RunRequest(const std::shared_ptr<Conn>& conn,
                        PendingRequest req) {
  if (req.shard_leg) {
    // A routed scatter leg from a remote coordinator: the routing already
    // happened there, so this runs the scan-only SearchRouted primitive
    // against the pinned snapshot, single-threaded (the coordinator's
    // scatter provides the parallelism) with the deadline re-armed from
    // the budget that traveled on the wire. Legs bypass the admission
    // limiter — the coordinator admission-controls the whole query.
    Metrics().shard_legs.Increment();
    context::SearchResponse response;
    const auto t0 = std::chrono::steady_clock::now();
    // Generation tag for the response header: read the generation BEFORE
    // pinning the snapshot and re-check it after the search — when both
    // reads agree, the pinned snapshot is generation `gen_before` and the
    // gateway may key its merged-result cache on the tag. A mismatch
    // means a reload swapped mid-request; stamping 0 ("unknown") keeps
    // the answer servable but uncacheable.
    const uint64_t gen_before = supervisor_->generation();
    const std::shared_ptr<const ServingSnapshot> snap = supervisor_->current();
    if (snap == nullptr) {
      response.status =
          Status::FailedPrecondition("no serving snapshot loaded");
    } else if (const Status st = fault::MaybeFail("daemon/shard_leg");
               !st.ok()) {
      // Injected server-side leg failure. kIoError is the transient
      // class, so the remote client retries it with backoff.
      response.status =
          Status::IoError("injected shard-leg fault: " +
                          std::string(st.message()));
    } else {
      const Deadline deadline =
          req.budget_us > 0
              ? Deadline::At(std::chrono::steady_clock::now() +
                             std::chrono::microseconds(req.budget_us))
              : Deadline();
      context::SearchOptions opts = req.wire.options;
      opts.num_threads = 1;
      opts.trace = false;
      response = snap->engine().SearchRouted(req.wire.query, req.contexts,
                                             opts, deadline);
    }
    Metrics().request_us.Observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
    uint16_t generation_tag = 0;
    if (snap != nullptr && supervisor_->generation() == gen_before) {
      generation_tag = net::GenerationTag(gen_before);
    }
    std::string encoded = net::EncodeSearchResponse(response, generation_tag);
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->out += encoded;
    }
    return;
  }
  if (req.add_paper) {
    // Live ingest (mutable backend; ParseBinary guarantees mutable_).
    const auto t0 = std::chrono::steady_clock::now();
    MutableIndex::IngestPaper in;
    in.paper.title = std::move(req.paper.title);
    in.paper.abstract_text = std::move(req.paper.abstract_text);
    in.paper.body = std::move(req.paper.body);
    in.paper.index_terms = std::move(req.paper.index_terms);
    in.paper.authors.assign(req.paper.authors.begin(),
                            req.paper.authors.end());
    in.paper.references.assign(req.paper.references.begin(),
                               req.paper.references.end());
    in.evidence_terms.assign(req.paper.evidence_terms.begin(),
                             req.paper.evidence_terms.end());
    net::WireAddPaperResponse out;
    const auto added = mutable_->Ingest(std::move(in));
    if (added.ok()) {
      out.paper_id = added.value();
    } else {
      out.code = added.status().code();
      out.message.assign(added.status().message());
    }
    out.num_papers = static_cast<uint32_t>(mutable_->num_papers());
    out.generation = mutable_->generation();
    Metrics().request_us.Observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
    std::string encoded = net::EncodeAddPaperResponse(out);
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->out += encoded;
    }
    return;
  }
  if (req.compact) {
    // HTTP-triggered compaction (mutable backend): fold the delta into a
    // new base generation on this worker. Queries and ingests proceed
    // concurrently (Compact republishes atomically at the end).
    const Status st = mutable_->Compact();
    std::string json = "{\"ok\":";
    json += st.ok() ? "true" : "false";
    if (!st.ok()) {
      json += ",\"error\":\"" + net::JsonEscape(st.message()) + "\"";
    }
    json += ",\"generation\":" + std::to_string(mutable_->generation());
    json += ",\"papers\":" + std::to_string(mutable_->num_papers());
    json += ",\"delta_papers\":" + std::to_string(mutable_->delta_papers());
    json += "}";
    std::string encoded = net::BuildHttpResponse(
        st.ok() ? 200 : net::HttpStatusFor(st.code()), "application/json",
        json, req.http_keep_alive);
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->out += encoded;
      if (!req.http_keep_alive) conn->close_after_flush = true;
    }
    return;
  }
  context::SearchResponse response;
  std::function<std::string_view(corpus::PaperId)> title;
  // Pinned snapshots outlive the JSON render below: any title
  // string_view points into one of them.
  std::shared_ptr<const ServingSnapshot> snap;
  std::vector<std::shared_ptr<const ServingSnapshot>> shard_snaps;
  if (supervisor_ != nullptr) {
    // Pin the serving snapshot for this request's whole lifetime: a hot
    // reload swapping the supervisor's pointer cannot pull it out from
    // under us, and the old snapshot is freed once its last request ends.
    snap = supervisor_->current();
    if (snap == nullptr) {
      response.status =
          Status::FailedPrecondition("no serving snapshot loaded");
    } else {
      RequestContext ctx(std::move(req.wire.query), req.wire.options);
      response = ctx.Run(snap->engine(), limiter_.get());
      Metrics().request_us.Observe(ctx.wall_us());
    }
    if (req.http && snap != nullptr && snap->has_titles()) {
      title = [&snap](corpus::PaperId p) { return snap->title(p); };
    }
  } else if (mutable_ != nullptr) {
    // Mutable backend: the delta-aware two-leg search behind the same
    // spine. (No title map — the live index owns its corpus internally.)
    RequestContext ctx(std::move(req.wire.query), req.wire.options);
    response = ctx.Run(*mutable_, limiter_.get());
    Metrics().request_us.Observe(ctx.wall_us());
  } else {
    // Sharded backend: the engine pins each shard's snapshot per query
    // itself, and an all-shards-down fleet answers kFailedPrecondition
    // from the scatter, so no null check is needed here.
    RequestContext ctx(std::move(req.wire.query), req.wire.options);
    response = ctx.Run(*sharded_, limiter_.get());
    Metrics().request_us.Observe(ctx.wall_us());
    if (req.http) {
      for (uint32_t i = 0; i < sharded_->num_shards(); ++i) {
        auto s = sharded_->shard(i);
        if (s != nullptr && s->has_titles()) {
          shard_snaps.push_back(std::move(s));
        }
      }
      if (!shard_snaps.empty()) {
        title = [&shard_snaps](corpus::PaperId p) -> std::string_view {
          for (const auto& s : shard_snaps) {
            const std::string_view t = s->title(p);
            if (!t.empty()) return t;
          }
          return {};
        };
      }
    }
  }

  std::string encoded;
  if (req.http) {
    encoded = net::BuildHttpResponse(
        net::HttpStatusFor(response.status.code()), "application/json",
        net::SearchResponseJson(response, title), req.http_keep_alive);
  } else {
    encoded = net::EncodeSearchResponse(response);
  }

  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->out += encoded;
    if (req.http && !req.http_keep_alive) conn->close_after_flush = true;
  }
}

void Daemon::ExecuteRequest(const std::shared_ptr<Conn>& conn,
                            PendingRequest req) {
  RunRequest(conn, std::move(req));
  bool was_empty = false;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    was_empty = completions_.empty();
    completions_.push_back(conn);
  }
  // The eventfd is a level signal ("completions pending"), not a count:
  // only the push that makes the queue non-empty writes it, coalescing
  // the syscall + epoll wakeup for every completion that lands while the
  // reactor has not drained yet. Safe against the reactor because it
  // drains the eventfd BEFORE swapping the queue: a push that observed a
  // non-empty queue rode an un-consumed wakeup (the queue is emptied
  // only under completions_mu_, after the drain), and a push after the
  // swap sees an empty queue and writes its own.
  if (was_empty) {
    uint64_t v = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &v, sizeof(v));
  }
}

void Daemon::DrainCompletions() {
  std::vector<std::shared_ptr<Conn>> done;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    done.swap(completions_);
  }
  for (const auto& conn : done) {
    if (!conn->open) continue;
    conn->executing = false;
    conn->last_activity_ms = NowMs();
    FlushWrites(conn);
    if (!conn->open) continue;
    UpdateBackpressure(conn);
    MaybeDispatch(conn);
  }
}

void Daemon::FlushWrites(const std::shared_ptr<Conn>& conn) {
  if (!conn->open) return;
  bool fatal = false;
  bool close_when_drained = false;
  size_t remaining = 0;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    // Shared hardened write path (net::WriteSome): EINTR resumed, short
    // writes continued, SIGPIPE suppressed — EPIPE/ECONNRESET surface as
    // kError instead of killing the process.
    const net::IoResult r = net::WriteSome(conn->fd, conn->out);
    Metrics().bytes_written.Increment(static_cast<uint64_t>(r.written));
    fatal = r.state == net::IoState::kError;
    conn->out.erase(0, r.written);
    remaining = conn->out.size();
    close_when_drained = conn->close_after_flush;
  }
  if (fatal) {
    CloseConn(conn);
    return;
  }
  if (remaining == 0 && close_when_drained && !conn->executing) {
    CloseConn(conn);
    return;
  }
  // Arm EPOLLOUT only while bytes wait — otherwise edge-triggered
  // writability would fire on every loop of an idle-but-writable socket.
  const uint32_t want =
      remaining > 0 ? (conn->interest | EPOLLOUT)
                    : (conn->interest & ~static_cast<uint32_t>(EPOLLOUT));
  SetInterest(conn, want);
  if (remaining > 0) conn->last_activity_ms = NowMs();
}

void Daemon::UpdateBackpressure(const std::shared_ptr<Conn>& conn) {
  if (!conn->open) return;
  size_t out_size = 0;
  bool closing = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    out_size = conn->out.size();
    closing = conn->close_after_flush;
  }
  if (closing) return;  // Reads stay paused on a draining connection.
  const bool overloaded = out_size > options_.max_output_buffer ||
                          conn->pending.size() >= 128;
  if (!conn->reading_paused && overloaded) {
    conn->reading_paused = true;
    SetInterest(conn, conn->interest & ~static_cast<uint32_t>(EPOLLIN));
  } else if (conn->reading_paused && out_size <= options_.max_output_buffer / 2 &&
             conn->pending.size() < 64) {
    conn->reading_paused = false;
    // EPOLL_CTL_MOD re-arms the edge: pending kernel bytes re-report.
    SetInterest(conn, conn->interest | EPOLLIN);
  }
}

void Daemon::SetInterest(const std::shared_ptr<Conn>& conn,
                         uint32_t interest) {
  if (!conn->open || conn->interest == interest) return;
  conn->interest = interest;
  epoll_event ev{};
  ev.events = interest | EPOLLET;
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void Daemon::QueueOutput(const std::shared_ptr<Conn>& conn, std::string bytes,
                         bool close_after) {
  if (!conn->open) return;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->out += bytes;
    if (close_after) conn->close_after_flush = true;
  }
  FlushWrites(conn);
}

void Daemon::CloseConn(const std::shared_ptr<Conn>& conn) {
  if (!conn->open) return;
  conn->open = false;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    const auto it = conns_.find(conn->fd);
    if (it != conns_.end() && it->second == conn) conns_.erase(it);
  }
  Metrics().connections_open.Sub(1);
}

void Daemon::ScanIdle(uint64_t now_ms) {
  if (options_.idle_timeout_ms == 0 &&
      options_.frame_assembly_timeout_ms == 0) {
    return;
  }
  std::vector<std::shared_ptr<Conn>> idle;
  std::vector<std::shared_ptr<Conn>> loris;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& [fd, conn] : conns_) {
      if (conn->executing) continue;  // Never idle-close an active query.
      if (options_.frame_assembly_timeout_ms > 0 &&
          conn->partial_since_ms > 0 &&
          now_ms - conn->partial_since_ms >
              options_.frame_assembly_timeout_ms) {
        // Slow-loris: a partial frame has been under assembly too long.
        // A byte-at-a-time dribbler keeps last_activity_ms fresh, so the
        // idle timeout alone would never fire for it.
        loris.push_back(conn);
        continue;
      }
      if (options_.idle_timeout_ms > 0 &&
          now_ms - conn->last_activity_ms > options_.idle_timeout_ms) {
        idle.push_back(conn);
      }
    }
  }
  for (const auto& conn : loris) {
    Metrics().loris_closed.Increment();
    CloseConn(conn);
  }
  for (const auto& conn : idle) {
    Metrics().idle_closed.Increment();
    CloseConn(conn);
  }
}

bool Daemon::BackendHealthy() const {
  if (supervisor_ != nullptr) return supervisor_->current() != nullptr;
  // A mutable index is built before the daemon starts — always servable.
  if (mutable_ != nullptr) return true;
  if (sharded_->num_shards() == 0) return false;
  if (sharded_->remote()) {
    // Remote legs degrade into skipped_shards at query time; the gateway
    // can serve as soon as its router snapshot is loaded.
    return sharded_->shard(0) != nullptr;
  }
  for (uint32_t i = 0; i < sharded_->num_shards(); ++i) {
    if (sharded_->shard(i) == nullptr) return false;
  }
  return true;
}

std::string Daemon::HealthzJson() const {
  const int64_t now_s = std::chrono::duration_cast<std::chrono::seconds>(
                            std::chrono::system_clock::now().time_since_epoch())
                            .count();
  if (mutable_ != nullptr) {
    // Live-index health: segment sizes and the compaction generation, so
    // delta growth (compaction debt) is visible from curl.
    std::string out = "{\"ok\":true,\"mutable\":true,\"generation\":";
    out += std::to_string(mutable_->generation());
    out += ",\"papers\":";
    out += std::to_string(mutable_->num_papers());
    out += ",\"base_papers\":";
    out += std::to_string(mutable_->base_papers());
    out += ",\"delta_papers\":";
    out += std::to_string(mutable_->delta_papers());
    out += "}";
    return out;
  }
  if (sharded_ != nullptr && sharded_->remote()) {
    // Remote fleet health: per-shard endpoint, last-known liveness and
    // resilience counters, so a flapping shard and how hard the client
    // is working around it are both visible from curl.
    const auto stats = sharded_->client_stats();
    std::string shards = "[";
    for (uint32_t i = 0; i < sharded_->num_shards(); ++i) {
      const ShardClient* client = sharded_->client(i);
      if (i > 0) shards += ',';
      shards += "{\"shard\":" + std::to_string(i);
      shards += ",\"primary\":\"" +
                net::JsonEscape(client->primary().ToString()) + "\"";
      if (client->has_replica()) {
        shards += ",\"replica\":\"" +
                  net::JsonEscape(client->replica().ToString()) + "\"";
      }
      shards += ",\"healthy\":";
      shards += client->healthy() ? "true" : "false";
      shards += ",\"errors\":" + std::to_string(stats[i].errors);
      shards += ",\"retries\":" + std::to_string(stats[i].retries);
      shards += ",\"hedges\":" + std::to_string(stats[i].hedges);
      shards += ",\"failovers\":" + std::to_string(stats[i].failovers);
      shards += '}';
    }
    shards += ']';
    std::string out = "{\"ok\":";
    out += BackendHealthy() ? "true" : "false";
    out += ",\"remote\":true,\"shards\":";
    out += std::to_string(sharded_->num_shards());
    out += ",\"router_loaded\":";
    out += sharded_->shard(0) != nullptr ? "true" : "false";
    out += ",\"remote_shards\":";
    out += shards;
    out += "}";
    return out;
  }
  if (sharded_ != nullptr) {
    // Sharded fleet health: overall ok plus per-shard generation and
    // failure counters, so a degraded shard is visible from curl.
    const auto stats = sharded_->stats();
    uint32_t live = 0;
    uint64_t failed = 0;
    std::string generations = "[";
    for (uint32_t i = 0; i < sharded_->num_shards(); ++i) {
      if (sharded_->shard(i) != nullptr) ++live;
      failed += stats[i].failed_reloads;
      if (i > 0) generations += ',';
      generations += std::to_string(stats[i].generation);
    }
    generations += ']';
    std::string out = "{\"ok\":";
    out += BackendHealthy() ? "true" : "false";
    out += ",\"shards\":";
    out += std::to_string(sharded_->num_shards());
    out += ",\"live_shards\":";
    out += std::to_string(live);
    out += ",\"generations\":";
    out += generations;
    out += ",\"failed_reloads\":";
    out += std::to_string(failed);
    out += "}";
    return out;
  }
  const auto snap = supervisor_->current();
  const auto stats = supervisor_->stats();
  const long long age_s =
      stats.last_success_unix_s > 0
          ? static_cast<long long>(now_s - stats.last_success_unix_s)
          : -1;
  std::string out = "{\"ok\":";
  out += snap != nullptr ? "true" : "false";
  out += ",\"generation\":";
  out += std::to_string(stats.generation);
  out += ",\"snapshot_age_s\":";
  out += std::to_string(age_s);
  out += ",\"failed_reloads\":";
  out += std::to_string(stats.failed_reloads);
  out += ",\"path\":\"";
  out += net::JsonEscape(stats.current_path);
  out += "\",\"watching\":";
  out += supervisor_->watching() ? "true" : "false";
  out += "}";
  return out;
}

}  // namespace ctxrank::serve
