// Deterministic context-aware corpus partitioner for sharded serving.
//
// Sharding unit: the CONTEXT (an ontology term with assigned papers), not
// the paper. A context's member papers always co-locate on the shard that
// owns the context — a scatter leg answers its contexts entirely from
// local data, so the sharded scan is bitwise-identical to the single-shard
// scan. Papers belonging to several contexts are replicated onto every
// shard owning one of those contexts; paper ids stay GLOBAL everywhere
// (no renumbering), which keeps the merged top-k and all wire responses
// byte-for-byte comparable with the monolithic engine.
//
// The partitioner is a greedy balancer: contexts in descending member
// count (ties: smaller term id first) onto the least-loaded shard (ties:
// smallest shard id). Pure function of (assignment, num_shards) — the
// same corpus always partitions the same way, on any host, so snapshot
// sets built independently are interchangeable.
#ifndef CTXRANK_SERVE_SHARD_PARTITION_H_
#define CTXRANK_SERVE_SHARD_PARTITION_H_

#include <cstdint>
#include <vector>

#include "context/context_assignment.h"

namespace ctxrank::serve {

/// Owner value for contexts with no members anywhere (globally empty):
/// no shard owns them and routing must never select them. Mirrors
/// context::ContextSearchEngine::kNoShardOwner.
inline constexpr uint32_t kNoShardOwner = 0xFFFFFFFFu;

/// \brief A complete deterministic partition of the corpus into shards.
struct ShardPartition {
  uint32_t num_shards = 0;
  /// Owning shard per ontology term (size = assignment.num_terms());
  /// kNoShardOwner for contexts with no members. Doubles as the global
  /// routing map: a term is selectable iff its owner is a real shard.
  std::vector<uint32_t> owners;
  /// Per-shard paper masks (num_shards × num_papers, 1 = paper present on
  /// that shard). A paper is present wherever any context containing it
  /// lives, so masks overlap when contexts share papers.
  std::vector<std::vector<uint8_t>> paper_masks;
  /// Per-shard load: total context memberships assigned (the quantity the
  /// greedy balancer equalizes — it tracks scan cost, not unique papers).
  std::vector<uint64_t> member_load;
  /// Per-shard unique-paper counts (popcount of each mask), for reporting.
  std::vector<uint64_t> paper_counts;
  /// Per-shard owned-context counts.
  std::vector<uint64_t> context_counts;
};

/// Partitions `assignment` into `num_shards` shards. `num_shards` must be
/// >= 1. Deterministic: depends only on the arguments.
ShardPartition PartitionContexts(const context::ContextAssignment& assignment,
                                 uint32_t num_shards);

}  // namespace ctxrank::serve

#endif  // CTXRANK_SERVE_SHARD_PARTITION_H_
