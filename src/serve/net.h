// Wire protocol for ctxrankd (see docs/PROTOCOL.md for the normative
// spec). Two protocols share one listening port, distinguished by
// sniffing the first bytes of a connection:
//
//   * CTXQ1 — a length-prefixed little-endian binary protocol. Every
//     frame is a 12-byte header (magic "CTXQ1", type u8, flags u16,
//     body_len u32) followed by body_len bytes. Doubles travel as raw
//     IEEE-754 bit patterns, so a decoded response is bitwise identical
//     to the in-process SearchResponse it was encoded from.
//   * HTTP/1.1 — a deliberately minimal GET-only subset backing
//     /search, /metrics and /healthz for curl and Prometheus.
//
// This header is pure codec: parsing and serialization over in-memory
// buffers, no sockets. The daemon event loop (serve/daemon.h) feeds
// accumulated connection bytes through NextFrame / ParseHttpRequest and
// writes back whatever the Encode* functions produce; tests exercise the
// codec directly for torn-input and corruption cases.
#ifndef CTXRANK_SERVE_NET_H_
#define CTXRANK_SERVE_NET_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "context/search_engine.h"

namespace ctxrank::serve::net {

// ---------------------------------------------------------------------------
// CTXQ1 binary framing.

inline constexpr char kFrameMagic[5] = {'C', 'T', 'X', 'Q', '1'};
inline constexpr size_t kFrameMagicBytes = sizeof(kFrameMagic);
inline constexpr size_t kFrameHeaderBytes = 12;

/// Frame types (header byte 5).
inline constexpr uint8_t kFrameSearchRequest = 1;
inline constexpr uint8_t kFrameSearchResponse = 2;
/// A routed scatter leg (coordinator → shard daemon): global routing has
/// already happened on the coordinator; the body carries the routed
/// context subsequence plus the leg's remaining deadline budget. Answered
/// with an ordinary SearchResponse frame.
inline constexpr uint8_t kFrameShardSearchRequest = 3;
/// Connection health probe and its answer (the shard client's keep-alive
/// pool validates idle connections with these; answered reactor-inline,
/// like /healthz, so a busy worker pool cannot fail a health check).
inline constexpr uint8_t kFramePing = 4;
inline constexpr uint8_t kFramePong = 5;
/// Live ingest (client → a ctxrankd running a mutable index backend):
/// the body carries one paper (text sections, authors, references,
/// evidence terms); answered with an AddPaperResponse frame carrying the
/// assigned global paper id. See docs/INDEXING.md.
inline constexpr uint8_t kFrameAddPaperRequest = 6;
inline constexpr uint8_t kFrameAddPaperResponse = 7;

/// Default cap on a frame body; a peer announcing a larger body is
/// answered with an error frame and disconnected before any allocation.
inline constexpr uint32_t kDefaultMaxFrameBytes = 1u << 20;

/// SearchRequest `flags` bits (mapped onto SearchOptions bools).
inline constexpr uint32_t kRequestExactScan = 1u << 0;
inline constexpr uint32_t kRequestBypassCache = 1u << 1;

/// SearchResponse `flags` bits.
inline constexpr uint32_t kResponseDegraded = 1u << 0;

/// Fixed-size prefix of a SearchRequest body (the options fingerprint);
/// the query string follows.
inline constexpr size_t kRequestFixedBytes = 60;
/// Fixed-size prefix of a SearchResponse body.
inline constexpr size_t kResponseFixedBytes = 24;
/// One encoded SearchHit (paper u32, context u32, relevancy/prestige/
/// match f64).
inline constexpr size_t kHitBytes = 32;
/// Fixed-size prefix of a ShardSearchRequest body: the 56-byte options
/// block shared with SearchRequest, then budget_us u64, num_contexts u32,
/// query_len u32. Context entries and the query string follow.
inline constexpr size_t kShardRequestFixedBytes = 72;
/// One encoded routed context (term u32, score f64 as raw bits).
inline constexpr size_t kContextMatchBytes = 12;
/// A Pong body: ok u32, shard_id u32, generation u64.
inline constexpr size_t kPongBytes = 16;
/// Fixed-size prefix of an AddPaperRequest body: title_len u32,
/// abstract_len u32, body_len u32, index_terms_len u32, num_authors u32,
/// num_references u32, num_evidence u32, reserved u32. The id arrays
/// (u32 each) follow, then the four text sections back to back.
inline constexpr size_t kAddPaperFixedBytes = 32;
/// An AddPaperResponse body: code u32, paper_id u32, num_papers u32,
/// message_len u32, generation u64; the message follows.
inline constexpr size_t kAddPaperResponseFixedBytes = 24;

// ---------------------------------------------------------------------------
// Response-header generation tags.
//
// The u16 `flags` word of the frame header was reserved (always 0)
// until the sharded gateway needed to know WHICH snapshot generation a
// shard leg's answer came from: the gateway's merged-result cache keys
// on its view of each shard's generation, and a remote shard that
// hot-reloads between probes could otherwise serve behind a stale
// cached merge. A shard daemon therefore stamps GenerationTag(g) of the
// snapshot that actually answered into the header flags of every
// SearchResponse it sends for a ShardSearchRequest. 0 means "unknown"
// (pre-tag peers, or the daemon observed a reload race mid-search) and
// disables caching of the merge. Tags are 16-bit ring identifiers, not
// generation numbers: equal tags mean "almost certainly the same
// generation", unequal tags mean "definitely different".

/// Folds a 64-bit supervisor generation onto the non-zero u16 ring
/// 1..65535 (generation 0 — nothing loaded — maps to the reserved
/// "unknown" tag 0).
inline constexpr uint16_t GenerationTag(uint64_t generation) {
  return generation == 0
             ? uint16_t{0}
             : static_cast<uint16_t>((generation - 1) % 65535 + 1);
}

/// \brief A search request as it travels on the wire: the query string
/// plus the SearchOptions fields the protocol exposes. Fields without a
/// wire encoding (num_threads, trace) keep their defaults on decode —
/// they are serving-side policy, not client-settable.
struct WireRequest {
  std::string query;
  context::SearchOptions options;
};

/// \brief A scatter leg on the wire (kFrameShardSearchRequest): the query
/// text (the leg re-analyzes it into the shared global term space), the
/// options fingerprint, the routed context subsequence this shard owns —
/// scores as raw f64 bits, so the leg scan is bitwise identical to a
/// local one — and the leg's remaining deadline budget in microseconds
/// (0 = no deadline; the receiver arms Deadline::At(now + budget)).
struct WireShardRequest {
  std::string query;
  context::SearchOptions options;
  uint64_t budget_us = 0;
  std::vector<context::ContextMatch> contexts;
};

/// \brief A decoded SearchResponse frame. Mirrors context::SearchResponse
/// minus the trace pointer (traces never travel on the wire).
struct WireResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;
  bool degraded = false;
  std::vector<context::SearchHit> hits;
  std::vector<ontology::TermId> skipped_contexts;
  /// Shards that contributed nothing to a sharded-backend response (empty
  /// for monolithic backends). Wire encoding: the count lives in what was
  /// the reserved u32 at body offset 20 (always 0 before sharding, so old
  /// frames decode as "no skipped shards"), the ids follow the skipped
  /// context ids.
  std::vector<uint32_t> skipped_shards;
  /// Shard generation tag carried in the response *frame header* flags,
  /// not the body — DecodeSearchResponseBody leaves it 0; the transport
  /// (ShardClient) copies Frame::flags here. 0 = unknown / untagged.
  uint16_t generation_tag = 0;
};

/// \brief One paper on the ingest wire (kFrameAddPaperRequest). Mirrors
/// MutableIndex::IngestPaper: the four text sections, author ids,
/// reference paper ids, and the ontology terms the paper is annotation
/// evidence for. The paper id is assigned by the receiving index and
/// returned in the AddPaperResponse.
struct WireAddPaper {
  std::string title;
  std::string abstract_text;
  std::string body;
  std::string index_terms;
  std::vector<uint32_t> authors;
  std::vector<uint32_t> references;
  std::vector<uint32_t> evidence_terms;
};

/// \brief The ingest answer (kFrameAddPaperResponse).
struct WireAddPaperResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;
  /// Assigned global paper id (only meaningful when code == kOk).
  uint32_t paper_id = 0;
  /// Total papers now searchable (base + delta).
  uint32_t num_papers = 0;
  /// The index's compaction generation at answer time.
  uint64_t generation = 0;
};

/// Outcome of scanning a connection buffer for the next frame.
enum class FrameState {
  kNeedMore,   ///< Incomplete header or body; read more bytes.
  kReady,      ///< A whole frame is available (`type`, `body`, `consumed`).
  kBadMagic,   ///< First bytes are not "CTXQ1" — not this protocol.
  kBadFrame,   ///< Magic matched but the header is invalid (type/flags).
  kOversized,  ///< body_len exceeds the configured cap.
};

struct Frame {
  FrameState state = FrameState::kNeedMore;
  uint8_t type = 0;
  /// Header flags word. Must be 0 on every frame type except
  /// kFrameSearchResponse, where it carries the shard generation tag
  /// (see GenerationTag above); NextFrame rejects the rest as kBadFrame.
  uint16_t flags = 0;
  /// Body bytes, viewing into the caller's buffer (valid until the caller
  /// mutates it). Only meaningful in kReady.
  std::string_view body;
  /// Bytes to drop from the front of the buffer after handling (header +
  /// body). Only meaningful in kReady.
  size_t consumed = 0;
  std::string error;
};

/// Scans `buf` (the unconsumed front of a connection's read buffer) for
/// one complete frame. Never consumes implicitly: on kReady the caller
/// erases `consumed` bytes after processing `body`. Tolerates torn reads
/// — any prefix of a valid frame yields kNeedMore.
Frame NextFrame(std::string_view buf, uint32_t max_frame_bytes);

/// Encodes a complete SearchRequest frame (header + body).
std::string EncodeSearchRequest(const WireRequest& request);

/// Decodes a SearchRequest frame *body* (as yielded by NextFrame).
Result<WireRequest> DecodeSearchRequestBody(std::string_view body);

/// Encodes a complete SearchResponse frame from an in-process response.
/// Double fields are stored as raw IEEE-754 bits: encode→decode is a
/// bitwise round trip. `header_flags` is stamped into the frame header
/// (shard daemons pass GenerationTag(generation) on scatter-leg answers;
/// everything else leaves it 0).
std::string EncodeSearchResponse(const context::SearchResponse& response,
                                 uint16_t header_flags = 0);

/// Decodes a SearchResponse frame *body*.
Result<WireResponse> DecodeSearchResponseBody(std::string_view body);

/// Encodes a complete ShardSearchRequest frame (header + body).
std::string EncodeShardSearchRequest(const WireShardRequest& request);

/// Decodes a ShardSearchRequest frame *body*.
Result<WireShardRequest> DecodeShardSearchRequestBody(std::string_view body);

/// \brief A decoded Pong frame: the shard daemon's liveness answer.
struct WirePong {
  bool ok = false;           ///< Backend has a serving snapshot.
  uint32_t shard_id = 0;     ///< Shard id of the served snapshot set.
  uint64_t generation = 0;   ///< Supervisor generation (0 = none loaded).
};

/// Encodes a complete AddPaperRequest frame (header + body).
std::string EncodeAddPaperRequest(const WireAddPaper& paper);

/// Decodes an AddPaperRequest frame *body*.
Result<WireAddPaper> DecodeAddPaperRequestBody(std::string_view body);

/// Encodes a complete AddPaperResponse frame (header + body).
std::string EncodeAddPaperResponse(const WireAddPaperResponse& response);

/// Decodes an AddPaperResponse frame *body*.
Result<WireAddPaperResponse> DecodeAddPaperResponseBody(std::string_view body);

/// Encodes a complete Ping frame (empty body).
std::string EncodePing();
/// Encodes a complete Pong frame.
std::string EncodePong(const WirePong& pong);
/// Decodes a Pong frame *body*.
Result<WirePong> DecodePongBody(std::string_view body);

// ---------------------------------------------------------------------------
// Hardened socket writes (shared by the daemon reactor and ShardClient).

enum class IoState {
  kDone,        ///< Everything written.
  kWouldBlock,  ///< Kernel buffer full (EAGAIN); `written` bytes went out.
  kError,       ///< Fatal socket error; `error` holds errno (EPIPE, ...).
};

struct IoResult {
  IoState state = IoState::kDone;
  size_t written = 0;
  int error = 0;
};

/// Writes as much of `data` to `fd` as the kernel accepts right now.
/// EINTR is resumed, short writes are continued, and SIGPIPE is
/// suppressed via MSG_NOSIGNAL so a dead peer surfaces as an EPIPE
/// IoResult instead of killing the process. Works on blocking and
/// non-blocking sockets alike (a blocking socket never yields
/// kWouldBlock).
IoResult WriteSome(int fd, std::string_view data);

/// Blocking-path companion for client sockets: resumes WriteSome across
/// kWouldBlock by polling for writability until everything is written or
/// `deadline` expires (kDeadlineExceeded). kIoError on socket errors.
Status SendAll(int fd, std::string_view data, const Deadline& deadline);

// ---------------------------------------------------------------------------
// Minimal HTTP/1.1 (GET-only).

struct HttpRequest {
  std::string method;
  /// Request path without the query string, e.g. "/search".
  std::string path;
  /// Decoded query parameters in order of appearance.
  std::vector<std::pair<std::string, std::string>> params;
  /// False when the client sent `Connection: close` (or HTTP/1.0 without
  /// keep-alive).
  bool keep_alive = true;

  /// Last value of parameter `key`, or `fallback`.
  std::string_view Param(std::string_view key,
                         std::string_view fallback = "") const;
};

enum class HttpParseState {
  kNeedMore,  ///< Header terminator not seen yet.
  kReady,     ///< Parsed one request; erase `consumed` bytes.
  kBad,       ///< Malformed request line / headers — respond 400 + close.
  kTooLarge,  ///< Headers exceed the cap — respond 431 + close.
};

struct HttpParseResult {
  HttpParseState state = HttpParseState::kNeedMore;
  HttpRequest request;
  size_t consumed = 0;
  std::string error;
};

/// Parses one request's header block from the front of `buf` (request
/// bodies are not supported — ctxrankd is GET-only). `max_header_bytes`
/// bounds the accumulated header size.
HttpParseResult ParseHttpRequest(std::string_view buf,
                                 size_t max_header_bytes = 16 * 1024);

/// Percent-decodes a URL component ('+' becomes a space; bad escapes are
/// passed through verbatim).
std::string UrlDecode(std::string_view in);

/// Maps a StatusCode onto the HTTP status it is served as (kOk=200,
/// kInvalidArgument=400, kNotFound=404, kResourceExhausted=429,
/// kDeadlineExceeded=504, everything else 500).
int HttpStatusFor(StatusCode code);

/// Serializes a full HTTP/1.1 response with Content-Length and the
/// matching Connection header.
std::string BuildHttpResponse(int status, std::string_view content_type,
                              std::string_view body, bool keep_alive);

/// JSON-escapes a string for embedding between double quotes.
std::string JsonEscape(std::string_view in);

/// Renders a SearchResponse as the /search JSON document. `title` maps a
/// paper id to its title ("" omits the field); pass nullptr when the
/// snapshot has no titles.
std::string SearchResponseJson(
    const context::SearchResponse& response,
    const std::function<std::string_view(corpus::PaperId)>& title);

}  // namespace ctxrank::serve::net

#endif  // CTXRANK_SERVE_NET_H_
