#include "serve/sharded_engine.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/endian.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "eval/experiment.h"
#include "serve/snapshot.h"

namespace ctxrank::serve {

namespace {

struct ShardedMetrics {
  obs::Counter& queries;
  obs::Counter& legs;
  obs::Counter& legs_inline;
  obs::Counter& shards_skipped;
  obs::Counter& degraded;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Histogram& latency_us;
};

ShardedMetrics& Metrics() {
  auto& reg = obs::MetricsRegistry::Instance();
  static ShardedMetrics m{
      reg.GetCounter("ctxrank_sharded_queries_total"),
      reg.GetCounter("ctxrank_sharded_legs_total"),
      reg.GetCounter("ctxrank_sharded_legs_inline_total"),
      reg.GetCounter("ctxrank_sharded_shards_skipped_total"),
      reg.GetCounter("ctxrank_sharded_degraded_total"),
      reg.GetCounter("ctxrank_sharded_cache_hits_total"),
      reg.GetCounter("ctxrank_sharded_cache_misses_total"),
      reg.GetHistogram("ctxrank_sharded_latency_us", obs::LatencyBucketsUs()),
  };
  return m;
}

using MonoClock = std::chrono::steady_clock;

uint64_t MicrosSince(MonoClock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(MonoClock::now() -
                                                            start)
          .count());
}

/// Per-query completion latch: the scatter pool is shared by concurrent
/// queries, so a coordinator must wait for ITS legs only — ThreadPool::
/// Wait() (all submitted tasks) would entangle unrelated queries.
class LegLatch {
 public:
  explicit LegLatch(size_t pending) : pending_(pending) {}
  void Done() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--pending_ == 0) cv_.notify_all();
  }
  void Await() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return pending_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t pending_;
};

void AppendU64(std::string& out, uint64_t v) { AppendLE64(out, v); }
void AppendF64(std::string& out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  AppendLE64(out, bits);
}

}  // namespace

std::string ShardPath(const std::string& base, uint32_t shard,
                      uint32_t num_shards) {
  return base + ".shard" + std::to_string(shard) + "-of-" +
         std::to_string(num_shards);
}

Status SaveShardedSnapshot(
    const corpus::TokenizedCorpus& tc, const ontology::Ontology& onto,
    const context::ContextAssignment& assignment,
    const context::PrestigeScores& global_prestige,
    const corpus::Corpus& corpus, const std::string& base_path,
    uint32_t num_shards,
    const context::ContextSearchEngine::EngineOptions& engine_options,
    size_t num_threads, ShardPartition* out_partition) {
  if (num_shards == 0) {
    return Status::InvalidArgument("SaveShardedSnapshot: num_shards must be >= 1");
  }
  const size_t num_terms = assignment.num_terms();
  const size_t num_papers = assignment.num_papers();

  ShardPartition partition = PartitionContexts(assignment, num_shards);

  for (uint32_t s = 0; s < num_shards; ++s) {
    // Restricted per-shard serving state over the GLOBAL corpus: only the
    // owned contexts carry members and prestige, so the engine builds
    // impact indexes for exactly the shard's contexts while every paper
    // id, IDF weight and routing score stays global.
    context::ContextAssignment restricted(num_terms, num_papers);
    context::PrestigeScores prestige(num_terms);
    for (size_t t = 0; t < num_terms; ++t) {
      if (partition.owners[t] != s) continue;
      const ontology::TermId term = static_cast<ontology::TermId>(t);
      const auto members = assignment.Members(term);
      restricted.SetMembers(
          term, std::vector<corpus::PaperId>(members.begin(), members.end()));
      restricted.SetRepresentative(term, assignment.Representative(term));
      restricted.SetInherited(term, assignment.InheritedFrom(term),
                              assignment.DecayFactor(term));
      const auto scores = global_prestige.Scores(term);
      prestige.Set(term, std::vector<double>(scores.begin(), scores.end()));
    }
    context::ContextSearchEngine shard_engine(tc, onto, restricted, prestige,
                                              engine_options);
    SnapshotInputs inputs;
    inputs.tc = &tc;
    inputs.onto = &onto;
    inputs.assignment = &restricted;
    inputs.prestige = &prestige;
    inputs.engine = &shard_engine;
    inputs.corpus = &corpus;
    inputs.paper_mask = partition.paper_masks[s];
    inputs.shard_owners = partition.owners;
    inputs.shard_id = s;
    inputs.num_shards = num_shards;
    CTXRANK_RETURN_NOT_OK(
        SaveSnapshot(inputs, ShardPath(base_path, s, num_shards), num_threads));
  }
  if (out_partition != nullptr) *out_partition = std::move(partition);
  return Status::OK();
}

Status SaveShardedSnapshot(
    const eval::World& world, const std::string& base_path,
    uint32_t num_shards,
    const context::ContextSearchEngine::EngineOptions& engine_options,
    size_t num_threads, ShardPartition* out_partition) {
  return SaveShardedSnapshot(world.tc(), world.onto(), world.text_set(),
                             world.text_set_text_scores(), world.corpus(),
                             base_path, num_shards, engine_options,
                             num_threads, out_partition);
}

ShardedEngine::ShardedEngine() : ShardedEngine(Options()) {}

ShardedEngine::ShardedEngine(Options options) : options_(std::move(options)) {
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<MergedCache>(options_.cache_capacity);
  }
}

ShardedEngine::~ShardedEngine() {
  if (loader_.joinable()) loader_.join();
  StopWatching();
}

Status ShardedEngine::Open(const std::string& base_path, uint32_t num_shards) {
  if (!shards_.empty()) {
    return Status::FailedPrecondition("ShardedEngine::Open: already open");
  }
  if (num_shards == 0) {
    return Status::InvalidArgument("ShardedEngine::Open: num_shards must be >= 1");
  }
  base_path_ = base_path;
  pool_ = std::make_unique<ThreadPool>(ResolveNumThreads(options_.pool_threads));
  shards_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<SnapshotSupervisor>(options_.supervisor));
    shard_paths_.push_back(ShardPath(base_path, s, num_shards));
  }
  // Load all shards concurrently — with the default single-threaded
  // per-shard load this is where load-to-first-query scales with N.
  std::vector<Status> statuses(num_shards);
  LegLatch latch(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    pool_->Submit([this, s, &statuses, &latch] {
      statuses[s] = shards_[s]->Reload(shard_paths_[s]);
      latch.Done();
    });
  }
  latch.Await();
  for (uint32_t s = 0; s < num_shards; ++s) {
    if (!statuses[s].ok()) {
      return Status(statuses[s].code(),
                    "shard " + std::to_string(s) + ": " +
                        std::string(statuses[s].message()));
    }
  }
  return Status::OK();
}

Status ShardedEngine::OpenDetached(const std::string& base_path,
                                   uint32_t num_shards) {
  if (!shards_.empty()) {
    return Status::FailedPrecondition("ShardedEngine::OpenDetached: already open");
  }
  if (num_shards == 0) {
    return Status::InvalidArgument(
        "ShardedEngine::OpenDetached: num_shards must be >= 1");
  }
  base_path_ = base_path;
  pool_ = std::make_unique<ThreadPool>(ResolveNumThreads(options_.pool_threads));
  shards_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<SnapshotSupervisor>(options_.supervisor));
    shard_paths_.push_back(ShardPath(base_path, s, num_shards));
  }
  // shards_ is complete before the loader starts, so concurrent queries
  // only ever observe supervisors flipping from empty to live, in shard
  // order — the staggered-availability contract.
  loader_ = std::thread([this, num_shards] {
    Status first;
    for (uint32_t s = 0; s < num_shards; ++s) {
      const Status st = shards_[s]->Reload(shard_paths_[s]);
      if (first.ok() && !st.ok()) {
        first = Status(st.code(), "shard " + std::to_string(s) + ": " +
                                      std::string(st.message()));
      }
    }
    const std::lock_guard<std::mutex> lock(open_mu_);
    open_status_ = first;
  });
  return Status::OK();
}

Status ShardedEngine::AwaitOpen() {
  if (loader_.joinable()) loader_.join();
  const std::lock_guard<std::mutex> lock(open_mu_);
  return open_status_;
}

Status ShardedEngine::OpenRemote(const std::string& router_path,
                                 std::vector<RemoteShardSpec> remotes) {
  if (!shards_.empty()) {
    return Status::FailedPrecondition("ShardedEngine::OpenRemote: already open");
  }
  if (remotes.empty()) {
    return Status::InvalidArgument(
        "ShardedEngine::OpenRemote: no remote shards given");
  }
  for (size_t i = 0; i < remotes.size(); ++i) {
    if (!remotes[i].primary.valid()) {
      return Status::InvalidArgument("ShardedEngine::OpenRemote: shard " +
                                     std::to_string(i) +
                                     " has no primary endpoint");
    }
  }
  base_path_ = router_path;
  pool_ = std::make_unique<ThreadPool>(ResolveNumThreads(options_.pool_threads));
  shards_.push_back(std::make_unique<SnapshotSupervisor>(options_.supervisor));
  shard_paths_.push_back(router_path);
  CTXRANK_RETURN_NOT_OK(shards_[0]->Reload(router_path));
  // Any shard file of the set routes identically, but it must BE a file
  // of a matching set: a mismatched shard count would route contexts to
  // shards that do not own them.
  const auto snap = shards_[0]->current();
  const uint32_t snap_shards = snap->num_shards();
  if (snap_shards == 0 && remotes.size() != 1) {
    return Status::InvalidArgument(
        "ShardedEngine::OpenRemote: router snapshot is monolithic (no "
        "owners map) but " +
        std::to_string(remotes.size()) + " remote shards were configured");
  }
  if (snap_shards != 0 && snap_shards != remotes.size()) {
    return Status::InvalidArgument(
        "ShardedEngine::OpenRemote: router snapshot is part of a " +
        std::to_string(snap_shards) + "-shard set but " +
        std::to_string(remotes.size()) + " remote shards were configured");
  }
  clients_.reserve(remotes.size());
  for (size_t i = 0; i < remotes.size(); ++i) {
    clients_.push_back(std::make_unique<ShardClient>(
        static_cast<uint32_t>(i), std::move(remotes[i].primary),
        std::move(remotes[i].replica), options_.client));
  }
  // The merged cache stays on in remote mode: shard daemons stamp their
  // snapshot generation tag into the CTXQ1 response header, the clients
  // remember it, and SearchImpl folds every client's tag into the cache
  // key — a remote reload changes the tag and orphans stale entries.
  return Status::OK();
}

std::vector<ShardClient::Stats> ShardedEngine::client_stats() const {
  std::vector<ShardClient::Stats> out;
  out.reserve(clients_.size());
  for (const auto& client : clients_) out.push_back(client->stats());
  return out;
}

Status ShardedEngine::Reload() {
  if (shards_.empty()) {
    return Status::FailedPrecondition("ShardedEngine::Reload: not open");
  }
  const uint32_t n = static_cast<uint32_t>(shards_.size());
  std::vector<Status> statuses(n);
  LegLatch latch(n);
  for (uint32_t s = 0; s < n; ++s) {
    pool_->Submit([this, s, &statuses, &latch] {
      statuses[s] = shards_[s]->Reload(shard_paths_[s]);
      latch.Done();
    });
  }
  latch.Await();
  if (cache_ != nullptr) cache_->Clear();
  for (uint32_t s = 0; s < n; ++s) {
    if (!statuses[s].ok()) {
      return Status(statuses[s].code(),
                    "shard " + std::to_string(s) + ": " +
                        std::string(statuses[s].message()));
    }
  }
  return Status::OK();
}

Status ShardedEngine::StartWatching() {
  if (shards_.empty()) {
    return Status::FailedPrecondition("ShardedEngine::StartWatching: not open");
  }
  for (uint32_t s = 0; s < static_cast<uint32_t>(shards_.size()); ++s) {
    CTXRANK_RETURN_NOT_OK(shards_[s]->StartWatching(shard_paths_[s]));
  }
  return Status::OK();
}

void ShardedEngine::StopWatching() {
  for (auto& shard : shards_) shard->StopWatching();
}

void ShardedEngine::TriggerReload() {
  for (auto& shard : shards_) shard->TriggerReload();
  if (cache_ != nullptr) cache_->Clear();
}

std::shared_ptr<const ServingSnapshot> ShardedEngine::shard(uint32_t i) const {
  return i < shards_.size() ? shards_[i]->current() : nullptr;
}

std::vector<SnapshotSupervisor::Stats> ShardedEngine::stats() const {
  std::vector<SnapshotSupervisor::Stats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->stats());
  return out;
}

std::string_view ShardedEngine::TitleOf(corpus::PaperId p) const {
  for (const auto& shard : shards_) {
    const auto snap = shard->current();
    if (snap == nullptr) continue;
    const std::string_view t = snap->title(p);
    if (!t.empty()) return t;
  }
  return {};
}

context::SearchResponse ShardedEngine::SearchEx(
    std::string_view query, const context::SearchOptions& options) const {
  const Deadline deadline = options.deadline_ms > 0
                                ? Deadline::AfterMs(options.deadline_ms)
                                : Deadline();
  return SearchImpl(query, options, deadline);
}

context::SearchResponse ShardedEngine::SearchGuarded(
    std::string_view query, const context::SearchOptions& options,
    const Deadline& deadline) const {
  return SearchImpl(query, options, deadline);
}

context::SearchResponse ShardedEngine::SearchImpl(
    std::string_view query, const context::SearchOptions& options,
    const Deadline& deadline) const {
  ShardedMetrics& m = Metrics();
  m.queries.Increment();
  const auto start = MonoClock::now();
  context::SearchResponse response;

  // Pin every local shard's serving snapshot for the whole query: reloads
  // may swap underneath, but these references keep one consistent
  // generation per shard alive until the gather is done. In remote mode
  // there is exactly one local supervisor — the router snapshot — and the
  // legs live behind ShardClients instead.
  const bool remote = !clients_.empty();
  const uint32_t n = num_shards();
  std::vector<std::shared_ptr<const ServingSnapshot>> snaps(shards_.size());
  const ServingSnapshot* router = nullptr;
  for (size_t s = 0; s < shards_.size(); ++s) {
    snaps[s] = shards_[s]->current();
    if (router == nullptr && snaps[s] != nullptr) router = snaps[s].get();
  }
  if (router == nullptr) {
    response.status = Status::FailedPrecondition(
        "sharded engine: no shard has a serving snapshot");
    return response;
  }

  // Merged-result cache: raw query + result-affecting options + per-shard
  // generations (a reload behind any shard invalidates the key). Degraded
  // results are never cached, mirroring the engine-level cache contract.
  // In remote mode the generations are the clients' last OBSERVED shard
  // generation tags (propagated in the CTXQ1 response header); a shard
  // whose tag is still unknown (0) — or whose observation is older than
  // ping_idle_ms, the same bound that governs pooled-connection trust —
  // disables the cache for the query: better a miss than a merge that
  // outlives a remote reload. The resulting uncached scatter re-observes
  // every shard's live tag, so caching resumes on the next query and the
  // stale-serve window after a remote reload is bounded by ping_idle_ms.
  std::string key;
  bool use_cache = cache_ != nullptr && !options.bypass_cache;
  std::vector<uint16_t> key_tags;  // Remote: tag folded into the key, by shard.
  if (use_cache && remote) {
    // ping_idle_ms == 0 means "trust nothing idle", which for tags reads
    // as: never cache above remote legs.
    const uint64_t max_age_ms = options_.client.ping_idle_ms;
    key_tags.resize(n, 0);
    for (uint32_t s = 0; s < n; ++s) {
      key_tags[s] =
          max_age_ms == 0 ? 0 : clients_[s]->last_generation_tag(max_age_ms);
      if (key_tags[s] == 0) {
        use_cache = false;
        break;
      }
    }
  }
  if (use_cache) {
    key.assign(query);
    key.push_back('\0');
    AppendU64(key, options.max_contexts);
    AppendU64(key, options.semantic_expansion);
    AppendU64(key, options.top_k);
    AppendU64(key, options.exact_scan ? 1 : 0);
    AppendU64(key, static_cast<uint64_t>(options.pruning));
    AppendF64(key, options.min_context_score);
    AppendF64(key, options.min_relevancy);
    AppendF64(key, options.weights.prestige);
    AppendF64(key, options.weights.matching);
    if (remote) {
      for (const uint16_t tag : key_tags) AppendU64(key, tag);
    } else {
      for (const auto& shard : shards_) AppendU64(key, shard->generation());
    }
    if (auto cached = cache_->Get(key)) {
      response.hits = **cached;
      response.status = Status::OK();
      response.degraded = false;
      response.skipped_contexts.clear();
      response.skipped_shards.clear();
      m.cache_hits.Increment();
      m.latency_us.Observe(static_cast<double>(MicrosSince(start)));
      return response;
    }
    m.cache_misses.Increment();
  }

  // Route ONCE, globally: every shard snapshot carries the identical
  // routing index plus the global ownership map, so any live shard
  // selects exactly the contexts the monolithic engine would.
  const std::vector<context::ContextMatch> contexts =
      router->engine().RouteQueryText(query, options);
  const std::span<const uint32_t> owners = router->shard_owners();

  // Group the selection by owning shard, preserving global selection
  // order inside each bucket (each leg is then a subsequence of the
  // global scan order) and remembering every context's global rank for
  // the gather tie-break.
  std::vector<std::vector<context::ContextMatch>> buckets(n);
  std::unordered_map<ontology::TermId, size_t> global_rank;
  global_rank.reserve(contexts.size());
  for (size_t i = 0; i < contexts.size(); ++i) {
    const ontology::TermId t = contexts[i].term;
    global_rank.emplace(t, i);
    uint32_t owner = 0;
    if (!owners.empty()) {
      owner = owners[t];
    } else if (n != 1) {
      response.status = Status::FailedPrecondition(
          "sharded engine: snapshot set has no shard-owners map");
      return response;
    }
    if (owner == kNoShardOwner || owner >= n) continue;  // Unroutable.
    buckets[owner].push_back(contexts[i]);
  }

  // Scatter: one leg per shard with selected contexts. Legs run
  // single-threaded (the pool provides cross-leg parallelism; nested
  // parallelism on a shared pool is forbidden) against an equal absolute
  // deadline slice that reserves gather time out of the caller's budget.
  context::SearchOptions leg_options = options;
  leg_options.num_threads = 1;
  leg_options.trace = false;
  const Deadline slice = Deadline::FanOutSlice(
      deadline, options_.slice_reserve_permille, options_.slice_min_reserve_us);

  struct Leg {
    uint32_t shard = 0;
    context::SearchResponse response;
    bool failed = false;  // Fault/missing-snapshot: no contribution at all.
    /// Remote mode: the generation tag the answering daemon stamped in
    /// the response header (0 = unknown / pre-tag peer).
    uint16_t observed_tag = 0;
  };
  std::vector<Leg> legs;
  legs.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    if (buckets[s].empty()) continue;
    legs.emplace_back();
    legs.back().shard = s;
  }
  const auto run_leg = [&](Leg& leg) {
    if (remote) {
      // The remote client runs the whole resilience ladder (retries,
      // failover, hedging); a non-OK result here means the shard is
      // genuinely unreachable and the leg degrades into skipped_shards.
      auto r = clients_[leg.shard]->ShardSearch(query, buckets[leg.shard],
                                                leg_options, slice);
      if (!r.ok() || r.value().code != StatusCode::kOk) {
        leg.failed = true;
        return;
      }
      net::WireResponse wire = std::move(r).value();
      leg.observed_tag = wire.generation_tag;
      leg.response.status = Status::OK();
      leg.response.hits = std::move(wire.hits);
      leg.response.skipped_contexts = std::move(wire.skipped_contexts);
      return;
    }
    if (snaps[leg.shard] == nullptr) {
      leg.failed = true;
      return;
    }
    if (const Status st = fault::MaybeFail("sharded/shard_search"); !st.ok()) {
      leg.failed = true;
      return;
    }
    leg.response = snaps[leg.shard]->engine().SearchRouted(
        query, buckets[leg.shard], leg_options, slice);
    if (!leg.response.status.ok()) leg.failed = true;
  };
  m.legs.Increment(legs.size());
  if (legs.size() == 1) {
    // Single-shard queries skip the pool hop entirely (the common case
    // when a query's contexts co-locate, and all of N == 1).
    m.legs_inline.Increment();
    run_leg(legs[0]);
  } else if (!legs.empty()) {
    LegLatch latch(legs.size());
    for (Leg& leg : legs) {
      pool_->Submit([&run_leg, &leg, &latch] {
        run_leg(leg);
        latch.Done();
      });
    }
    latch.Await();
  }

  // Gather. Per-paper winner: maximum relevancy; on exact ties the
  // context with the LOWEST global selection rank — precisely the hit the
  // monolithic engine's sequential merger (which only replaces on strict
  // improvement, scanning in selection order) would have kept.
  std::unordered_map<corpus::PaperId, context::SearchHit> best;
  std::vector<ontology::TermId> skipped;
  for (Leg& leg : legs) {
    if (leg.failed || (leg.response.hits.empty() &&
                       leg.response.skipped_contexts.size() ==
                           buckets[leg.shard].size() &&
                       !buckets[leg.shard].empty())) {
      // Contributed nothing: every context of the leg is unscanned.
      response.skipped_shards.push_back(leg.shard);
      for (const auto& cm : buckets[leg.shard]) skipped.push_back(cm.term);
      continue;
    }
    for (const ontology::TermId t : leg.response.skipped_contexts) {
      skipped.push_back(t);
    }
    for (const context::SearchHit& hit : leg.response.hits) {
      auto [it, inserted] = best.emplace(hit.paper, hit);
      if (inserted) continue;
      context::SearchHit& cur = it->second;
      const bool better =
          hit.relevancy > cur.relevancy ||
          (hit.relevancy == cur.relevancy &&
           global_rank[hit.context] < global_rank[cur.context]);
      if (better) cur = hit;
    }
  }
  response.hits.reserve(best.size());
  for (const auto& [paper, hit] : best) response.hits.push_back(hit);
  std::sort(response.hits.begin(), response.hits.end(),
            [](const context::SearchHit& a, const context::SearchHit& b) {
              if (a.relevancy != b.relevancy) return a.relevancy > b.relevancy;
              return a.paper < b.paper;
            });
  if (options.top_k > 0 && response.hits.size() > options.top_k) {
    response.hits.resize(options.top_k);
  }
  // Skipped contexts in global selection order (their per-leg order is
  // already a subsequence of it; cross-leg interleaving is restored here).
  std::sort(skipped.begin(), skipped.end(),
            [&](ontology::TermId a, ontology::TermId b) {
              return global_rank[a] < global_rank[b];
            });
  response.skipped_contexts = std::move(skipped);
  std::sort(response.skipped_shards.begin(), response.skipped_shards.end());
  response.degraded = !response.skipped_contexts.empty();
  response.status = Status::OK();

  m.shards_skipped.Increment(response.skipped_shards.size());
  if (response.degraded) m.degraded.Increment();
  bool cacheable = use_cache && !response.degraded;
  if (cacheable && remote) {
    // A remote leg answered by a generation other than the one folded
    // into the key means a reload raced this query: the merge is valid to
    // SERVE but must not be cached under the stale key. Tag 0 (the daemon
    // itself observed a swap mid-search, or a pre-tag peer) is equally
    // uncacheable.
    for (const Leg& leg : legs) {
      if (leg.failed) continue;
      if (leg.observed_tag == 0 || leg.observed_tag != key_tags[leg.shard]) {
        cacheable = false;
        break;
      }
    }
  }
  if (cacheable) {
    cache_->Put(key, std::make_shared<const std::vector<context::SearchHit>>(
                         response.hits));
  }
  m.latency_us.Observe(static_cast<double>(MicrosSince(start)));
  return response;
}

}  // namespace ctxrank::serve
