// Sharded scatter-gather serving: N per-shard snapshots behind one
// search API whose results are bitwise-identical to the monolithic
// engine for any shard count.
//
// Partitioning (see shard_partition.h) assigns whole CONTEXTS to shards,
// so a context's member papers co-locate and a scatter leg answers its
// contexts entirely from local data. Every shard snapshot keeps the
// GLOBAL vocabulary, TF-IDF statistics, routing index and paper-id space
// (non-local papers merely own empty CSR runs), which is what makes the
// per-leg floating-point work — and therefore the merged ranking —
// byte-for-byte the same as one big engine's.
//
// Query path: route ONCE on any live shard's (identical) routing index,
// group the selected contexts by owning shard preserving global selection
// order, scatter one SearchRouted leg per shard onto the engine's thread
// pool with a per-leg deadline slice (Deadline::FanOutSlice), and gather
// by max-relevancy with earliest-global-selection-rank tie-breaking —
// exactly the winner the sequential merger would have kept.
//
// Degradation: a leg that misses its slice returns the prefix it finished
// (its unscanned contexts surface in skipped_contexts); a leg that fails
// outright or never scans anything puts its shard in skipped_shards. A
// shard whose reload failed keeps serving its last-good snapshot (per
// SnapshotSupervisor); a shard with no snapshot at all degrades the
// response instead of failing it. See docs/SHARDING.md.
#ifndef CTXRANK_SERVE_SHARDED_ENGINE_H_
#define CTXRANK_SERVE_SHARDED_ENGINE_H_

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/lru_cache.h"
#include "common/thread_pool.h"
#include "context/search_engine.h"
#include "serve/shard_client.h"
#include "serve/shard_partition.h"
#include "serve/supervisor.h"

namespace ctxrank::eval {
class World;
}  // namespace ctxrank::eval

namespace ctxrank::serve {

/// Canonical shard file naming: shard `i` of an `n`-shard set built from
/// base path "corpus.snap" lives at "corpus.snap.shard0-of-4" etc. The
/// suffix is kept even for n == 1 so a shard set is always recognizable
/// on disk and never collides with a monolithic snapshot at `base`.
std::string ShardPath(const std::string& base, uint32_t shard,
                      uint32_t num_shards);

/// Builds and saves a complete sharded snapshot set: partitions
/// `assignment` with PartitionContexts, builds one restricted assignment
/// + prestige + engine per shard (over the global corpus, so all
/// statistics stay global), and saves the N shard files. `engine_options`
/// must match the options the reference engine was built with — they
/// decide the impact-index shape, and identity with the monolithic engine
/// holds per-leg only when both were built alike. Returns the partition
/// used (for tests and tooling) via `out_partition` when non-null.
Status SaveShardedSnapshot(
    const corpus::TokenizedCorpus& tc, const ontology::Ontology& onto,
    const context::ContextAssignment& assignment,
    const context::PrestigeScores& prestige, const corpus::Corpus& corpus,
    const std::string& base_path, uint32_t num_shards,
    const context::ContextSearchEngine::EngineOptions& engine_options = {},
    size_t num_threads = 0, ShardPartition* out_partition = nullptr);

/// Convenience wrapper over an eval::World (text set, text prestige).
Status SaveShardedSnapshot(
    const eval::World& world, const std::string& base_path,
    uint32_t num_shards,
    const context::ContextSearchEngine::EngineOptions& engine_options = {},
    size_t num_threads = 0, ShardPartition* out_partition = nullptr);

/// \brief N per-shard supervisors + scatter pool + merged-result cache
/// behind one SearchEx/SearchGuarded surface. Query methods are const and
/// thread-safe; Open/Reload/watch configuration is startup-time only.
class ShardedEngine {
 public:
  struct Options {
    /// Applied to every per-shard SnapshotSupervisor. The default load
    /// parallelism is 1 (not hardware concurrency): shards load and
    /// reload CONCURRENTLY with each other, so single-threaded per-shard
    /// loads keep total thread use bounded and make load time scale down
    /// near-linearly with shard count.
    SnapshotSupervisor::Options supervisor = {.num_threads = 1, .on_load = {}};
    /// Scatter pool size (0 = hardware concurrency). Shared by every
    /// in-flight query; legs run single-threaded inside it.
    size_t pool_threads = 0;
    /// Merged-result LRU cache capacity in entries (0 = disabled). Keyed
    /// by the raw query string plus an options fingerprint — coarser than
    /// the per-engine analyzed-term cache (query spelling fragments it),
    /// which is the accepted price for caching above the scatter.
    size_t cache_capacity = 0;
    /// Deadline slice parameters (see Deadline::FanOutSlice): the gather
    /// reserve as thousandths of the remaining budget, and its floor.
    uint64_t slice_reserve_permille = 100;
    uint64_t slice_min_reserve_us = 200;
    /// Applied to every ShardClient in remote mode (OpenRemote): pool
    /// size, retry/backoff schedule, hedging knobs.
    ShardClient::Options client;
  };

  ShardedEngine();
  explicit ShardedEngine(Options options);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Loads all `num_shards` shard files of the set at `base_path`
  /// (ShardPath naming), concurrently. Fails if any shard fails its
  /// initial load — a fleet must start complete; degradation is for
  /// reloads and runtime, not bring-up. Callable once.
  Status Open(const std::string& base_path, uint32_t num_shards);

  /// Staggered bring-up: constructs every shard's supervisor immediately,
  /// then loads the shard files on one background thread in shard order.
  /// Queries are legal as soon as this returns — they fail
  /// kFailedPrecondition until the first shard is live, then serve
  /// degraded (still-loading shards surface in skipped_shards, exactly
  /// like a failed leg at runtime) and finally complete. Time to the
  /// first servable query therefore scales ~1/N with shard count even on
  /// one core — the cold-start win bench/perf_shards measures. Call
  /// AwaitOpen() before Reload()/StartWatching()/destruction-sensitive
  /// teardown; Open() remains the all-or-nothing path.
  Status OpenDetached(const std::string& base_path, uint32_t num_shards);

  /// Blocks until a detached open has attempted every initial load and
  /// returns the first per-shard error (shards that did load keep
  /// serving). Idempotent; OK when bring-up used blocking Open().
  Status AwaitOpen();

  /// Remote topology: the scatter legs run on remote shard daemons
  /// (ShardClient, one per entry of `remotes`, in shard-id order) instead
  /// of local snapshots. `router_path` names ONE local shard file of the
  /// same set — any one works, since every shard file carries the
  /// identical global routing index and owners map — which this process
  /// loads purely to route queries. The merged-result cache keys on the
  /// clients' last observed shard generation tags (stamped by the shard
  /// daemons in the CTXQ1 response header), so a remote reload orphans
  /// stale merges; until every shard's tag is known the cache sits out.
  /// Callable once, mutually exclusive with Open/OpenDetached.
  Status OpenRemote(const std::string& router_path,
                    std::vector<RemoteShardSpec> remotes);

  /// True when legs are served by remote shard daemons.
  bool remote() const { return !clients_.empty(); }
  /// Remote shard client `i` (nullptr when local or out of range).
  const ShardClient* client(uint32_t i) const {
    return i < clients_.size() ? clients_[i].get() : nullptr;
  }
  /// Per-client resilience counters (empty when local).
  std::vector<ShardClient::Stats> client_stats() const;

  /// Triggers a reload on every shard, concurrently. Shards that fail
  /// keep serving their last-good snapshot; the first error is returned
  /// (the rest are in per-shard stats()).
  Status Reload();

  /// Starts one watcher per shard (supervisor watch_interval_ms cadence).
  Status StartWatching();
  void StopWatching();
  void TriggerReload();

  uint32_t num_shards() const {
    return static_cast<uint32_t>(
        clients_.empty() ? shards_.size() : clients_.size());
  }
  /// The currently served snapshot of shard `i` (nullptr before Open).
  std::shared_ptr<const ServingSnapshot> shard(uint32_t i) const;
  std::vector<SnapshotSupervisor::Stats> stats() const;

  /// Scatter-gather search; same contract as the engine's SearchEx, with
  /// SearchResponse::skipped_shards filled on per-shard degradation.
  context::SearchResponse SearchEx(
      std::string_view query, const context::SearchOptions& options) const;

  /// SearchEx against an externally armed deadline (the daemon spine).
  context::SearchResponse SearchGuarded(std::string_view query,
                                        const context::SearchOptions& options,
                                        const Deadline& deadline) const;

  /// Title of paper `p` from whichever shard holds it locally ("" when no
  /// shard does or titles were not saved).
  std::string_view TitleOf(corpus::PaperId p) const;

 private:
  using MergedCache =
      LruCache<std::string,
               std::shared_ptr<const std::vector<context::SearchHit>>>;

  context::SearchResponse SearchImpl(std::string_view query,
                                     const context::SearchOptions& options,
                                     const Deadline& deadline) const;

  Options options_;
  std::string base_path_;
  /// One path per supervisor: ShardPath(base, s, n) in local mode, the
  /// single router path in remote mode. Reload/StartWatching iterate this
  /// so both naming schemes share one code path.
  std::vector<std::string> shard_paths_;
  std::vector<std::unique_ptr<SnapshotSupervisor>> shards_;
  /// Remote mode only: one resilient client per remote shard.
  std::vector<std::unique_ptr<ShardClient>> clients_;
  std::unique_ptr<ThreadPool> pool_;
  mutable std::unique_ptr<MergedCache> cache_;
  // Detached-open loader thread + its aggregated result.
  std::thread loader_;
  std::mutex open_mu_;
  Status open_status_;
};

}  // namespace ctxrank::serve

#endif  // CTXRANK_SERVE_SHARDED_ENGINE_H_
