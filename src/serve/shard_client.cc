#include "serve/shard_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstring>
#include <optional>
#include <thread>
#include <utility>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/stats.h"

namespace ctxrank::serve {
namespace {

using MonoClock = std::chrono::steady_clock;

/// Fleet-wide shard-client telemetry. The retry/hedge/failover counters
/// move by exactly one per event, so tests assert exact deltas under
/// deterministic fault schedules.
struct ClientMetrics {
  obs::Counter& requests;
  obs::Counter& errors;
  obs::Counter& retries;
  obs::Counter& hedges;
  obs::Counter& hedge_wins;
  obs::Counter& failovers;
  obs::Counter& dials;
  obs::Counter& pool_reuses;
  obs::Counter& pings;
  obs::Counter& dirty_drops;
  obs::Histogram& latency_us;
};

ClientMetrics& Metrics() {
  auto& reg = obs::MetricsRegistry::Instance();
  static ClientMetrics m{
      reg.GetCounter("ctxrank_shard_client_requests_total"),
      reg.GetCounter("ctxrank_shard_client_errors_total"),
      reg.GetCounter("ctxrank_shard_client_retries_total"),
      reg.GetCounter("ctxrank_shard_client_hedges_total"),
      reg.GetCounter("ctxrank_shard_client_hedge_wins_total"),
      reg.GetCounter("ctxrank_shard_client_failovers_total"),
      reg.GetCounter("ctxrank_shard_client_dials_total"),
      reg.GetCounter("ctxrank_shard_client_pool_reuse_total"),
      reg.GetCounter("ctxrank_shard_client_pings_total"),
      reg.GetCounter("ctxrank_shard_client_dirty_drops_total"),
      reg.GetHistogram("ctxrank_shard_client_latency_us",
                       obs::LatencyBucketsUs())};
  return m;
}

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          MonoClock::now().time_since_epoch())
          .count());
}

/// Microseconds of budget left on an armed deadline (0 = expired). An
/// unarmed deadline reports 0 too — callers that need "unlimited" check
/// armed() first.
uint64_t RemainingUs(const Deadline& deadline) {
  if (!deadline.armed()) return 0;
  if (deadline.when() == Deadline::Clock::time_point::max()) return UINT64_MAX;
  const auto left = deadline.when() - MonoClock::now();
  if (left.count() <= 0) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(left).count());
}

/// poll() timeout covering both the deadline and an optional earlier
/// wake point (the hedge timer), rounded up so a sub-millisecond budget
/// still sleeps instead of busy-looping.
int PollTimeoutMs(const Deadline& deadline, bool has_wake,
                  MonoClock::time_point wake_at) {
  int64_t us = INT32_MAX;
  if (deadline.armed() &&
      deadline.when() != Deadline::Clock::time_point::max()) {
    us = std::chrono::duration_cast<std::chrono::microseconds>(
             deadline.when() - MonoClock::now())
             .count();
  }
  if (has_wake) {
    const int64_t wake_us =
        std::chrono::duration_cast<std::chrono::microseconds>(wake_at -
                                                              MonoClock::now())
            .count();
    us = std::min(us, wake_us);
  }
  if (us <= 0) return 0;
  return static_cast<int>(std::min<int64_t>((us + 999) / 1000, 60 * 1000));
}

/// Transport-level failures are all reported as kIoError so the retry
/// classifier has one rule: kIoError is transient, anything else final.
bool Transient(const Status& status) {
  return status.code() == StatusCode::kIoError;
}

}  // namespace

ShardClient::ShardClient(uint32_t shard, Endpoint primary, Endpoint replica,
                         Options options)
    : shard_(shard),
      primary_(std::move(primary)),
      replica_(std::move(replica)),
      options_(std::move(options)) {
  latency_ring_.resize(128, 0.0);
}

ShardClient::~ShardClient() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  for (auto& pool : pool_) {
    for (const PooledConn& pc : pool) ::close(pc.fd);
    pool.clear();
  }
}

ShardClient::Stats ShardClient::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

size_t ShardClient::pooled_connections() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  return pool_[0].size() + pool_[1].size();
}

uint64_t ShardClient::HedgeDelayUs() const {
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(latency_mu_);
    if (latency_count_ < options_.hedge_warmup) return options_.hedge_after_us;
    samples.assign(latency_ring_.begin(),
                   latency_ring_.begin() +
                       std::min(latency_count_, latency_ring_.size()));
  }
  const double p = Percentile(std::move(samples), options_.hedge_percentile);
  const uint64_t us = static_cast<uint64_t>(p < 0 ? 0 : p);
  return std::clamp(us, options_.hedge_min_us, options_.hedge_max_us);
}

void ShardClient::RecordLatencyUs(double us) {
  Metrics().latency_us.Observe(us);
  std::lock_guard<std::mutex> lock(latency_mu_);
  latency_ring_[latency_next_] = us;
  latency_next_ = (latency_next_ + 1) % latency_ring_.size();
  ++latency_count_;
}

Result<int> ShardClient::Dial(const Endpoint& endpoint,
                              const Deadline& deadline) {
  if (!endpoint.valid()) {
    return Status::InvalidArgument("shard " + std::to_string(shard_) +
                                   ": no endpoint configured");
  }
  // Injected connection refusal (the "primary is down" storm case).
  if (const Status st = fault::MaybeFail("shard_client/connect"); !st.ok()) {
    return st;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable shard endpoint \"" +
                                   endpoint.ToString() + "\"");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    const Status st = Status::IoError("connect " + endpoint.ToString() +
                                      ": " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  // Await the nonblocking connect, bounded by connect_timeout_ms and the
  // request deadline.
  uint64_t timeout_ms = options_.connect_timeout_ms;
  if (deadline.armed()) {
    timeout_ms = std::min<uint64_t>(
        timeout_ms, (RemainingUs(deadline) + 999) / 1000);
  }
  pollfd pfd{fd, POLLOUT, 0};
  const int rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
  if (rc <= 0) {
    ::close(fd);
    return Status::IoError("connect " + endpoint.ToString() +
                           (rc == 0 ? ": timed out" : ": poll failed"));
  }
  int so_error = 0;
  socklen_t len = sizeof(so_error);
  ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
  if (so_error != 0) {
    ::close(fd);
    return Status::IoError("connect " + endpoint.ToString() + ": " +
                           std::strerror(so_error));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status ShardClient::SendFrame(int fd, std::string_view encoded,
                              const Deadline& deadline) {
  // Injected drop-after-N-bytes: write the allowed prefix (the server
  // sees a torn frame and waits it out), then report the wire as dead.
  const size_t allowed =
      fault::MaybeTruncateIo("shard_client/send", encoded.size());
  if (allowed < encoded.size()) {
    (void)net::SendAll(fd, encoded.substr(0, allowed), deadline);
    return Status::IoError("injected send drop after " +
                           std::to_string(allowed) + " bytes");
  }
  if (const Status st = fault::MaybeFail("shard_client/send"); !st.ok()) {
    return st;
  }
  return net::SendAll(fd, encoded, deadline);
}

namespace {

enum class ReadOutcome { kNeedMore, kFrame, kFailed };

struct ReadResult {
  ReadOutcome outcome = ReadOutcome::kNeedMore;
  std::string_view body;   ///< Valid while leg.buf is unmodified.
  size_t consumed = 0;
  uint16_t flags = 0;      ///< Frame header flags (generation tag).
  Status error;
};

}  // namespace

/// Drains whatever is readable on `leg` without blocking and scans for
/// one complete frame of `want_type`. All failures (peer close, reset,
/// garbled framing, unexpected type) come back as kIoError: from the
/// retry ladder's point of view the connection is simply dead.
static ReadResult ReadLeg(int fd, std::string& buf, uint8_t want_type,
                          uint32_t max_frame_bytes) {
  ReadResult result;
  if (const Status st = fault::MaybeFail("shard_client/recv"); !st.ok()) {
    result.outcome = ReadOutcome::kFailed;
    result.error = Status::IoError("injected recv failure: " +
                                   std::string(st.message()));
    return result;
  }
  for (;;) {
    char chunk[16384];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      const size_t off = buf.size();
      buf.append(chunk, static_cast<size_t>(n));
      // Injected frame corruption: flip the first byte of this chunk —
      // depending on where it lands it tears the magic, the type or the
      // body, and every case must surface as a transient leg failure,
      // never as wrong results.
      if (const Status st = fault::MaybeFail("shard_client/garble");
          !st.ok()) {
        buf[off] = static_cast<char>(buf[off] ^ 0xFF);
      }
      continue;
    }
    if (n == 0) {
      result.outcome = ReadOutcome::kFailed;
      result.error = Status::IoError("shard connection closed by peer");
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    result.outcome = ReadOutcome::kFailed;
    result.error = Status::IoError(std::string("recv: ") +
                                   std::strerror(errno));
    return result;
  }
  const net::Frame f = net::NextFrame(buf, max_frame_bytes);
  switch (f.state) {
    case net::FrameState::kNeedMore:
      return result;
    case net::FrameState::kReady:
      if (f.type != want_type) {
        result.outcome = ReadOutcome::kFailed;
        result.error = Status::IoError("unexpected frame type " +
                                       std::to_string(f.type) + " (want " +
                                       std::to_string(want_type) + ")");
        return result;
      }
      result.outcome = ReadOutcome::kFrame;
      result.body = f.body;
      result.consumed = f.consumed;
      result.flags = f.flags;
      return result;
    default:
      result.outcome = ReadOutcome::kFailed;
      result.error = Status::IoError("bad response frame: " + f.error);
      return result;
  }
}

Result<std::string> ShardClient::RecvFrame(InFlight& leg, uint8_t want_type,
                                           const Deadline& deadline) {
  for (;;) {
    const ReadResult r =
        ReadLeg(leg.fd, leg.buf, want_type, options_.max_frame_bytes);
    if (r.outcome == ReadOutcome::kFailed) return r.error;
    if (r.outcome == ReadOutcome::kFrame) {
      std::string body(r.body);
      leg.buf.erase(0, r.consumed);
      return body;
    }
    if (deadline.expired()) {
      return Status::DeadlineExceeded("awaiting shard response");
    }
    pollfd pfd{leg.fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1,
                          PollTimeoutMs(deadline, false, {}));
    if (rc < 0 && errno != EINTR) {
      return Status::IoError(std::string("poll: ") + std::strerror(errno));
    }
  }
}

Status ShardClient::ValidateConn(int fd, const Deadline& deadline) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.pings;
  }
  Metrics().pings.Increment();
  // Probe bounded by connect_timeout_ms: a health check must stay cheap
  // even when the request budget is generous.
  Deadline probe = Deadline::AfterMs(options_.connect_timeout_ms);
  if (deadline.armed() && RemainingUs(deadline) / 1000 <
                              options_.connect_timeout_ms) {
    probe = deadline;
  }
  CTXRANK_RETURN_NOT_OK(net::SendAll(fd, net::EncodePing(), probe));
  InFlight tmp;
  tmp.fd = fd;
  auto body = RecvFrame(tmp, net::kFramePong, probe);
  if (!body.ok()) return body.status();
  if (!tmp.buf.empty()) {
    return Status::IoError("stray bytes after PONG");
  }
  auto pong = net::DecodePongBody(body.value());
  if (!pong.ok()) return pong.status();
  if (!pong.value().ok) {
    return Status::IoError("shard daemon reports unhealthy backend");
  }
  StoreGenerationTag(net::GenerationTag(pong.value().generation));
  return Status::OK();
}

void ShardClient::StoreGenerationTag(uint16_t tag) {
  last_generation_tag_.store(tag, std::memory_order_relaxed);
  last_tag_observed_ms_.store(NowMs(), std::memory_order_relaxed);
}

uint16_t ShardClient::last_generation_tag(uint64_t max_age_ms) const {
  const uint16_t tag = last_generation_tag_.load(std::memory_order_relaxed);
  if (tag == 0 || max_age_ms == 0) return tag;
  const uint64_t observed =
      last_tag_observed_ms_.load(std::memory_order_relaxed);
  return NowMs() - observed > max_age_ms ? uint16_t{0} : tag;
}

Result<ShardClient::InFlight> ShardClient::Checkout(int endpoint_index,
                                                    const Deadline& deadline) {
  const Endpoint& endpoint = endpoint_index == 0 ? primary_ : replica_;
  const uint64_t now_ms = NowMs();
  for (;;) {
    PooledConn pc;
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      auto& pool = pool_[endpoint_index];
      if (pool.empty()) break;
      pc = pool.back();
      pool.pop_back();
    }
    // A readable idle connection means EOF or stray bytes — either way
    // it is not reusable.
    pollfd pfd{pc.fd, POLLIN, 0};
    if (::poll(&pfd, 1, 0) != 0) {
      ::close(pc.fd);
      continue;
    }
    if (now_ms - pc.idle_since_ms > options_.ping_idle_ms) {
      if (!ValidateConn(pc.fd, deadline).ok()) {
        ::close(pc.fd);
        continue;
      }
    }
    InFlight leg;
    leg.fd = pc.fd;
    leg.on_replica = endpoint_index == 1;
    leg.pooled = true;
    return leg;
  }
  auto fd = Dial(endpoint, deadline);
  if (!fd.ok()) return fd.status();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.dials;
  }
  Metrics().dials.Increment();
  InFlight leg;
  leg.fd = fd.value();
  leg.on_replica = endpoint_index == 1;
  leg.pooled = false;
  return leg;
}

void ShardClient::Checkin(int endpoint_index, InFlight leg) {
  // Pool invariant, enforced here and nowhere else: a pooled connection
  // is quiescent. A leg that finished with unconsumed input — residual
  // bytes in its parse buffer (e.g. a garbled loser frame that arrived
  // after the winner) or bytes still kernel-readable — is in an
  // undefined mid-frame state; pooling it would poison the next request
  // on this endpoint. Drop, never pool.
  bool dirty = !leg.buf.empty();
  if (!dirty) {
    pollfd pfd{leg.fd, POLLIN, 0};
    dirty = ::poll(&pfd, 1, 0) != 0;
  }
  if (dirty) {
    ::close(leg.fd);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.dirty_drops;
    }
    Metrics().dirty_drops.Increment();
    return;
  }
  std::lock_guard<std::mutex> lock(pool_mu_);
  auto& pool = pool_[endpoint_index];
  pool.push_back(PooledConn{leg.fd, NowMs()});
  if (pool.size() > options_.pool_capacity) {
    // Oldest idle connection goes; the freshly used one stays.
    ::close(pool.front().fd);
    pool.erase(pool.begin());
  }
}

Result<net::WirePong> ShardClient::Ping(const Deadline& deadline) {
  const Deadline eff = deadline.armed()
                           ? deadline
                           : Deadline::AfterMs(options_.request_timeout_ms);
  auto leg = Checkout(0, eff);
  if (!leg.ok()) return leg.status();
  InFlight in = std::move(leg).value();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.pings;
  }
  Metrics().pings.Increment();
  Status sent = net::SendAll(in.fd, net::EncodePing(), eff);
  if (!sent.ok()) {
    ::close(in.fd);
    return sent;
  }
  auto body = RecvFrame(in, net::kFramePong, eff);
  if (!body.ok()) {
    ::close(in.fd);
    return body.status();
  }
  auto pong = net::DecodePongBody(body.value());
  if (!pong.ok() || !in.buf.empty()) {
    ::close(in.fd);
    return pong.ok() ? Status::IoError("stray bytes after PONG")
                     : pong.status();
  }
  Checkin(0, std::move(in));
  healthy_.store(pong.value().ok, std::memory_order_relaxed);
  StoreGenerationTag(net::GenerationTag(pong.value().generation));
  return pong;
}

Result<net::WireResponse> ShardClient::ShardSearch(
    std::string_view query, std::span<const context::ContextMatch> contexts,
    const context::SearchOptions& options, const Deadline& deadline) {
  ClientMetrics& m = Metrics();
  m.requests.Increment();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
  }
  const auto start = MonoClock::now();

  // The wire budget is the caller's real remaining budget (0 = none);
  // the *client-side* wait is additionally floored by request_timeout_ms
  // so an unbounded query cannot hang on a stalled daemon.
  net::WireShardRequest request;
  request.query.assign(query);
  request.options = options;
  request.options.deadline_ms = 0;  // The slice travels as budget_us.
  request.contexts.assign(contexts.begin(), contexts.end());
  if (deadline.armed() &&
      deadline.when() != Deadline::Clock::time_point::max()) {
    request.budget_us = RemainingUs(deadline);
    if (request.budget_us == 0) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.errors;
      m.errors.Increment();
      return Status::DeadlineExceeded("shard leg budget exhausted");
    }
  }
  const std::string encoded = net::EncodeShardSearchRequest(request);
  const Deadline eff = deadline.armed()
                           ? deadline
                           : Deadline::AfterMs(options_.request_timeout_ms);

  Status last_error = Status::IoError("shard unreachable");
  for (size_t attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.retries;
      }
      m.retries.Increment();
      const uint64_t delay_ms =
          Backoff::DelayMs(options_.backoff, attempt - 1, shard_);
      const uint64_t budget_ms = RemainingUs(eff) / 1000;
      if (budget_ms == 0) break;
      if (delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<uint64_t>(delay_ms, budget_ms)));
      }
    }
    if (eff.expired()) {
      last_error = Status::DeadlineExceeded("shard leg deadline expired");
      break;
    }
    // Injected network stall (slow path between the coordinator and the
    // shard).
    fault::MaybeStall("shard_client/stall");

    // --- one attempt: launch on the primary, failing over to the
    // replica; then await with optional hedging. ---
    std::vector<InFlight> legs;
    bool used_failover = false;
    const auto launch = [&](int endpoint_index) -> Status {
      auto co = Checkout(endpoint_index, eff);
      if (!co.ok()) return co.status();
      InFlight leg = std::move(co).value();
      const Status sent = SendFrame(leg.fd, encoded, eff);
      if (!sent.ok()) {
        ::close(leg.fd);
        return sent;
      }
      legs.push_back(std::move(leg));
      return Status::OK();
    };
    Status primary_up = launch(0);
    if (!primary_up.ok()) {
      if (primary_up.code() == StatusCode::kDeadlineExceeded ||
          !Transient(primary_up)) {
        last_error = primary_up;
        if (primary_up.code() == StatusCode::kDeadlineExceeded) break;
        continue;
      }
      last_error = primary_up;
      if (!has_replica()) continue;
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.failovers;
      }
      m.failovers.Increment();
      const Status replica_up = launch(1);
      if (!replica_up.ok()) {
        last_error = replica_up;
        if (replica_up.code() == StatusCode::kDeadlineExceeded) break;
        continue;
      }
      used_failover = true;
    }

    const bool can_hedge =
        options_.hedging_enabled && has_replica() && !used_failover;
    bool hedged = false;
    MonoClock::time_point hedge_at{};
    if (can_hedge) {
      hedge_at = MonoClock::now() +
                 std::chrono::microseconds(HedgeDelayUs());
    }

    std::optional<Result<net::WireResponse>> won;
    InFlight winner;
    while (!legs.empty()) {
      if (eff.expired()) break;
      // Parse anything already buffered, then poll for more.
      bool progressed = false;
      for (size_t i = 0; i < legs.size();) {
        const ReadResult r = ReadLeg(legs[i].fd, legs[i].buf,
                                     net::kFrameSearchResponse,
                                     options_.max_frame_bytes);
        if (r.outcome == ReadOutcome::kFrame) {
          auto decoded = net::DecodeSearchResponseBody(r.body);
          if (decoded.ok() &&
              decoded.value().code != StatusCode::kIoError) {
            // Surface the generation tag stamped in the frame header and
            // remember it as this shard's last observed generation.
            decoded.value().generation_tag = r.flags;
            StoreGenerationTag(r.flags);
            won = std::move(decoded);
            winner = std::move(legs[i]);
            winner.buf.erase(0, r.consumed);
            legs.erase(legs.begin() + i);
            break;
          }
          // Undecodable or server-transient (kIoError) answer: this leg
          // is spent; the connection may carry nothing further we trust.
          last_error = decoded.ok()
                           ? Status::IoError("shard answered kIoError: " +
                                             decoded.value().message)
                           : Status::IoError("undecodable shard response: " +
                                             std::string(
                                                 decoded.status().message()));
          ::close(legs[i].fd);
          legs.erase(legs.begin() + i);
          progressed = true;
          continue;
        }
        if (r.outcome == ReadOutcome::kFailed) {
          last_error = r.error;
          ::close(legs[i].fd);
          legs.erase(legs.begin() + i);
          progressed = true;
          continue;
        }
        ++i;
      }
      if (won.has_value()) break;
      if (legs.empty() || progressed) continue;

      // Fire the hedge once its delay elapses with the primary still
      // silent.
      if (can_hedge && !hedged && MonoClock::now() >= hedge_at) {
        hedged = true;
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.hedges;
        }
        m.hedges.Increment();
        // A hedge that cannot launch (replica also down) is not fatal —
        // the primary leg keeps running.
        (void)launch(1);
        continue;
      }

      pollfd pfds[2];
      const size_t nfds = std::min<size_t>(legs.size(), 2);
      for (size_t i = 0; i < nfds; ++i) {
        pfds[i] = {legs[i].fd, POLLIN, 0};
      }
      const int rc = ::poll(pfds, static_cast<nfds_t>(nfds),
                            PollTimeoutMs(eff, can_hedge && !hedged,
                                          hedge_at));
      if (rc < 0 && errno != EINTR) {
        last_error = Status::IoError(std::string("poll: ") +
                                     std::strerror(errno));
        break;
      }
    }

    // Losers are cancelled by closing their connection (a response in
    // flight makes the socket unsafe to pool).
    for (const InFlight& leg : legs) ::close(leg.fd);

    if (won.has_value()) {
      const bool winner_pooled = winner.pooled;
      const bool winner_on_replica = winner.on_replica;
      // Checkin enforces the quiescence invariant itself: a winner whose
      // buffer (or socket) still holds bytes — a garbled loser frame
      // landing after the winning one, pipelined junk from a broken peer
      // — is dropped, never pooled.
      Checkin(winner_on_replica ? 1 : 0, std::move(winner));
      if (winner_pooled) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.pool_reuses;
        m.pool_reuses.Increment();
      }
      if (hedged && winner_on_replica) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.hedge_wins;
        m.hedge_wins.Increment();
      }
      healthy_.store(true, std::memory_order_relaxed);
      RecordLatencyUs(static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              MonoClock::now() - start)
              .count()));
      return std::move(*won);
    }
    if (eff.expired()) {
      last_error = Status::DeadlineExceeded("shard leg deadline expired");
      break;
    }
    if (!Transient(last_error)) break;
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.errors;
  }
  m.errors.Increment();
  healthy_.store(false, std::memory_order_relaxed);
  return last_error;
}

// ---------------------------------------------------------------------------
// --remote-shards parsing.

namespace {

Result<ShardClient::Endpoint> ParseEndpoint(std::string_view text) {
  const size_t colon = text.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == text.size()) {
    return Status::InvalidArgument("endpoint \"" + std::string(text) +
                                   "\" is not host:port");
  }
  const std::string_view port_text = text.substr(colon + 1);
  uint32_t port = 0;
  const auto [ptr, ec] = std::from_chars(
      port_text.data(), port_text.data() + port_text.size(), port);
  if (ec != std::errc() || ptr != port_text.data() + port_text.size() ||
      port == 0 || port > 65535) {
    return Status::InvalidArgument("endpoint \"" + std::string(text) +
                                   "\" has an invalid port");
  }
  ShardClient::Endpoint endpoint;
  endpoint.host.assign(text.substr(0, colon));
  endpoint.port = static_cast<uint16_t>(port);
  return endpoint;
}

}  // namespace

Result<std::vector<RemoteShardSpec>> ParseRemoteShards(
    std::string_view spec) {
  std::vector<RemoteShardSpec> shards;
  while (!spec.empty()) {
    const size_t comma = spec.find(',');
    std::string_view entry = spec.substr(0, comma);
    if (entry.empty()) {
      return Status::InvalidArgument(
          "--remote-shards: empty shard entry (stray comma?)");
    }
    RemoteShardSpec shard;
    const size_t slash = entry.find('/');
    auto primary = ParseEndpoint(entry.substr(0, slash));
    if (!primary.ok()) return primary.status();
    shard.primary = std::move(primary).value();
    if (slash != std::string_view::npos) {
      auto replica = ParseEndpoint(entry.substr(slash + 1));
      if (!replica.ok()) return replica.status();
      shard.replica = std::move(replica).value();
    }
    shards.push_back(std::move(shard));
    if (comma == std::string_view::npos) break;
    spec.remove_prefix(comma + 1);
  }
  if (shards.empty()) {
    return Status::InvalidArgument("--remote-shards: no endpoints given");
  }
  return shards;
}

}  // namespace ctxrank::serve
