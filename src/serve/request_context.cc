#include "serve/request_context.h"

namespace ctxrank::serve {

const context::SearchResponse& RequestContext::Run(
    const context::ContextSearchEngine& engine, AdmissionLimiter* limiter) {
  if (limiter != nullptr) {
    AdmissionLimiter::Permit permit(*limiter, deadline_);
    if (!permit.granted()) {
      response_ = context::ContextSearchEngine::ShedResponse(
          "admission limit reached before deadline (" +
              std::to_string(limiter->limit()) + " in flight)",
          options_.trace);
    } else {
      response_ = engine.SearchGuarded(query_, options_, deadline_);
    }
  } else {
    response_ = engine.SearchGuarded(query_, options_, deadline_);
  }
  wall_us_ = std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - start_)
                 .count();
  return response_;
}

}  // namespace ctxrank::serve
