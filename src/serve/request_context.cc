#include "serve/request_context.h"

#include "serve/mutable_index.h"
#include "serve/sharded_engine.h"

namespace ctxrank::serve {
namespace {

/// The one admission/shed/deadline spine, generic over the backend
/// (monolithic engine or sharded scatter-gather). Kept in a template so
/// the two public overloads cannot drift apart.
template <typename Backend>
context::SearchResponse RunOn(const Backend& backend, std::string_view query,
                              const context::SearchOptions& options,
                              const Deadline& deadline,
                              AdmissionLimiter* limiter) {
  if (limiter != nullptr) {
    AdmissionLimiter::Permit permit(*limiter, deadline);
    if (!permit.granted()) {
      return context::ContextSearchEngine::ShedResponse(
          "admission limit reached before deadline (" +
              std::to_string(limiter->limit()) + " in flight)",
          options.trace);
    }
    return backend.SearchGuarded(query, options, deadline);
  }
  return backend.SearchGuarded(query, options, deadline);
}

}  // namespace

const context::SearchResponse& RequestContext::Run(
    const context::ContextSearchEngine& engine, AdmissionLimiter* limiter) {
  response_ = RunOn(engine, query_, options_, deadline_, limiter);
  wall_us_ = std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - start_)
                 .count();
  return response_;
}

const context::SearchResponse& RequestContext::Run(const ShardedEngine& engine,
                                                   AdmissionLimiter* limiter) {
  response_ = RunOn(engine, query_, options_, deadline_, limiter);
  wall_us_ = std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - start_)
                 .count();
  return response_;
}

const context::SearchResponse& RequestContext::Run(const MutableIndex& index,
                                                   AdmissionLimiter* limiter) {
  response_ = RunOn(index, query_, options_, deadline_, limiter);
  wall_us_ = std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - start_)
                 .count();
  return response_;
}

}  // namespace ctxrank::serve
