// Live index mutation: a Lucene-style segmented mutable index. A frozen
// base generation (the full batch pipeline: tokenize -> TF-IDF ->
// assignment -> prestige -> search engine) absorbs new papers into an
// in-memory delta segment, serves queries over [base + delta] with results
// BITWISE IDENTICAL to a from-scratch rebuild over the merged corpus, and
// folds the delta into a new base generation via background compaction.
//
// The identity rests on two pillars (docs/INDEXING.md):
//
//   * Frozen statistics. TF-IDF document frequencies and N are pinned at
//     the initial corpus size (`stats_prefix`) forever — across every
//     compaction. A delta paper's vectors, computed at ingest with the
//     frozen model, are exactly the vectors a rebuild with the same
//     stats_prefix produces (tokens outside the frozen vocabulary carry
//     df = 0 and are dropped either way).
//   * Affected-context tracking. Each ingested paper contributes a
//     conservative, ancestor-closed set of contexts whose serving state
//     (representative, members, prestige) could differ from the base's.
//     Unaffected contexts serve from the frozen base artifacts unchanged
//     (the pruned fast path included); affected contexts are recomputed
//     lazily per published delta state — context::ComputeContextOverlay
//     replicates the batch builders' floating-point evaluation order — and
//     memoized until the next ingest or compaction.
//
// Queries fan out over two legs: the unaffected subsequence of the routed
// contexts runs on the base engine (ContextSearchEngine::SearchRouted),
// the affected subsequence on the delta overlays; the legs merge by
// per-paper best relevancy with ties resolved by global selection rank,
// which is provably the single-engine merge order.
//
// Thread-safety: queries are lock-free against ingest (they snapshot the
// current {base, delta} behind shared_ptrs); Ingest calls serialize;
// Compact runs concurrently with both and republishes atomically,
// replaying papers ingested mid-compaction against the new base.
#ifndef CTXRANK_SERVE_MUTABLE_INDEX_H_
#define CTXRANK_SERVE_MUTABLE_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "context/assignment_builders.h"
#include "context/incremental.h"
#include "context/search_engine.h"
#include "context/text_prestige.h"
#include "corpus/corpus.h"
#include "ontology/ontology.h"
#include "text/analyzer.h"

namespace ctxrank::serve {

class MutableIndex {
 public:
  struct Options {
    text::AnalyzerOptions analyzer;
    context::TextAssignmentOptions assignment;
    /// Channel weights etc. for the text prestige pipeline — the only
    /// prestige function the mutable index supports (citation and pattern
    /// prestige are corpus-global batch computations with no incremental
    /// form; rebuild for those).
    context::TextPrestigeOptions prestige;
    context::ContextSearchEngine::EngineOptions engine;
    /// Parallelism for base builds (initial and compaction) and snapshot
    /// writes: 0 = hardware concurrency. Results are thread-invariant.
    size_t num_threads = 1;
    /// When non-empty, every compaction also serializes the new base
    /// generation here (CTXSNAP1, temp file + atomic rename) — a
    /// SnapshotSupervisor watching the path hot-swaps onto the new
    /// generation.
    std::string snapshot_path;
  };

  /// One paper to ingest. `paper.id` is ignored (the index assigns the
  /// next global id); references must point at already-present papers
  /// (base or delta) and be duplicate-free; the author list is
  /// canonicalized (sorted, deduplicated) on ingest. `evidence_terms`
  /// marks the ontology terms this paper is annotation evidence for.
  struct IngestPaper {
    corpus::Paper paper;
    std::vector<ontology::TermId> evidence_terms;
  };

  /// Builds the initial (generation 0) base over `corpus`. The ontology
  /// must be finalized and outlive the index. The TF-IDF statistics are
  /// frozen at corpus.size() forever.
  static Result<std::unique_ptr<MutableIndex>> Build(corpus::Corpus corpus,
                                                     const ontology::Ontology& onto,
                                                     Options options);
  static Result<std::unique_ptr<MutableIndex>> Build(
      corpus::Corpus corpus, const ontology::Ontology& onto) {
    return Build(std::move(corpus), onto, Options());
  }

  ~MutableIndex();
  MutableIndex(const MutableIndex&) = delete;
  MutableIndex& operator=(const MutableIndex&) = delete;

  /// Ingests one paper into the delta segment and publishes a new delta
  /// state; the paper is searchable the moment this returns. Returns the
  /// assigned global paper id. Thread-safe (ingests serialize; queries
  /// never block).
  Result<corpus::PaperId> Ingest(IngestPaper in);

  /// Full search over [base + delta]; bitwise identical to SearchEx on an
  /// index rebuilt from the merged corpus with the same frozen
  /// stats_prefix. With an empty delta this is exactly the base engine's
  /// guarded search (admission + cache included); with live deltas the
  /// two-leg path runs uncached and unadmitted (tracing unsupported).
  context::SearchResponse SearchEx(
      std::string_view query, const context::SearchOptions& options = {}) const;

  /// SearchEx against an externally armed deadline (the daemon's serving
  /// spine, serve::RequestContext).
  context::SearchResponse SearchGuarded(std::string_view query,
                                        const context::SearchOptions& options,
                                        const Deadline& deadline) const;

  /// Folds the current delta segment into a freshly built base generation
  /// (and serializes it to `snapshot_path` when configured). Runs the
  /// heavy rebuild off every serving lock: queries and ingests proceed
  /// concurrently; papers ingested mid-compaction are replayed against the
  /// new base before the atomic publish, so nothing is ever lost or
  /// double-counted. An empty delta is a no-op. Compactions serialize.
  Status Compact();

  /// Papers in the frozen base generation / the live delta / total.
  size_t base_papers() const;
  size_t delta_papers() const;
  size_t num_papers() const;

  /// Completed compactions (generation 0 = the initial build).
  uint64_t generation() const { return generation_.load(); }

  /// The frozen TF-IDF statistics prefix (the initial corpus size, P0).
  size_t stats_prefix() const { return stats_prefix_; }

  const ontology::Ontology& onto() const { return *onto_; }
  const Options& options() const { return options_; }

  /// Introspection for tests: the current delta state's affected-context
  /// set and the delta-born contexts injected into routing (both sorted).
  std::vector<ontology::TermId> affected_contexts() const;
  std::vector<ontology::TermId> extra_selectable_contexts() const;

 private:
  struct Base;        // One frozen generation's serving artifacts.
  struct DeltaState;  // One immutable published delta segment state.

  /// A consistent {base, delta} pair captured under mu_.
  struct View {
    std::shared_ptr<const Base> base;
    std::shared_ptr<const DeltaState> delta;  // Null = no live delta.
  };

  MutableIndex(const ontology::Ontology& onto, Options options,
               size_t stats_prefix);

  static Result<std::unique_ptr<Base>> BuildBase(corpus::Corpus corpus,
                                                 const ontology::Ontology& onto,
                                                 const Options& options,
                                                 size_t stats_prefix);

  View CurrentView() const;

  /// Validates + canonicalizes one ingest and computes the paper's frozen
  /// artifacts (vectors, evidence terms) with the base generation's model.
  Result<context::DeltaPaper> MakeDeltaPaper(const Base& base,
                                             size_t delta_count,
                                             IngestPaper in) const;

  /// Copies `prev`'s record data (nothing memoized) into a fresh state.
  static std::shared_ptr<DeltaState> CloneShell(const Base& base,
                                                const DeltaState* prev);

  /// Appends one paper to a state under construction: affectedness
  /// contribution, evidence/citation maps, postings, co-authorship fold.
  void AppendRecord(const Base& base, DeltaState& state,
                    context::DeltaPaper dp) const;

  /// Recomputes the state-level aggregates (affected, extra_selectable).
  static void FinishState(const Base& base, DeltaState& state);

  /// The two-leg delta-aware search (view.delta non-null and non-empty).
  context::SearchResponse SearchTwoLeg(const View& view,
                                       std::string_view query,
                                       const context::SearchOptions& options,
                                       const Deadline& deadline) const;

  const ontology::Ontology* onto_;
  const Options options_;
  const size_t stats_prefix_;

  mutable std::mutex mu_;  // Guards base_/delta_ pointer swaps only.
  std::shared_ptr<const Base> base_;
  std::shared_ptr<const DeltaState> delta_;

  std::mutex ingest_mu_;   // Serializes ingest read-modify-publish cycles.
  std::mutex compact_mu_;  // Serializes whole compactions.
  std::atomic<uint64_t> generation_{0};
};

}  // namespace ctxrank::serve

#endif  // CTXRANK_SERVE_MUTABLE_INDEX_H_
