#include "serve/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <functional>
#include <numeric>
#include <type_traits>
#include <utility>

#include "common/endian.h"
#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "eval/experiment.h"

namespace ctxrank::serve {

namespace {

// The append-only section registry (kind ids live in snapshot.h next to
// the format constants). `required` mirrors what the load path enforces:
// a missing required section fails the load, a missing optional one
// degrades its feature.
constexpr SectionDescriptor kSectionRegistry[] = {
    {SectionKind::kMeta, "meta", true},
    {SectionKind::kVocabBlob, "vocab_blob", true},
    {SectionKind::kVocabOffsets, "vocab_offsets", true},
    {SectionKind::kVocabSorted, "vocab_sorted", true},
    {SectionKind::kTfIdfDf, "tfidf_df", true},
    {SectionKind::kTokenOffsets, "token_offsets", true},
    {SectionKind::kTokens, "tokens", true},
    {SectionKind::kSetOffsets, "set_offsets", true},
    {SectionKind::kSetTokens, "set_tokens", true},
    {SectionKind::kPostingsOffsets, "postings_offsets", true},
    {SectionKind::kPostingsPapers, "postings_papers", true},
    {SectionKind::kForwardOffsets, "forward_offsets", true},
    {SectionKind::kForwardEntries, "forward_entries", true},
    {SectionKind::kMembersOffsets, "members_offsets", true},
    {SectionKind::kMembers, "members", true},
    {SectionKind::kContextsOffsets, "contexts_offsets", true},
    {SectionKind::kContexts, "contexts", true},
    {SectionKind::kRepresentatives, "representatives", true},
    {SectionKind::kInheritedFrom, "inherited_from", true},
    {SectionKind::kDecay, "decay", true},
    {SectionKind::kPrestigeOffsets, "prestige_offsets", true},
    {SectionKind::kPrestigeValues, "prestige_values", true},
    {SectionKind::kRoutingOffsets, "routing_offsets", true},
    {SectionKind::kRoutingEntries, "routing_entries", true},
    {SectionKind::kNameNorms, "name_norms", true},
    {SectionKind::kCiBuilt, "ci_built", true},
    {SectionKind::kCiMaxPrestige, "ci_max_prestige", true},
    {SectionKind::kCiMinNorm, "ci_min_norm", true},
    {SectionKind::kCiTermOffsetsOuter, "ci_term_offsets_outer", true},
    {SectionKind::kCiTermOffsets, "ci_term_offsets", true},
    {SectionKind::kCiDocsOuter, "ci_docs_outer", true},
    {SectionKind::kCiNorms, "ci_norms", true},
    {SectionKind::kCiByPrestige, "ci_by_prestige", true},
    {SectionKind::kCiPostings, "ci_postings", true},
    {SectionKind::kOntoAccessionBlob, "onto_accession_blob", true},
    {SectionKind::kOntoAccessionOffsets, "onto_accession_offsets", true},
    {SectionKind::kOntoNameBlob, "onto_name_blob", true},
    {SectionKind::kOntoNameOffsets, "onto_name_offsets", true},
    {SectionKind::kOntoParentsOffsets, "onto_parents_offsets", true},
    {SectionKind::kOntoParents, "onto_parents", true},
    {SectionKind::kTitleBlob, "title_blob", false},
    {SectionKind::kTitleOffsets, "title_offsets", false},
    {SectionKind::kCiBlockOffsets, "ci_block_offsets", false},
    {SectionKind::kCiBlockMax, "ci_block_max", false},
    {SectionKind::kCiBlockDocMin, "ci_block_doc_min", false},
    {SectionKind::kCiBlockDocMax, "ci_block_doc_max", false},
    {SectionKind::kShardOwners, "shard_owners", false},
};

}  // namespace

std::span<const SectionDescriptor> SectionRegistry() {
  return kSectionRegistry;
}

const char* SectionName(SectionKind kind) {
  const size_t k = static_cast<size_t>(kind);
  if (k < std::size(kSectionRegistry)) return kSectionRegistry[k].name;
  return "unknown";
}

namespace {

constexpr size_t kHeaderBytes = 32;       // magic + version + endian + n + size
constexpr size_t kTableEntryBytes = 40;   // kind + pad + offset + size + count
                                          // + checksum

// Meta section: 12 little-endian u64 slots.
constexpr size_t kMetaWords = 12;
constexpr size_t kMetaNumPapers = 0;
constexpr size_t kMetaVocabSize = 1;
constexpr size_t kMetaOntoTerms = 2;
constexpr size_t kMetaAssignmentTerms = 3;
constexpr size_t kMetaTfIdfDocs = 4;
constexpr size_t kMetaIndexPostings = 5;
constexpr size_t kMetaMaxIndexedMembers = 6;
constexpr size_t kMetaMinTokenLength = 7;
constexpr size_t kMetaFlags = 8;
constexpr size_t kMetaHasTitles = 9;
// Postings per block-max block (0 = no block metadata; pre-block files
// wrote this slot as reserved 0, which reads back as exactly that).
constexpr size_t kMetaBlockSize = 10;
// Sharded snapshots: (num_shards << 32) | shard_id. Monolithic files wrote
// this slot as reserved 0, which reads back as "not sharded".
constexpr size_t kMetaShardInfo = 11;
constexpr uint64_t kFlagDropNumeric = 1u << 0;
constexpr uint64_t kFlagLowercase = 1u << 1;
constexpr uint64_t kFlagRemoveStopwords = 1u << 2;
constexpr uint64_t kFlagStem = 1u << 3;

size_t AlignUp(size_t v, size_t align) {
  return (v + align - 1) / align * align;
}

/// Serializes a plain little-endian numeric array by copy. Only valid for
/// padding-free scalar types on a little-endian host (the save path is
/// gated on HostIsLittleEndian()).
template <typename T>
std::string RawBytes(std::span<const T> s) {
  static_assert(std::is_arithmetic_v<T>);
  std::string out(s.size_bytes(), '\0');
  if (!s.empty()) std::memcpy(out.data(), s.data(), s.size_bytes());
  return out;
}

/// One 16-byte record: u32 id, 4 bytes of zero padding, f64 weight. The
/// padding is written explicitly so section bytes (and checksums) never
/// depend on uninitialized struct padding.
void AppendRecord(std::string& out, uint32_t id, double weight) {
  char buf[16] = {};
  StoreLE32(buf, id);
  StoreLEDouble(buf + 8, weight);
  out.append(buf, sizeof(buf));
}

std::string EntryRecords(std::span<const text::SparseVector::Entry> entries) {
  std::string out;
  out.reserve(entries.size() * 16);
  for (const auto& e : entries) AppendRecord(out, e.term, e.weight);
  return out;
}

std::string PostingRecords(
    std::span<const text::ImpactOrderedIndex::Posting> postings) {
  std::string out;
  out.reserve(postings.size() * 16);
  for (const auto& p : postings) AppendRecord(out, p.doc, p.weight);
  return out;
}

struct SectionPlan {
  SectionKind kind;
  uint64_t count = 0;  // Element count (record count for record sections).
  std::function<std::string()> build;
};

struct SectionBlob {
  SectionKind kind;
  uint64_t count = 0;
  uint64_t offset = 0;
  uint64_t checksum = 0;
  std::string payload;
};

Status WriteAt(int fd, const char* data, size_t size, uint64_t offset,
               const std::string& path) {
  CTXRANK_RETURN_NOT_OK(fault::MaybeFail("snapshot/pwrite"));
  // An injected short write drops the tail of this call silently — the
  // bytes a kernel-level partial write would leave unwritten before a
  // crash. The loader's checksums must catch the gap.
  const size_t to_write = fault::MaybeTruncateIo("snapshot/pwrite_io", size);
  size_t done = 0;
  while (done < to_write) {
    const ssize_t n = ::pwrite(fd, data + done, to_write - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write failed for '" + path +
                             "': " + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// A parsed section-table entry pointing into the mapping.
struct SectionView {
  const char* data = nullptr;
  uint64_t size = 0;
  uint64_t count = 0;
  bool present = false;
};

class SectionMap {
 public:
  void Add(uint32_t kind, SectionView view) {
    if (kind >= views_.size()) views_.resize(kind + 1);
    views_[kind] = view;
  }

  const SectionView* Find(SectionKind kind) const {
    const size_t k = static_cast<size_t>(kind);
    if (k >= views_.size() || !views_[k].present) return nullptr;
    return &views_[k];
  }

  /// Typed view of a required section; checks presence, element size and
  /// alignment, and (when `expected_count` >= 0) the element count.
  template <typename T>
  Result<std::span<const T>> Span(SectionKind kind,
                                  int64_t expected_count = -1) const {
    const SectionView* v = Find(kind);
    if (v == nullptr) {
      return Status::InvalidArgument(
          "snapshot: missing section " +
          std::to_string(static_cast<uint32_t>(kind)));
    }
    if (v->size != v->count * sizeof(T)) {
      return Status::InvalidArgument(
          "snapshot: section " + std::to_string(static_cast<uint32_t>(kind)) +
          " byte size " + std::to_string(v->size) +
          " does not match count " + std::to_string(v->count));
    }
    if (reinterpret_cast<uintptr_t>(v->data) % alignof(T) != 0) {
      return Status::InvalidArgument(
          "snapshot: section " + std::to_string(static_cast<uint32_t>(kind)) +
          " is misaligned");
    }
    if (expected_count >= 0 &&
        v->count != static_cast<uint64_t>(expected_count)) {
      return Status::InvalidArgument(
          "snapshot: section " + std::to_string(static_cast<uint32_t>(kind)) +
          " has " + std::to_string(v->count) + " elements, expected " +
          std::to_string(expected_count));
    }
    return std::span<const T>(reinterpret_cast<const T*>(v->data), v->count);
  }

 private:
  std::vector<SectionView> views_;
};

/// Prefix-sum offsets (n + 1 entries) for a per-item size callback.
template <typename SizeFn>
std::vector<uint64_t> PrefixOffsets(size_t n, SizeFn size_of) {
  std::vector<uint64_t> offsets;
  offsets.reserve(n + 1);
  offsets.push_back(0);
  for (size_t i = 0; i < n; ++i) {
    offsets.push_back(offsets.back() + size_of(i));
  }
  return offsets;
}

}  // namespace

Status SnapshotAccess::Save(const SnapshotInputs& in, const std::string& path,
                            size_t num_threads) {
  if (in.tc == nullptr || in.onto == nullptr || in.assignment == nullptr ||
      in.prestige == nullptr || in.engine == nullptr) {
    return Status::InvalidArgument(
        "SaveSnapshot: tc, onto, assignment, prestige and engine are all "
        "required");
  }
  if (!HostIsLittleEndian()) {
    return Status::FailedPrecondition(
        "SaveSnapshot requires a little-endian host (the format stores "
        "little-endian arrays for zero-copy loading)");
  }
  const corpus::TokenizedCorpus& tc = *in.tc;
  const ontology::Ontology& onto = *in.onto;
  const context::ContextAssignment& assignment = *in.assignment;
  const context::PrestigeScores& prestige = *in.prestige;
  const context::ContextSearchEngine& engine = *in.engine;

  const size_t num_papers = tc.size();
  const size_t vocab_size = tc.vocabulary().size();
  const size_t num_terms = assignment.num_terms();
  const text::AnalyzerOptions& aopt = tc.analyzer().options();

  // Sharded saves mask out non-local papers' text payload. Paper ids stay
  // global: every per-paper offsets table keeps its full length, masked
  // papers just own empty runs, so the loader's table-length validation
  // and every downstream id are untouched. An empty mask is the plain
  // (byte-identical) save path.
  const bool masked = !in.paper_mask.empty();
  if (masked && in.paper_mask.size() != num_papers) {
    return Status::InvalidArgument(
        "SaveSnapshot: paper_mask has " + std::to_string(in.paper_mask.size()) +
        " entries, corpus has " + std::to_string(num_papers) + " papers");
  }
  if (!in.shard_owners.empty() && in.shard_owners.size() != num_terms) {
    return Status::InvalidArgument(
        "SaveSnapshot: shard_owners has " +
        std::to_string(in.shard_owners.size()) + " entries, expected " +
        std::to_string(num_terms));
  }
  const auto included = [&in, masked](size_t p) {
    return !masked || in.paper_mask[p] != 0;
  };

  // Per-context impact-index postings are concatenated into one global
  // array; each context's offsets are rebased by its start so they become
  // absolute positions (ImpactOrderedIndex::FromView serves them as-is).
  std::vector<uint64_t> ci_bases(num_terms, 0);
  std::vector<uint64_t> ci_block_bases(num_terms, 0);
  uint64_t ci_total_postings = 0;
  uint64_t ci_total_offsets = 0;
  uint64_t ci_total_docs = 0;
  uint64_t ci_total_blocks = 0;
  uint64_t ci_total_block_offsets = 0;
  const uint64_t block_size = engine.index_block_size_;
  for (size_t t = 0; t < num_terms; ++t) {
    const auto& ci = engine.context_index_[t];
    if (!ci.built) continue;
    ci_bases[t] = ci_total_postings;
    ci_block_bases[t] = ci_total_blocks;
    ci_total_postings += ci.index.postings_span().size();
    ci_total_offsets += ci.index.offsets_span().size();
    ci_total_docs += ci.index.norms_span().size();
    ci_total_blocks += ci.index.total_blocks();
    ci_total_block_offsets += ci.index.block_offsets_span().size();
  }

  std::vector<SectionPlan> plans;
  plans.reserve(48);
  const auto add = [&plans](SectionKind kind, uint64_t count,
                            std::function<std::string()> build) {
    plans.push_back({kind, count, std::move(build)});
  };

  add(SectionKind::kMeta, kMetaWords, [&] {
    uint64_t words[kMetaWords] = {};
    words[kMetaNumPapers] = num_papers;
    words[kMetaVocabSize] = vocab_size;
    words[kMetaOntoTerms] = onto.size();
    words[kMetaAssignmentTerms] = num_terms;
    words[kMetaTfIdfDocs] = tc.tfidf().num_documents();
    words[kMetaIndexPostings] = engine.index_postings_;
    words[kMetaMaxIndexedMembers] = engine.max_indexed_members_;
    words[kMetaMinTokenLength] = aopt.tokenizer.min_token_length;
    words[kMetaFlags] = (aopt.tokenizer.drop_numeric ? kFlagDropNumeric : 0) |
                        (aopt.tokenizer.lowercase ? kFlagLowercase : 0) |
                        (aopt.remove_stopwords ? kFlagRemoveStopwords : 0) |
                        (aopt.stem ? kFlagStem : 0);
    words[kMetaHasTitles] = in.corpus != nullptr ? 1 : 0;
    words[kMetaBlockSize] = block_size;
    words[kMetaShardInfo] =
        in.num_shards > 0
            ? (static_cast<uint64_t>(in.num_shards) << 32) | in.shard_id
            : 0;
    std::string out;
    out.reserve(sizeof(words));
    for (uint64_t w : words) AppendLE64(out, w);
    return out;
  });

  // --- vocabulary ---
  add(SectionKind::kVocabBlob, 0, [&] {
    std::string blob;
    for (text::TermId t = 0; t < vocab_size; ++t) {
      blob.append(tc.vocabulary().term(t));
    }
    return blob;
  });
  add(SectionKind::kVocabOffsets, vocab_size + 1, [&] {
    const auto offsets = PrefixOffsets(vocab_size, [&](size_t t) {
      return tc.vocabulary().term(static_cast<text::TermId>(t)).size();
    });
    return RawBytes<uint64_t>(offsets);
  });
  add(SectionKind::kVocabSorted, vocab_size, [&] {
    std::vector<text::TermId> sorted(vocab_size);
    std::iota(sorted.begin(), sorted.end(), 0u);
    std::sort(sorted.begin(), sorted.end(),
              [&](text::TermId a, text::TermId b) {
                return tc.vocabulary().term(a) < tc.vocabulary().term(b);
              });
    return RawBytes<text::TermId>(sorted);
  });
  add(SectionKind::kTfIdfDf, vocab_size, [&] {
    std::vector<uint32_t> df(vocab_size);
    for (text::TermId t = 0; t < vocab_size; ++t) {
      df[t] = static_cast<uint32_t>(tc.tfidf().DocumentFrequency(t));
    }
    return RawBytes<uint32_t>(df);
  });

  // --- analyzed sections (already flat CSR inside TokenizedCorpus) ---
  // The token/set CSRs are p-major (slot = paper * kNumTextSections +
  // section), so masking a paper empties a contiguous group of slots.
  const auto masked_slot_total = [&](std::span<const uint64_t> offsets) {
    uint64_t total = 0;
    for (size_t slot = 0; slot + 1 < offsets.size(); ++slot) {
      if (included(slot / corpus::kNumTextSections)) {
        total += offsets[slot + 1] - offsets[slot];
      }
    }
    return total;
  };
  const auto masked_slot_offsets = [&](std::span<const uint64_t> offsets) {
    const auto out = PrefixOffsets(offsets.size() - 1, [&](size_t slot) {
      return included(slot / corpus::kNumTextSections)
                 ? offsets[slot + 1] - offsets[slot]
                 : 0;
    });
    return RawBytes<uint64_t>(out);
  };
  const auto masked_slot_payload = [&](std::span<const uint64_t> offsets,
                                       std::span<const text::TermId> values) {
    std::string out;
    for (size_t slot = 0; slot + 1 < offsets.size(); ++slot) {
      if (!included(slot / corpus::kNumTextSections)) continue;
      out += RawBytes(values.subspan(offsets[slot],
                                     offsets[slot + 1] - offsets[slot]));
    }
    return out;
  };
  if (!masked) {
    add(SectionKind::kTokenOffsets, tc.section_offsets_.size(),
        [&] { return RawBytes(tc.section_offsets_.span()); });
    add(SectionKind::kTokens, tc.tokens_.size(),
        [&] { return RawBytes(tc.tokens_.span()); });
    add(SectionKind::kSetOffsets, tc.set_offsets_.size(),
        [&] { return RawBytes(tc.set_offsets_.span()); });
    add(SectionKind::kSetTokens, tc.set_tokens_.size(),
        [&] { return RawBytes(tc.set_tokens_.span()); });
    add(SectionKind::kPostingsOffsets, tc.postings_offsets_.size(),
        [&] { return RawBytes(tc.postings_offsets_.span()); });
    add(SectionKind::kPostingsPapers, tc.postings_papers_.size(),
        [&] { return RawBytes(tc.postings_papers_.span()); });
  } else {
    add(SectionKind::kTokenOffsets, tc.section_offsets_.size(),
        [&] { return masked_slot_offsets(tc.section_offsets_.span()); });
    add(SectionKind::kTokens, masked_slot_total(tc.section_offsets_.span()),
        [&] {
          return masked_slot_payload(tc.section_offsets_.span(),
                                     tc.tokens_.span());
        });
    add(SectionKind::kSetOffsets, tc.set_offsets_.size(),
        [&] { return masked_slot_offsets(tc.set_offsets_.span()); });
    add(SectionKind::kSetTokens, masked_slot_total(tc.set_offsets_.span()),
        [&] {
          return masked_slot_payload(tc.set_offsets_.span(),
                                     tc.set_tokens_.span());
        });
    // The boolean postings are a vocab-major CSR of paper ids: keep every
    // term's run, dropping the entries of non-local papers.
    uint64_t masked_postings = 0;
    for (const corpus::PaperId p : tc.postings_papers_.span()) {
      if (included(p)) ++masked_postings;
    }
    add(SectionKind::kPostingsOffsets, tc.postings_offsets_.size(), [&] {
      const auto orig_off = tc.postings_offsets_.span();
      const auto papers = tc.postings_papers_.span();
      const auto out = PrefixOffsets(orig_off.size() - 1, [&](size_t t) {
        size_t n = 0;
        for (uint64_t i = orig_off[t]; i < orig_off[t + 1]; ++i) {
          if (included(papers[i])) ++n;
        }
        return n;
      });
      return RawBytes<uint64_t>(out);
    });
    add(SectionKind::kPostingsPapers, masked_postings,
        [&, masked_postings] {
      std::string out;
      out.reserve(masked_postings * sizeof(corpus::PaperId));
      std::vector<corpus::PaperId> kept;
      const auto orig_off = tc.postings_offsets_.span();
      const auto papers = tc.postings_papers_.span();
      for (size_t t = 0; t + 1 < orig_off.size(); ++t) {
        kept.clear();
        for (uint64_t i = orig_off[t]; i < orig_off[t + 1]; ++i) {
          if (included(papers[i])) kept.push_back(papers[i]);
        }
        out += RawBytes<corpus::PaperId>(kept);
      }
      return out;
    });
  }

  // --- forward TF-IDF vectors (masked papers own empty vectors) ---
  uint64_t forward_entries = 0;
  for (size_t p = 0; p < num_papers; ++p) {
    if (included(p)) forward_entries += tc.full_vectors_[p].nnz();
  }
  add(SectionKind::kForwardOffsets, num_papers + 1, [&] {
    const auto offsets = PrefixOffsets(num_papers, [&](size_t p) -> size_t {
      return included(p) ? tc.full_vectors_[p].nnz() : 0;
    });
    return RawBytes<uint64_t>(offsets);
  });
  add(SectionKind::kForwardEntries, forward_entries, [&] {
    std::string out;
    out.reserve(forward_entries * 16);
    for (size_t p = 0; p < num_papers; ++p) {
      if (!included(p)) continue;
      for (const auto& e : tc.full_vectors_[p].entries()) {
        AppendRecord(out, e.term, e.weight);
      }
    }
    return out;
  });

  // --- assignment ---
  uint64_t members_total = 0;
  for (size_t t = 0; t < num_terms; ++t) {
    members_total += assignment.Members(static_cast<ontology::TermId>(t)).size();
  }
  add(SectionKind::kMembersOffsets, num_terms + 1, [&] {
    const auto offsets = PrefixOffsets(num_terms, [&](size_t t) {
      return assignment.Members(static_cast<ontology::TermId>(t)).size();
    });
    return RawBytes<uint64_t>(offsets);
  });
  add(SectionKind::kMembers, members_total, [&] {
    std::string out;
    out.reserve(members_total * sizeof(corpus::PaperId));
    for (size_t t = 0; t < num_terms; ++t) {
      out += RawBytes(assignment.Members(static_cast<ontology::TermId>(t)));
    }
    return out;
  });
  const size_t num_assignment_papers = assignment.num_papers();
  uint64_t contexts_total = 0;
  for (size_t p = 0; p < num_assignment_papers; ++p) {
    contexts_total +=
        assignment.ContextsOf(static_cast<corpus::PaperId>(p)).size();
  }
  add(SectionKind::kContextsOffsets, num_assignment_papers + 1, [&] {
    const auto offsets = PrefixOffsets(num_assignment_papers, [&](size_t p) {
      return assignment.ContextsOf(static_cast<corpus::PaperId>(p)).size();
    });
    return RawBytes<uint64_t>(offsets);
  });
  add(SectionKind::kContexts, contexts_total, [&] {
    std::string out;
    out.reserve(contexts_total * sizeof(ontology::TermId));
    for (size_t p = 0; p < num_assignment_papers; ++p) {
      out += RawBytes(assignment.ContextsOf(static_cast<corpus::PaperId>(p)));
    }
    return out;
  });
  add(SectionKind::kRepresentatives, num_terms, [&] {
    std::vector<corpus::PaperId> reps(num_terms);
    for (size_t t = 0; t < num_terms; ++t) {
      reps[t] = assignment.Representative(static_cast<ontology::TermId>(t));
    }
    return RawBytes<corpus::PaperId>(reps);
  });
  add(SectionKind::kInheritedFrom, num_terms, [&] {
    std::vector<ontology::TermId> inh(num_terms);
    for (size_t t = 0; t < num_terms; ++t) {
      inh[t] = assignment.InheritedFrom(static_cast<ontology::TermId>(t));
    }
    return RawBytes<ontology::TermId>(inh);
  });
  add(SectionKind::kDecay, num_terms, [&] {
    std::vector<double> decay(num_terms);
    for (size_t t = 0; t < num_terms; ++t) {
      decay[t] = assignment.DecayFactor(static_cast<ontology::TermId>(t));
    }
    return RawBytes<double>(decay);
  });

  // --- prestige (CSR aligned with the members CSR) ---
  uint64_t prestige_total = 0;
  for (size_t t = 0; t < num_terms; ++t) {
    prestige_total += prestige.Scores(static_cast<ontology::TermId>(t)).size();
  }
  add(SectionKind::kPrestigeOffsets, num_terms + 1, [&] {
    const auto offsets = PrefixOffsets(num_terms, [&](size_t t) {
      return prestige.Scores(static_cast<ontology::TermId>(t)).size();
    });
    return RawBytes<uint64_t>(offsets);
  });
  add(SectionKind::kPrestigeValues, prestige_total, [&] {
    std::string out;
    out.reserve(prestige_total * sizeof(double));
    for (size_t t = 0; t < num_terms; ++t) {
      out += RawBytes(prestige.Scores(static_cast<ontology::TermId>(t)));
    }
    return out;
  });

  // --- context routing index ---
  add(SectionKind::kRoutingOffsets, engine.routing_offsets_.size(),
      [&] { return RawBytes(engine.routing_offsets_.span()); });
  add(SectionKind::kRoutingEntries, engine.routing_entries_.size(),
      [&] { return EntryRecords(engine.routing_entries_.span()); });
  add(SectionKind::kNameNorms, engine.name_norms_.size(),
      [&] { return RawBytes(engine.name_norms_.span()); });

  // --- per-context impact-ordered indexes ---
  add(SectionKind::kCiBuilt, num_terms, [&] {
    std::string out(num_terms, '\0');
    for (size_t t = 0; t < num_terms; ++t) {
      out[t] = engine.context_index_[t].built ? 1 : 0;
    }
    return out;
  });
  add(SectionKind::kCiMaxPrestige, num_terms, [&] {
    std::vector<double> v(num_terms, 0.0);
    for (size_t t = 0; t < num_terms; ++t) {
      v[t] = engine.context_index_[t].max_prestige;
    }
    return RawBytes<double>(v);
  });
  add(SectionKind::kCiMinNorm, num_terms, [&] {
    std::vector<double> v(num_terms, 1.0);
    for (size_t t = 0; t < num_terms; ++t) {
      if (engine.context_index_[t].built) {
        v[t] = engine.context_index_[t].index.min_positive_norm();
      }
    }
    return RawBytes<double>(v);
  });
  add(SectionKind::kCiTermOffsetsOuter, num_terms + 1, [&] {
    const auto offsets = PrefixOffsets(num_terms, [&](size_t t) -> size_t {
      const auto& ci = engine.context_index_[t];
      return ci.built ? ci.index.offsets_span().size() : 0;
    });
    return RawBytes<uint64_t>(offsets);
  });
  add(SectionKind::kCiTermOffsets, ci_total_offsets, [&] {
    std::string out;
    out.reserve(ci_total_offsets * sizeof(uint64_t));
    std::vector<uint64_t> rebased;
    for (size_t t = 0; t < num_terms; ++t) {
      const auto& ci = engine.context_index_[t];
      if (!ci.built) continue;
      const auto local = ci.index.offsets_span();
      rebased.assign(local.begin(), local.end());
      for (uint64_t& o : rebased) o += ci_bases[t];
      out += RawBytes<uint64_t>(rebased);
    }
    return out;
  });
  add(SectionKind::kCiDocsOuter, num_terms + 1, [&] {
    const auto offsets = PrefixOffsets(num_terms, [&](size_t t) -> size_t {
      const auto& ci = engine.context_index_[t];
      return ci.built ? ci.index.norms_span().size() : 0;
    });
    return RawBytes<uint64_t>(offsets);
  });
  add(SectionKind::kCiNorms, ci_total_docs, [&] {
    std::string out;
    out.reserve(ci_total_docs * sizeof(double));
    for (size_t t = 0; t < num_terms; ++t) {
      const auto& ci = engine.context_index_[t];
      if (ci.built) out += RawBytes(ci.index.norms_span());
    }
    return out;
  });
  add(SectionKind::kCiByPrestige, ci_total_docs, [&] {
    std::string out;
    out.reserve(ci_total_docs * sizeof(uint32_t));
    for (size_t t = 0; t < num_terms; ++t) {
      const auto& ci = engine.context_index_[t];
      if (ci.built) out += RawBytes(ci.by_prestige.span());
    }
    return out;
  });
  add(SectionKind::kCiPostings, ci_total_postings, [&] {
    std::string out;
    out.reserve(ci_total_postings * 16);
    for (size_t t = 0; t < num_terms; ++t) {
      const auto& ci = engine.context_index_[t];
      if (ci.built) out += PostingRecords(ci.index.postings_span());
    }
    return out;
  });

  // --- block-max metadata (optional: engines built without a block size
  // write none, and the loader then serves per-term pruning) ---
  if (block_size > 0) {
    add(SectionKind::kCiBlockOffsets, ci_total_block_offsets, [&] {
      std::string out;
      out.reserve(ci_total_block_offsets * sizeof(uint64_t));
      std::vector<uint64_t> rebased;
      for (size_t t = 0; t < num_terms; ++t) {
        const auto& ci = engine.context_index_[t];
        if (!ci.built) continue;
        const auto local = ci.index.block_offsets_span();
        rebased.assign(local.begin(), local.end());
        for (uint64_t& o : rebased) o += ci_block_bases[t];
        out += RawBytes<uint64_t>(rebased);
      }
      return out;
    });
    add(SectionKind::kCiBlockMax, ci_total_blocks, [&] {
      std::string out;
      out.reserve(ci_total_blocks * sizeof(double));
      for (size_t t = 0; t < num_terms; ++t) {
        const auto& ci = engine.context_index_[t];
        if (ci.built) out += RawBytes(ci.index.block_max_span());
      }
      return out;
    });
    add(SectionKind::kCiBlockDocMin, ci_total_blocks, [&] {
      std::string out;
      out.reserve(ci_total_blocks * sizeof(uint32_t));
      for (size_t t = 0; t < num_terms; ++t) {
        const auto& ci = engine.context_index_[t];
        if (ci.built) out += RawBytes(ci.index.block_doc_min_span());
      }
      return out;
    });
    add(SectionKind::kCiBlockDocMax, ci_total_blocks, [&] {
      std::string out;
      out.reserve(ci_total_blocks * sizeof(uint32_t));
      for (size_t t = 0; t < num_terms; ++t) {
        const auto& ci = engine.context_index_[t];
        if (ci.built) out += RawBytes(ci.index.block_doc_max_span());
      }
      return out;
    });
  }

  // --- ontology (tiny; rebuilt on the heap at load) ---
  add(SectionKind::kOntoAccessionBlob, 0, [&] {
    std::string blob;
    for (const auto& term : onto.terms()) blob += term.accession;
    return blob;
  });
  add(SectionKind::kOntoAccessionOffsets, onto.size() + 1, [&] {
    const auto offsets = PrefixOffsets(
        onto.size(), [&](size_t t) { return onto.terms()[t].accession.size(); });
    return RawBytes<uint64_t>(offsets);
  });
  add(SectionKind::kOntoNameBlob, 0, [&] {
    std::string blob;
    for (const auto& term : onto.terms()) blob += term.name;
    return blob;
  });
  add(SectionKind::kOntoNameOffsets, onto.size() + 1, [&] {
    const auto offsets = PrefixOffsets(
        onto.size(), [&](size_t t) { return onto.terms()[t].name.size(); });
    return RawBytes<uint64_t>(offsets);
  });
  uint64_t parents_total = 0;
  for (const auto& term : onto.terms()) parents_total += term.parents.size();
  add(SectionKind::kOntoParentsOffsets, onto.size() + 1, [&] {
    const auto offsets = PrefixOffsets(
        onto.size(), [&](size_t t) { return onto.terms()[t].parents.size(); });
    return RawBytes<uint64_t>(offsets);
  });
  add(SectionKind::kOntoParents, parents_total, [&] {
    std::string out;
    out.reserve(parents_total * sizeof(ontology::TermId));
    for (const auto& term : onto.terms()) {
      out += RawBytes<ontology::TermId>(term.parents);
    }
    return out;
  });

  // --- titles (optional; needs the raw corpus) ---
  if (in.corpus != nullptr) {
    const corpus::Corpus& corpus = *in.corpus;
    add(SectionKind::kTitleBlob, 0, [&corpus, &included, num_papers] {
      std::string blob;
      for (size_t p = 0; p < num_papers; ++p) {
        if (!included(p)) continue;
        blob += corpus.paper(static_cast<corpus::PaperId>(p)).title;
      }
      return blob;
    });
    add(SectionKind::kTitleOffsets, num_papers + 1,
        [&corpus, &included, num_papers] {
      const auto offsets = PrefixOffsets(num_papers, [&](size_t p) -> size_t {
        return included(p)
                   ? corpus.paper(static_cast<corpus::PaperId>(p)).title.size()
                   : 0;
      });
      return RawBytes<uint64_t>(offsets);
    });
  }

  // --- shard ownership map (optional; sharded snapshot sets only) ---
  if (!in.shard_owners.empty()) {
    add(SectionKind::kShardOwners, in.shard_owners.size(),
        [&in] { return RawBytes(in.shard_owners); });
  }

  // Serialize and checksum every section in parallel.
  std::vector<SectionBlob> sections(plans.size());
  ParallelFor(
      plans.size(),
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          sections[i].kind = plans[i].kind;
          sections[i].payload = plans[i].build();
          sections[i].count = plans[i].count != 0 || sections[i].payload.empty()
                                  ? plans[i].count
                                  : sections[i].payload.size();
          sections[i].checksum =
              Fnv1a64(sections[i].payload.data(), sections[i].payload.size());
        }
      },
      {.num_threads = num_threads, .grain = 1});

  // Layout: header, table, then 64-byte-aligned sections.
  uint64_t cursor = AlignUp(kHeaderBytes + sections.size() * kTableEntryBytes,
                            kSnapshotAlignment);
  for (SectionBlob& s : sections) {
    s.offset = cursor;
    cursor = AlignUp(cursor + s.payload.size(), kSnapshotAlignment);
  }
  const uint64_t total_size = cursor;

  std::string header;
  header.reserve(kHeaderBytes + sections.size() * kTableEntryBytes);
  header.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  AppendLE32(header, kSnapshotVersion);
  AppendLE32(header, kSnapshotEndianMarker);
  AppendLE64(header, sections.size());
  AppendLE64(header, total_size);
  for (const SectionBlob& s : sections) {
    AppendLE32(header, static_cast<uint32_t>(s.kind));
    AppendLE32(header, 0);  // Reserved.
    AppendLE64(header, s.offset);
    AppendLE64(header, s.payload.size());
    AppendLE64(header, s.count);
    AppendLE64(header, s.checksum);
  }

  CTXRANK_RETURN_NOT_OK(fault::MaybeFail("snapshot/save/open"));
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot create '" + path +
                           "': " + std::strerror(errno));
  }
  if (const Status st = fault::MaybeFail("snapshot/save/truncate");
      !st.ok() || ::ftruncate(fd, static_cast<off_t>(total_size)) != 0) {
    const Status out = !st.ok()
                           ? st
                           : Status::IoError("cannot size '" + path + "': " +
                                             std::strerror(errno));
    ::close(fd);
    return out;
  }
  // Write sections in parallel (pwrite is position-independent), then the
  // header last so a torn save never carries a valid magic + table.
  std::vector<Status> errors(sections.size());
  ParallelFor(
      sections.size(),
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          errors[i] = WriteAt(fd, sections[i].payload.data(),
                              sections[i].payload.size(), sections[i].offset,
                              path);
        }
      },
      {.num_threads = num_threads, .grain = 1});
  for (const Status& st : errors) {
    if (!st.ok()) {
      ::close(fd);
      return st;
    }
  }
  const Status header_status = WriteAt(fd, header.data(), header.size(), 0,
                                       path);
  if (!header_status.ok()) {
    ::close(fd);
    return header_status;
  }
  if (const Status st = fault::MaybeFail("snapshot/save/fsync"); !st.ok()) {
    ::close(fd);
    return st;
  }
  ::fsync(fd);
  ::close(fd);
  return Status::OK();
}

Status SaveSnapshot(const SnapshotInputs& inputs, const std::string& path,
                    size_t num_threads) {
  return SnapshotAccess::Save(inputs, path, num_threads);
}

Status SaveSnapshot(const eval::World& world,
                    const context::ContextSearchEngine& engine,
                    const std::string& path, size_t num_threads) {
  SnapshotInputs inputs;
  inputs.tc = &world.tc();
  inputs.onto = &world.onto();
  inputs.assignment = &world.text_set();
  inputs.prestige = &world.text_set_text_scores();
  inputs.engine = &engine;
  inputs.corpus = &world.corpus();
  return SaveSnapshot(inputs, path, num_threads);
}

Result<std::unique_ptr<ServingSnapshot>> SnapshotAccess::Load(
    const std::string& path, size_t num_threads) {
  if (!HostIsLittleEndian()) {
    return Status::FailedPrecondition(
        "snapshot loading requires a little-endian host");
  }
  // Covers the whole load attempt: a transient failure here is what the
  // SnapshotSupervisor's retry-with-backoff path exercises, and a stall
  // here widens the load window so the supervisor's stat-before/stat-after
  // identity check can be raced deterministically in tests.
  CTXRANK_RETURN_NOT_OK(fault::MaybeFail("snapshot/load"));
  fault::MaybeStall("snapshot/load");
  auto mapped = MmapFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  std::unique_ptr<ServingSnapshot> snap(new ServingSnapshot());
  snap->file_ = std::move(mapped).value();
  const char* base = snap->file_.data();
  const uint64_t file_size = snap->file_.size();

  if (file_size < kHeaderBytes) {
    return Status::InvalidArgument("snapshot '" + path +
                                   "': file too small for a header (" +
                                   std::to_string(file_size) + " bytes)");
  }
  if (std::memcmp(base, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::InvalidArgument("snapshot '" + path +
                                   "': bad magic (not a ctxrank snapshot)");
  }
  const uint32_t version = LoadLE32(base + 8);
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument(
        "snapshot '" + path + "': format version " + std::to_string(version) +
        " is not supported (expected " + std::to_string(kSnapshotVersion) +
        ")");
  }
  const uint32_t endian = LoadLE32(base + 12);
  if (endian != kSnapshotEndianMarker) {
    return Status::InvalidArgument(
        "snapshot '" + path + "': endianness marker mismatch");
  }
  const uint64_t num_sections = LoadLE64(base + 16);
  const uint64_t declared_size = LoadLE64(base + 24);
  if (declared_size != file_size) {
    return Status::InvalidArgument(
        "snapshot '" + path + "': declared size " +
        std::to_string(declared_size) + " does not match file size " +
        std::to_string(file_size) + " (truncated or padded file)");
  }
  if (kHeaderBytes + num_sections * kTableEntryBytes > file_size) {
    return Status::InvalidArgument("snapshot '" + path +
                                   "': section table exceeds the file");
  }

  SectionMap map;
  struct RawEntry {
    uint64_t offset, size, checksum;
    uint32_t kind;
  };
  std::vector<RawEntry> entries(num_sections);
  for (uint64_t i = 0; i < num_sections; ++i) {
    const char* e = base + kHeaderBytes + i * kTableEntryBytes;
    RawEntry& re = entries[i];
    re.kind = LoadLE32(e);
    re.offset = LoadLE64(e + 8);
    re.size = LoadLE64(e + 16);
    const uint64_t count = LoadLE64(e + 24);
    re.checksum = LoadLE64(e + 32);
    if (re.offset % kSnapshotAlignment != 0 || re.offset > file_size ||
        re.size > file_size - re.offset) {
      return Status::InvalidArgument(
          "snapshot '" + path + "': section " + std::to_string(re.kind) +
          " (" + SectionName(static_cast<SectionKind>(re.kind)) +
          ") extends past the end of the file (truncated?)");
    }
    map.Add(re.kind, {base + re.offset, re.size, count, true});
    if (re.kind < 64) snap->section_presence_ |= uint64_t{1} << re.kind;
  }

  // Checksum every section (in parallel; this is the only full read of the
  // cold file and doubles as page-in).
  std::vector<uint8_t> bad(num_sections, 0);
  ParallelFor(
      num_sections,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const RawEntry& re = entries[i];
          if (Fnv1a64(base + re.offset, re.size) != re.checksum) bad[i] = 1;
        }
      },
      {.num_threads = num_threads, .grain = 1});
  for (uint64_t i = 0; i < num_sections; ++i) {
    if (bad[i]) {
      return Status::InvalidArgument(
          "snapshot '" + path + "': checksum mismatch in section " +
          std::to_string(entries[i].kind) + " (corrupted file)");
    }
  }

#define CTXRANK_ASSIGN_OR_RETURN(decl, expr) \
  auto decl##_result = (expr);               \
  if (!decl##_result.ok()) return decl##_result.status(); \
  auto decl = std::move(decl##_result).value()

  CTXRANK_ASSIGN_OR_RETURN(
      meta, map.Span<uint64_t>(SectionKind::kMeta, kMetaWords));
  const size_t num_papers = meta[kMetaNumPapers];
  const size_t vocab_size = meta[kMetaVocabSize];
  const size_t onto_terms = meta[kMetaOntoTerms];
  const size_t num_terms = meta[kMetaAssignmentTerms];
  snap->shard_id_ = static_cast<uint32_t>(meta[kMetaShardInfo] & 0xFFFFFFFFu);
  snap->num_shards_ = static_cast<uint32_t>(meta[kMetaShardInfo] >> 32);
  if (snap->num_shards_ > 0 && snap->shard_id_ >= snap->num_shards_) {
    return Status::InvalidArgument(
        "snapshot '" + path + "': shard id " +
        std::to_string(snap->shard_id_) + " out of range for a " +
        std::to_string(snap->num_shards_) + "-shard set");
  }

  // --- ontology: tiny, rebuilt on the heap (AddTerm/AddIsA/Finalize is
  // deterministic, so Lin similarities and levels match the saved build) ---
  CTXRANK_ASSIGN_OR_RETURN(acc_blob,
                           map.Span<char>(SectionKind::kOntoAccessionBlob));
  CTXRANK_ASSIGN_OR_RETURN(
      acc_offsets,
      map.Span<uint64_t>(SectionKind::kOntoAccessionOffsets, onto_terms + 1));
  CTXRANK_ASSIGN_OR_RETURN(name_blob,
                           map.Span<char>(SectionKind::kOntoNameBlob));
  CTXRANK_ASSIGN_OR_RETURN(
      name_offsets,
      map.Span<uint64_t>(SectionKind::kOntoNameOffsets, onto_terms + 1));
  CTXRANK_ASSIGN_OR_RETURN(
      parents_offsets,
      map.Span<uint64_t>(SectionKind::kOntoParentsOffsets, onto_terms + 1));
  CTXRANK_ASSIGN_OR_RETURN(parents,
                           map.Span<ontology::TermId>(SectionKind::kOntoParents));
  const auto blob_slice = [](std::span<const char> blob,
                             std::span<const uint64_t> offsets,
                             size_t i) -> Result<std::string_view> {
    if (offsets[i] > offsets[i + 1] || offsets[i + 1] > blob.size()) {
      return Status::InvalidArgument(
          "snapshot: string table offsets out of range");
    }
    return std::string_view(blob.data() + offsets[i],
                            offsets[i + 1] - offsets[i]);
  };
  for (size_t t = 0; t < onto_terms; ++t) {
    CTXRANK_ASSIGN_OR_RETURN(acc, blob_slice(acc_blob, acc_offsets, t));
    CTXRANK_ASSIGN_OR_RETURN(name, blob_slice(name_blob, name_offsets, t));
    snap->onto_.AddTerm(std::string(acc), std::string(name));
  }
  if (parents_offsets[onto_terms] != parents.size()) {
    return Status::InvalidArgument(
        "snapshot: ontology parent table does not match its offsets");
  }
  for (size_t t = 0; t < onto_terms; ++t) {
    for (uint64_t i = parents_offsets[t]; i < parents_offsets[t + 1]; ++i) {
      if (parents[i] >= onto_terms) {
        return Status::InvalidArgument("snapshot: parent term id out of range");
      }
      CTXRANK_RETURN_NOT_OK(
          snap->onto_.AddIsA(static_cast<ontology::TermId>(t), parents[i]));
    }
  }
  CTXRANK_RETURN_NOT_OK(snap->onto_.Finalize());

  // --- tokenized corpus (zero-copy views) ---
  CTXRANK_ASSIGN_OR_RETURN(vocab_blob, map.Span<char>(SectionKind::kVocabBlob));
  CTXRANK_ASSIGN_OR_RETURN(
      vocab_offsets,
      map.Span<uint64_t>(SectionKind::kVocabOffsets, vocab_size + 1));
  CTXRANK_ASSIGN_OR_RETURN(
      vocab_sorted, map.Span<text::TermId>(SectionKind::kVocabSorted,
                                           vocab_size));
  if (!vocab_offsets.empty() && vocab_offsets.back() != vocab_blob.size()) {
    return Status::InvalidArgument(
        "snapshot: vocabulary blob does not match its offsets");
  }
  CTXRANK_ASSIGN_OR_RETURN(
      df, map.Span<uint32_t>(SectionKind::kTfIdfDf, vocab_size));
  CTXRANK_ASSIGN_OR_RETURN(
      token_offsets,
      map.Span<uint64_t>(SectionKind::kTokenOffsets,
                         num_papers * corpus::kNumTextSections + 1));
  CTXRANK_ASSIGN_OR_RETURN(tokens, map.Span<text::TermId>(SectionKind::kTokens));
  CTXRANK_ASSIGN_OR_RETURN(
      set_offsets, map.Span<uint64_t>(SectionKind::kSetOffsets,
                                      num_papers * corpus::kNumTextSections + 1));
  CTXRANK_ASSIGN_OR_RETURN(set_tokens,
                           map.Span<text::TermId>(SectionKind::kSetTokens));
  CTXRANK_ASSIGN_OR_RETURN(
      bool_offsets,
      map.Span<uint64_t>(SectionKind::kPostingsOffsets, vocab_size + 1));
  CTXRANK_ASSIGN_OR_RETURN(
      bool_papers, map.Span<corpus::PaperId>(SectionKind::kPostingsPapers));
  CTXRANK_ASSIGN_OR_RETURN(
      forward_offsets,
      map.Span<uint64_t>(SectionKind::kForwardOffsets, num_papers + 1));
  CTXRANK_ASSIGN_OR_RETURN(
      forward_entries,
      map.Span<text::SparseVector::Entry>(SectionKind::kForwardEntries));
  if (token_offsets.back() != tokens.size() ||
      set_offsets.back() != set_tokens.size() ||
      bool_offsets.back() != bool_papers.size() ||
      forward_offsets.back() != forward_entries.size()) {
    return Status::InvalidArgument(
        "snapshot: a CSR section does not match its offsets table "
        "(truncated or corrupted file)");
  }

  text::AnalyzerOptions aopt;
  aopt.tokenizer.min_token_length = meta[kMetaMinTokenLength];
  aopt.tokenizer.drop_numeric = (meta[kMetaFlags] & kFlagDropNumeric) != 0;
  aopt.tokenizer.lowercase = (meta[kMetaFlags] & kFlagLowercase) != 0;
  aopt.remove_stopwords = (meta[kMetaFlags] & kFlagRemoveStopwords) != 0;
  aopt.stem = (meta[kMetaFlags] & kFlagStem) != 0;

  corpus::TokenizedCorpus tc;
  tc.corpus_ = nullptr;
  tc.analyzer_ = text::Analyzer(aopt);
  tc.vocab_ = text::Vocabulary::FromView(vocab_blob, vocab_offsets,
                                         vocab_sorted);
  tc.tfidf_ = text::TfIdfModel::FromView(df, meta[kMetaTfIdfDocs]);
  tc.num_papers_ = num_papers;
  tc.section_offsets_.SetView(token_offsets);
  tc.tokens_.SetView(tokens);
  tc.set_offsets_.SetView(set_offsets);
  tc.set_tokens_.SetView(set_tokens);
  tc.postings_offsets_.SetView(bool_offsets);
  tc.postings_papers_.SetView(bool_papers);
  tc.full_vectors_.reserve(num_papers);
  for (size_t p = 0; p < num_papers; ++p) {
    tc.full_vectors_.push_back(text::SparseVector::FromView(
        forward_entries.subspan(forward_offsets[p],
                                forward_offsets[p + 1] - forward_offsets[p])));
  }
  snap->tc_.emplace(std::move(tc));

  // --- assignment + prestige (zero-copy views) ---
  CTXRANK_ASSIGN_OR_RETURN(
      members_offsets,
      map.Span<uint64_t>(SectionKind::kMembersOffsets, num_terms + 1));
  CTXRANK_ASSIGN_OR_RETURN(members,
                           map.Span<corpus::PaperId>(SectionKind::kMembers));
  CTXRANK_ASSIGN_OR_RETURN(
      contexts_offsets,
      map.Span<uint64_t>(SectionKind::kContextsOffsets, num_papers + 1));
  CTXRANK_ASSIGN_OR_RETURN(contexts,
                           map.Span<ontology::TermId>(SectionKind::kContexts));
  CTXRANK_ASSIGN_OR_RETURN(
      representatives,
      map.Span<corpus::PaperId>(SectionKind::kRepresentatives, num_terms));
  CTXRANK_ASSIGN_OR_RETURN(
      inherited, map.Span<ontology::TermId>(SectionKind::kInheritedFrom,
                                            num_terms));
  CTXRANK_ASSIGN_OR_RETURN(decay,
                           map.Span<double>(SectionKind::kDecay, num_terms));
  CTXRANK_ASSIGN_OR_RETURN(
      prestige_offsets,
      map.Span<uint64_t>(SectionKind::kPrestigeOffsets, num_terms + 1));
  CTXRANK_ASSIGN_OR_RETURN(prestige_values,
                           map.Span<double>(SectionKind::kPrestigeValues));
  if (members_offsets.back() != members.size() ||
      contexts_offsets.back() != contexts.size() ||
      prestige_offsets.back() != prestige_values.size()) {
    return Status::InvalidArgument(
        "snapshot: assignment/prestige CSR does not match its offsets "
        "(truncated or corrupted file)");
  }
  snap->assignment_.emplace(context::ContextAssignment::FromView(
      members_offsets, members, contexts_offsets, contexts, representatives,
      inherited, decay));
  snap->prestige_.emplace(
      context::PrestigeScores::FromView(prestige_offsets, prestige_values));

  // --- search engine (routing index + per-context impact indexes) ---
  CTXRANK_ASSIGN_OR_RETURN(
      routing_offsets,
      map.Span<uint64_t>(SectionKind::kRoutingOffsets, vocab_size + 1));
  CTXRANK_ASSIGN_OR_RETURN(
      routing_entries,
      map.Span<text::SparseVector::Entry>(SectionKind::kRoutingEntries));
  CTXRANK_ASSIGN_OR_RETURN(
      name_norms, map.Span<double>(SectionKind::kNameNorms, onto_terms));
  CTXRANK_ASSIGN_OR_RETURN(ci_built,
                           map.Span<uint8_t>(SectionKind::kCiBuilt, num_terms));
  CTXRANK_ASSIGN_OR_RETURN(
      ci_max_prestige,
      map.Span<double>(SectionKind::kCiMaxPrestige, num_terms));
  CTXRANK_ASSIGN_OR_RETURN(
      ci_min_norm, map.Span<double>(SectionKind::kCiMinNorm, num_terms));
  CTXRANK_ASSIGN_OR_RETURN(
      ci_term_outer,
      map.Span<uint64_t>(SectionKind::kCiTermOffsetsOuter, num_terms + 1));
  CTXRANK_ASSIGN_OR_RETURN(ci_term_offsets,
                           map.Span<uint64_t>(SectionKind::kCiTermOffsets));
  CTXRANK_ASSIGN_OR_RETURN(
      ci_docs_outer,
      map.Span<uint64_t>(SectionKind::kCiDocsOuter, num_terms + 1));
  CTXRANK_ASSIGN_OR_RETURN(ci_norms, map.Span<double>(SectionKind::kCiNorms));
  CTXRANK_ASSIGN_OR_RETURN(ci_by_prestige,
                           map.Span<uint32_t>(SectionKind::kCiByPrestige));
  CTXRANK_ASSIGN_OR_RETURN(
      ci_postings,
      map.Span<text::ImpactOrderedIndex::Posting>(SectionKind::kCiPostings));
  if (routing_offsets.back() != routing_entries.size() ||
      ci_term_outer.back() != ci_term_offsets.size() ||
      ci_docs_outer.back() != ci_norms.size() ||
      ci_docs_outer.back() != ci_by_prestige.size()) {
    return Status::InvalidArgument(
        "snapshot: engine CSR sections do not match their offsets "
        "(truncated or corrupted file)");
  }

  // Block-max metadata: optional sections gating the block pruning fast
  // path. A writer that records a block size in meta always writes all
  // four sections, so their absence alongside a nonzero block size is file
  // damage; a zero block size (every pre-block snapshot wrote slot 10 as
  // reserved 0) is the legitimate downgrade to per-term pruning.
  const uint64_t block_size = meta[kMetaBlockSize];
  std::span<const uint64_t> ci_block_offsets;
  std::span<const double> ci_block_max;
  std::span<const uint32_t> ci_block_doc_min;
  std::span<const uint32_t> ci_block_doc_max;
  if (block_size > 0) {
    CTXRANK_ASSIGN_OR_RETURN(
        block_offsets_s,
        map.Span<uint64_t>(SectionKind::kCiBlockOffsets,
                           ci_term_offsets.size()));
    CTXRANK_ASSIGN_OR_RETURN(block_max_s,
                             map.Span<double>(SectionKind::kCiBlockMax));
    CTXRANK_ASSIGN_OR_RETURN(
        block_dmin_s, map.Span<uint32_t>(SectionKind::kCiBlockDocMin,
                                         block_max_s.size()));
    CTXRANK_ASSIGN_OR_RETURN(
        block_dmax_s, map.Span<uint32_t>(SectionKind::kCiBlockDocMax,
                                         block_max_s.size()));
    if (!block_offsets_s.empty() &&
        block_offsets_s.back() != block_max_s.size()) {
      return Status::InvalidArgument(
          "snapshot: block-max CSR does not match its offsets (truncated "
          "or corrupted file)");
    }
    ci_block_offsets = block_offsets_s;
    ci_block_max = block_max_s;
    ci_block_doc_min = block_dmin_s;
    ci_block_doc_max = block_dmax_s;
  } else {
    snap->load_notes_ =
        "block-max sections absent (pre-block snapshot); serving with "
        "per-term pruning fallback\n";
    std::fprintf(stderr, "ctxrank: snapshot '%s': %s", path.c_str(),
                 snap->load_notes_.c_str());
  }

  // Shard ownership map (optional). A sharded snapshot routes from the
  // GLOBAL map, not the local assignment, so context selection on any
  // single shard is identical to the monolithic engine's — the override
  // is installed here, before the engine serves its first query.
  if (map.Find(SectionKind::kShardOwners) != nullptr) {
    CTXRANK_ASSIGN_OR_RETURN(
        shard_owners,
        map.Span<uint32_t>(SectionKind::kShardOwners, num_terms));
    snap->shard_owners_ = shard_owners;
  }

  context::ContextSearchEngine engine;
  engine.tc_ = &*snap->tc_;
  engine.onto_ = &snap->onto_;
  engine.assignment_ = &*snap->assignment_;
  engine.prestige_ = &*snap->prestige_;
  engine.routing_offsets_.SetView(routing_offsets);
  engine.routing_entries_.SetView(routing_entries);
  engine.name_norms_.SetView(name_norms);
  if (!snap->shard_owners_.empty()) {
    engine.SetRoutingOwners(snap->shard_owners_);
  }
  engine.index_postings_ = meta[kMetaIndexPostings];
  engine.max_indexed_members_ = meta[kMetaMaxIndexedMembers];
  engine.index_block_size_ = block_size;
  engine.context_index_.resize(num_terms);
  for (size_t t = 0; t < num_terms; ++t) {
    if (!ci_built[t]) continue;
    auto& ci = engine.context_index_[t];
    const auto offsets_run = ci_term_offsets.subspan(
        ci_term_outer[t], ci_term_outer[t + 1] - ci_term_outer[t]);
    if (offsets_run.empty() ||
        offsets_run.back() > ci_postings.size() ||
        offsets_run.front() > offsets_run.back()) {
      return Status::InvalidArgument(
          "snapshot: impact index offsets out of range for context " +
          std::to_string(t));
    }
    const auto norms_run = ci_norms.subspan(
        ci_docs_outer[t], ci_docs_outer[t + 1] - ci_docs_outer[t]);
    if (block_size > 0) {
      const auto boffsets_run = ci_block_offsets.subspan(
          ci_term_outer[t], ci_term_outer[t + 1] - ci_term_outer[t]);
      if (boffsets_run.empty() ||
          boffsets_run.back() > ci_block_max.size() ||
          boffsets_run.front() > boffsets_run.back()) {
        return Status::InvalidArgument(
            "snapshot: block-max offsets out of range for context " +
            std::to_string(t));
      }
      ci.index = text::ImpactOrderedIndex::FromView(
          offsets_run, ci_postings, norms_run, ci_min_norm[t],
          {static_cast<size_t>(block_size), boffsets_run, ci_block_max,
           ci_block_doc_min, ci_block_doc_max});
    } else {
      ci.index = text::ImpactOrderedIndex::FromView(offsets_run, ci_postings,
                                                    norms_run, ci_min_norm[t]);
    }
    ci.by_prestige.SetView(ci_by_prestige.subspan(
        ci_docs_outer[t], ci_docs_outer[t + 1] - ci_docs_outer[t]));
    ci.max_prestige = ci_max_prestige[t];
    ci.built = true;
  }
  snap->engine_.emplace(std::move(engine));

  // --- titles (optional) ---
  if (meta[kMetaHasTitles] != 0) {
    CTXRANK_ASSIGN_OR_RETURN(title_blob,
                             map.Span<char>(SectionKind::kTitleBlob));
    CTXRANK_ASSIGN_OR_RETURN(
        title_offsets,
        map.Span<uint64_t>(SectionKind::kTitleOffsets, num_papers + 1));
    if (title_offsets.back() != title_blob.size()) {
      return Status::InvalidArgument(
          "snapshot: title blob does not match its offsets");
    }
    snap->title_blob_ = title_blob;
    snap->title_offsets_ = title_offsets;
  }

#undef CTXRANK_ASSIGN_OR_RETURN
  return snap;
}

Result<std::unique_ptr<ServingSnapshot>> ServingSnapshot::Load(
    const std::string& path, size_t num_threads) {
  return SnapshotAccess::Load(path, num_threads);
}

std::string_view ServingSnapshot::title(corpus::PaperId p) const {
  if (title_offsets_.empty() || p + 1 >= title_offsets_.size()) return {};
  return std::string_view(title_blob_.data() + title_offsets_[p],
                          title_offsets_[p + 1] - title_offsets_[p]);
}

}  // namespace ctxrank::serve
