// ctxrankd — the network serving daemon: one accept thread plus one
// epoll edge-triggered reactor thread over non-blocking sockets, with
// query execution fanned out to a worker ThreadPool through
// serve::RequestContext (so the daemon runs the exact deadline /
// admission / shed spine the REPL and the batch path run).
//
// Connection lifecycle (see docs/ARCHITECTURE.md):
//
//   accept thread:  accept() → nonblock+TCP_NODELAY → register EPOLLET
//   reactor:        read until EAGAIN → sniff protocol (CTXQ1 magic vs
//                   HTTP) → parse complete frames/requests → queue →
//                   dispatch at most one request per connection to the
//                   pool (responses stay in request order; pipelined
//                   requests wait their turn)
//   worker:         pin the current snapshot → RequestContext::Run →
//                   encode the response → append to the connection's
//                   output buffer → signal the reactor via eventfd
//   reactor:        flush output until EAGAIN; arm EPOLLOUT only while
//                   bytes remain; apply write backpressure (pause reads
//                   when a slow consumer lets the output buffer grow
//                   past the cap, resume on drain); enforce idle
//                   timeouts; dispatch the next queued request
//
// Thread-safety contract per connection: the reactor exclusively owns
// the input buffer, parser state and dispatch queue; workers only touch
// the mutex-guarded output buffer and completion queue; sockets are
// written by the reactor alone. Snapshot hot reloads are invisible here
// — each request pins the supervisor's current snapshot for its
// lifetime (RCU), so a swap mid-request cannot invalidate anything.
#ifndef CTXRANK_SERVE_DAEMON_H_
#define CTXRANK_SERVE_DAEMON_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/admission_limiter.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "context/search_engine.h"
#include "serve/net.h"
#include "serve/supervisor.h"

namespace ctxrank::serve {

class ShardedEngine;
class MutableIndex;

class Daemon {
 public:
  struct Options {
    /// Listen address. Default loopback: exposing a ranking daemon to a
    /// network is an operator decision (docs/OPERATIONS.md).
    std::string host = "127.0.0.1";
    /// TCP port; 0 binds an ephemeral port (read it back via port()).
    uint16_t port = 0;
    /// Worker threads executing queries (0 = hardware concurrency).
    size_t workers = 0;
    /// Execute queries on the reactor thread instead of the worker pool.
    /// Skips the per-request handoff (eventfd + condvar + two context
    /// switches), which dominates for cache-hot queries and single-core
    /// hosts — the Redis model. The tradeoff: a slow query blocks every
    /// connection, so pair it with per-request deadlines. The worker
    /// pool is still created for any future use but sees no queries.
    bool inline_execution = false;
    /// Daemon-level admission limit on concurrently *executing* queries;
    /// 0 disables (the engine's own limit, if any, still applies). This
    /// lives on the daemon, not the engine, so it survives snapshot hot
    /// reloads.
    size_t max_in_flight = 0;
    /// Accepted connections beyond this are closed immediately.
    size_t max_connections = 1024;
    /// Connections idle longer than this are closed (0 = never).
    uint64_t idle_timeout_ms = 60000;
    /// Binary-protocol frame body cap; oversized frames get an error
    /// response and the connection is closed.
    uint32_t max_frame_bytes = net::kDefaultMaxFrameBytes;
    /// Write-backpressure threshold: once a connection's unflushed
    /// output exceeds this, its reads are paused until the peer drains.
    size_t max_output_buffer = 4u << 20;
    /// Slow-loris guard, size axis: a connection whose accumulated
    /// UNCONSUMED input exceeds this is closed (0 = max_frame_bytes +
    /// 16 KiB, enough for one maximal frame plus a pipelined header).
    /// Legitimate clients never get near it — complete frames are
    /// consumed as they arrive.
    size_t max_input_buffer = 0;
    /// Slow-loris guard, time axis: a connection holding a PARTIAL frame
    /// or request head longer than this without completing it is closed
    /// (0 = never). Trickling one byte per idle-timeout would otherwise
    /// hold a connection slot indefinitely.
    uint64_t frame_assembly_timeout_ms = 10000;
    /// Base SearchOptions for HTTP queries (binary requests carry their
    /// own full options fingerprint). URL parameters override topk /
    /// contexts / deadline_ms / exact per request.
    context::SearchOptions search;
  };

  /// The daemon serves whatever `supervisor` currently holds; hot
  /// reloads through the supervisor are picked up per-request. The
  /// supervisor must outlive the daemon.
  Daemon(SnapshotSupervisor& supervisor, Options options);

  /// Sharded backend: requests run through ShardedEngine's scatter-gather
  /// instead of a single pinned snapshot (the sharded engine pins its
  /// shard snapshots per query internally). Everything network-side is
  /// identical; /healthz reports per-shard liveness. The engine must
  /// outlive the daemon.
  Daemon(ShardedEngine& engine, Options options);

  /// Live-ingest backend: a segmented mutable index (docs/INDEXING.md).
  /// Adds the CTXQ1 AddPaper frame pair and the HTTP /compact endpoint on
  /// top of the normal search surface; searches run the delta-aware
  /// two-leg path. The index must outlive the daemon.
  Daemon(MutableIndex& index, Options options);

  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds, listens and starts the accept/reactor/worker threads.
  /// Fails (kIoError) when the address cannot be bound.
  Status Start();

  /// Graceful shutdown: stops accepting, drains in-flight workers,
  /// closes every connection. Idempotent; also run by the destructor.
  void Stop();

  /// Bound port (valid after Start(); resolves port=0 to the actual
  /// ephemeral port).
  uint16_t port() const { return bound_port_; }

  /// Open connections right now (reactor-maintained).
  size_t open_connections() const;

  /// The daemon's own admission limiter (null when max_in_flight=0).
  /// Exposed so tests can saturate it deterministically.
  AdmissionLimiter* admission_limiter_for_test() { return limiter_.get(); }

 private:
  enum class Protocol : uint8_t { kUnknown, kBinary, kHttp };

  /// One parsed request waiting for a worker slot on its connection.
  struct PendingRequest {
    net::WireRequest wire;
    bool http = false;
    bool http_keep_alive = true;
    /// A routed scatter leg (kFrameShardSearchRequest): run SearchRouted
    /// over `contexts` with a deadline armed from `budget_us` instead of
    /// the full route-and-search path.
    bool shard_leg = false;
    uint64_t budget_us = 0;
    std::vector<context::ContextMatch> contexts;
    /// A live ingest (kFrameAddPaperRequest, mutable backend only):
    /// run MutableIndex::Ingest(paper) and answer AddPaperResponse.
    bool add_paper = false;
    net::WireAddPaper paper;
    /// HTTP GET /compact (mutable backend only): fold the delta segment
    /// into a new base generation on this worker, answer JSON.
    bool compact = false;
  };

  /// Per-connection state. Ownership split (enforced by convention, the
  /// reactor being single-threaded): `in`, `pending`, `proto`,
  /// `executing`, `reading_paused`, `last_activity_ms`, `interest` and
  /// the fd lifetime belong to the reactor (plus the accept thread
  /// before registration); `out` and `close_after_flush` are guarded by
  /// `mu` because workers append encoded responses.
  struct Conn {
    explicit Conn(int fd_in) : fd(fd_in) {}
    const int fd;
    /// False once CloseConn ran (reactor-only; stale completion entries
    /// for a recycled fd are detected through this, not the fd value).
    bool open = true;
    Protocol proto = Protocol::kUnknown;
    std::string in;
    std::deque<PendingRequest> pending;
    bool executing = false;
    bool reading_paused = false;
    uint32_t interest = 0;
    uint64_t last_activity_ms = 0;
    /// Nonzero while `in` holds an incomplete frame / request head: the
    /// time assembly started (slow-loris time axis; reset on completion).
    uint64_t partial_since_ms = 0;

    std::mutex mu;
    std::string out;
    bool close_after_flush = false;
  };

  void AcceptLoop();
  void ReactorLoop();

  // All of the below run on the reactor thread only.
  void HandleReadable(const std::shared_ptr<Conn>& conn);
  void ParseBuffered(const std::shared_ptr<Conn>& conn);
  void ParseBinary(const std::shared_ptr<Conn>& conn);
  void ParseHttp(const std::shared_ptr<Conn>& conn);
  void MaybeDispatch(const std::shared_ptr<Conn>& conn);
  void FlushWrites(const std::shared_ptr<Conn>& conn);
  void UpdateBackpressure(const std::shared_ptr<Conn>& conn);
  void SetInterest(const std::shared_ptr<Conn>& conn, uint32_t interest);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  void ScanIdle(uint64_t now_ms);
  void DrainCompletions();
  /// Appends bytes to the connection's output (reactor-side enqueue for
  /// inline responses: /metrics, /healthz, protocol errors).
  void QueueOutput(const std::shared_ptr<Conn>& conn, std::string bytes,
                   bool close_after);

  /// Worker-side: executes one request and signals completion.
  void ExecuteRequest(const std::shared_ptr<Conn>& conn, PendingRequest req);
  /// The execution core shared by the worker path and inline mode:
  /// pins the snapshot, runs the request, appends the encoded response
  /// to the connection's output buffer (under conn->mu). Does NOT
  /// signal completion or touch the socket.
  void RunRequest(const std::shared_ptr<Conn>& conn, PendingRequest req);

  /// Inline HTTP endpoints (no engine work).
  std::string HealthzJson() const;
  /// True when the backend can serve: monolithic = snapshot loaded,
  /// sharded = every shard has a serving snapshot.
  bool BackendHealthy() const;

  // Exactly one backend is non-null, fixed at construction.
  SnapshotSupervisor* supervisor_ = nullptr;
  ShardedEngine* sharded_ = nullptr;
  MutableIndex* mutable_ = nullptr;
  const Options options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: workers → reactor.
  uint16_t bound_port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<AdmissionLimiter> limiter_;

  mutable std::mutex conns_mu_;
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;

  std::mutex completions_mu_;
  std::vector<std::shared_ptr<Conn>> completions_;

  std::thread accept_thread_;
  std::thread reactor_thread_;
};

}  // namespace ctxrank::serve

#endif  // CTXRANK_SERVE_DAEMON_H_
