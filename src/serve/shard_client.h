// Resilient CTXQ1 client for one remote shard: the network leg behind
// ShardedEngine's remote scatter-gather (docs/SHARDING.md, remote
// topology; retry/hedge semantics in docs/RELIABILITY.md).
//
// One ShardClient fronts one shard, addressed by a primary endpoint and
// an optional replica serving the identical shard file. Per request it
// runs the full resilience ladder:
//
//   * a bounded keep-alive connection pool per endpoint; idle
//     connections are health-checked with a PING/PONG exchange before
//     reuse, stale ones redialed;
//   * capped-exponential-backoff retries (common::Backoff, deterministic
//     jitter salted by the shard id) for connect failures and transient
//     transport errors — torn frames, resets, injected faults;
//   * failover: when the primary cannot be dialed or its send fails, the
//     attempt continues on the replica instead of burning a retry;
//   * hedging: while awaiting the primary's response, once the leg
//     exceeds a latency budget (a percentile of recently observed leg
//     latencies, clamped, with a fixed fallback until warmed up), the
//     identical request is sent to the replica; the first complete,
//     decodable response wins and the loser's connection is closed
//     (closing is the cancel signal — the protocol has no abort frame);
//   * every give-up surfaces as a non-OK Result, which the sharded
//     gather degrades into SearchResponse::skipped_shards — a dead
//     shard never fails the query.
//
// Thread-safe: concurrent legs share the pool under a mutex; a checked-
// out socket belongs to one request until returned or closed.
#ifndef CTXRANK_SERVE_SHARD_CLIENT_H_
#define CTXRANK_SERVE_SHARD_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/backoff.h"
#include "common/deadline.h"
#include "common/status.h"
#include "context/search_engine.h"
#include "serve/net.h"

namespace ctxrank::serve {

class ShardClient {
 public:
  struct Endpoint {
    std::string host;
    uint16_t port = 0;
    bool valid() const { return !host.empty() && port != 0; }
    std::string ToString() const {
      return host + ":" + std::to_string(port);
    }
  };

  struct Options {
    /// Idle keep-alive connections retained per endpoint.
    size_t pool_capacity = 2;
    /// Bound on one TCP connect (also clipped by the request deadline).
    uint64_t connect_timeout_ms = 250;
    /// Transient-error retries after the initial attempt.
    size_t max_retries = 2;
    /// Retry delay schedule; the salt is the shard id, so a fleet of
    /// clients sharing one seed still decorrelates.
    Backoff::Options backoff{.initial_ms = 2, .max_ms = 100,
                             .jitter_seed = 0};
    /// Hedge to the replica when the primary is slow (needs a replica).
    bool hedging_enabled = true;
    /// Hedge delay until enough latency samples exist.
    uint64_t hedge_after_us = 20000;
    /// Adaptive hedge delay: this percentile of the last observed leg
    /// latencies, clamped to [hedge_min_us, hedge_max_us].
    double hedge_percentile = 0.95;
    uint64_t hedge_min_us = 500;
    uint64_t hedge_max_us = 200000;
    /// Samples required before the percentile replaces hedge_after_us.
    size_t hedge_warmup = 32;
    /// Pooled connections idle longer than this are PING-validated
    /// before reuse instead of trusted blindly.
    uint64_t ping_idle_ms = 5000;
    /// Client-side wait bound applied when the request itself carries no
    /// deadline — a stalled shard daemon must never hang a query
    /// forever. Does NOT travel on the wire (budget_us stays 0), so
    /// results remain bitwise identical to deadline-free local legs.
    uint64_t request_timeout_ms = 2000;
    /// Response frame cap (shard responses carry up to top_k hits).
    uint32_t max_frame_bytes = 16u << 20;
  };

  /// Exact per-client event counts (the global ctxrank_shard_client_*
  /// metrics aggregate the same events across clients).
  struct Stats {
    uint64_t requests = 0;    ///< ShardSearch calls.
    uint64_t errors = 0;      ///< ShardSearch calls that gave up.
    uint64_t retries = 0;     ///< Backoff retries after transient errors.
    uint64_t hedges = 0;      ///< Hedge legs launched.
    uint64_t hedge_wins = 0;  ///< Hedge legs that produced the answer.
    uint64_t failovers = 0;   ///< Attempts moved primary → replica.
    uint64_t dials = 0;       ///< Fresh TCP connects.
    uint64_t pool_reuses = 0; ///< Requests served on a pooled connection.
    uint64_t pings = 0;       ///< PING/PONG validations sent.
    /// Connections closed at check-in instead of pooled because they
    /// still carried unconsumed input (buffered or kernel-readable) — a
    /// mid-frame connection must never reach the keep-alive pool.
    uint64_t dirty_drops = 0;
  };

  /// `replica` may be invalid (no replica: failover and hedging disabled).
  ShardClient(uint32_t shard, Endpoint primary, Endpoint replica,
              Options options);
  ~ShardClient();

  ShardClient(const ShardClient&) = delete;
  ShardClient& operator=(const ShardClient&) = delete;

  /// Runs one routed scatter leg remotely: encodes the context
  /// subsequence, carries `deadline`'s remaining budget on the wire, and
  /// applies the retry/failover/hedge ladder. A non-OK result means the
  /// shard is unreachable or exhausted — the caller degrades it into
  /// skipped_shards. An OK result holds whatever the shard answered
  /// (including its own non-kOk status, which the caller inspects).
  Result<net::WireResponse> ShardSearch(
      std::string_view query,
      std::span<const context::ContextMatch> contexts,
      const context::SearchOptions& options, const Deadline& deadline);

  /// One PING/PONG round trip against the primary (health probes,
  /// /healthz aggregation). Uses and replenishes the pool.
  Result<net::WirePong> Ping(const Deadline& deadline);

  uint32_t shard() const { return shard_; }
  const Endpoint& primary() const { return primary_; }
  const Endpoint& replica() const { return replica_; }
  bool has_replica() const { return replica_.valid(); }
  /// True while the last completed operation succeeded (starts false
  /// until something succeeds).
  bool healthy() const { return healthy_.load(std::memory_order_relaxed); }
  Stats stats() const;

  /// The shard generation tag (net::GenerationTag semantics) most
  /// recently observed from this shard — stamped in the header flags of
  /// a winning SearchResponse, or derived from a PONG's generation. 0
  /// until the first exchange ("unknown"), which disables merged-result
  /// caching on the gateway until the shard's generation is known.
  ///
  /// `max_age_ms` bounds how long an observation stays trustworthy: an
  /// observation older than that returns 0 ("unknown") so the caller
  /// falls back to an uncached search, whose legs re-observe the live
  /// tag. This is what bounds the gateway's stale-cache window after a
  /// remote reload — a cache hit runs no leg, so without an age bound a
  /// reloaded shard's new generation would never be noticed. 0 = no age
  /// limit.
  uint16_t last_generation_tag(uint64_t max_age_ms = 0) const;

  /// Idle pooled connections right now (tests).
  size_t pooled_connections() const;

 private:
  struct PooledConn {
    int fd = -1;
    uint64_t idle_since_ms = 0;
  };

  /// A request in flight on one socket (primary or hedge leg).
  struct InFlight {
    int fd = -1;
    bool on_replica = false;
    bool pooled = false;     ///< Came from the pool (for reuse metrics).
    std::string buf;         ///< Accumulated unparsed response bytes.
  };

  /// Pops a usable pooled connection for `endpoint_index` (0 = primary,
  /// 1 = replica), PING-validating stale ones, or dials a new one.
  Result<InFlight> Checkout(int endpoint_index, const Deadline& deadline);
  /// Returns a finished leg's connection to the pool — or closes it.
  /// Enforces the pool invariant centrally: a connection with ANY
  /// unconsumed input (bytes left in leg.buf after the final frame, or
  /// kernel-readable bytes) is in an undefined mid-frame state and is
  /// dropped (stats_.dirty_drops), never pooled. Closes the oldest idle
  /// connection beyond pool_capacity.
  void Checkin(int endpoint_index, InFlight leg);
  /// Fresh nonblocking TCP connect bounded by connect_timeout_ms and the
  /// deadline.
  Result<int> Dial(const Endpoint& endpoint, const Deadline& deadline);
  /// Sends one encoded frame with injected-fault hooks.
  Status SendFrame(int fd, std::string_view encoded,
                   const Deadline& deadline);
  /// Reads until one complete frame of `want_type` arrives in `leg.buf`
  /// or the deadline/transport fails. On success returns a copy of the
  /// frame body and erases the consumed bytes from leg.buf (a clean
  /// exchange leaves it empty).
  Result<std::string> RecvFrame(InFlight& leg, uint8_t want_type,
                                const Deadline& deadline);
  /// One PING/PONG validation on an existing fd.
  Status ValidateConn(int fd, const Deadline& deadline);
  /// Current hedge delay in microseconds.
  uint64_t HedgeDelayUs() const;
  void RecordLatencyUs(double us);

  const uint32_t shard_;
  const Endpoint primary_;
  const Endpoint replica_;
  const Options options_;

  mutable std::mutex pool_mu_;
  std::vector<PooledConn> pool_[2];  // [0] primary, [1] replica.

  mutable std::mutex latency_mu_;
  std::vector<double> latency_ring_;
  size_t latency_next_ = 0;
  size_t latency_count_ = 0;

  /// Records a freshly observed generation tag with its observation time.
  void StoreGenerationTag(uint16_t tag);

  std::atomic<bool> healthy_{false};
  std::atomic<uint16_t> last_generation_tag_{0};
  /// NowMs() of the last tag observation (0 = never observed).
  std::atomic<uint64_t> last_tag_observed_ms_{0};

  mutable std::mutex stats_mu_;
  Stats stats_;
};

/// One shard's addressing in a remote fleet.
struct RemoteShardSpec {
  ShardClient::Endpoint primary;
  ShardClient::Endpoint replica;  // Invalid when the shard has no replica.
};

/// Parses the --remote-shards syntax: comma-separated shards in shard-id
/// order, each "host:port" optionally followed by "/replicahost:port":
///
///   10.0.0.1:7401,10.0.0.2:7401/10.0.1.2:7401,10.0.0.3:7401
///
/// declares a 3-shard fleet whose shard 1 has a replica.
Result<std::vector<RemoteShardSpec>> ParseRemoteShards(std::string_view spec);

}  // namespace ctxrank::serve

#endif  // CTXRANK_SERVE_SHARD_CLIENT_H_
