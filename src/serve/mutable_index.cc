#include "serve/mutable_index.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "context/author_similarity.h"
#include "corpus/full_text_search.h"
#include "corpus/tokenized_corpus.h"
#include "graph/citation_graph.h"
#include "serve/snapshot.h"
#include "text/delta_postings.h"

namespace ctxrank::serve {
namespace {

using context::ContextMatch;
using context::SearchHit;
using context::SearchResponse;
using corpus::PaperId;
using ontology::TermId;

/// Ingest/compaction lifecycle telemetry. The delta gauge is the live
/// segment size ("how much is not yet compacted"); the generation gauge
/// counts completed compactions.
struct MutableIndexMetrics {
  obs::Counter& ingest_papers;
  obs::Counter& ingest_failures;
  obs::Counter& compaction_runs;
  obs::Counter& compaction_failures;
  obs::Counter& compaction_papers_folded;
  obs::Gauge& delta_papers;
  obs::Gauge& generation;
  obs::Histogram& ingest_latency_us;
  obs::Histogram& compaction_latency_us;
};

MutableIndexMetrics& Metrics() {
  auto& reg = obs::MetricsRegistry::Instance();
  static MutableIndexMetrics m{
      reg.GetCounter("ctxrank_ingest_papers_total"),
      reg.GetCounter("ctxrank_ingest_failures_total"),
      reg.GetCounter("ctxrank_compaction_runs_total"),
      reg.GetCounter("ctxrank_compaction_failures_total"),
      reg.GetCounter("ctxrank_compaction_papers_folded_total"),
      reg.GetGauge("ctxrank_delta_papers"),
      reg.GetGauge("ctxrank_index_generation"),
      reg.GetHistogram("ctxrank_ingest_latency_us", obs::LatencyBucketsUs()),
      reg.GetHistogram("ctxrank_compaction_latency_us",
                       obs::LatencyBucketsUs())};
  return m;
}

double MicrosSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void SortUnique(std::vector<TermId>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

/// The seed set plus every proper ancestor of every seed, sorted unique.
/// Affectedness must close under ancestors because the §3 hierarchy max
/// pulls descendant scores upward: a changed context changes the lifted
/// scores of everything above it.
std::vector<TermId> AncestorClosure(const ontology::Ontology& onto,
                                    const std::vector<TermId>& seed) {
  std::vector<uint8_t> in(onto.size(), 0);
  std::vector<TermId> stack;
  stack.reserve(seed.size());
  for (TermId t : seed) {
    if (!in[t]) {
      in[t] = 1;
      stack.push_back(t);
    }
  }
  std::vector<TermId> out;
  while (!stack.empty()) {
    const TermId t = stack.back();
    stack.pop_back();
    out.push_back(t);
    for (TermId p : onto.term(t).parents) {
      if (!in[p]) {
        in[p] = 1;
        stack.push_back(p);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void SortHits(std::vector<SearchHit>& hits) {
  std::sort(hits.begin(), hits.end(),
            [](const SearchHit& a, const SearchHit& b) {
              if (a.relevancy != b.relevancy) return a.relevancy > b.relevancy;
              return a.paper < b.paper;
            });
}

}  // namespace

/// One frozen generation's serving artifacts. Heap-allocated once and
/// never moved: every component references its siblings in place.
struct MutableIndex::Base {
  corpus::Corpus corpus;
  std::unique_ptr<corpus::TokenizedCorpus> tc;
  std::unique_ptr<corpus::FullTextSearch> search;
  std::unique_ptr<graph::CitationGraph> graph;
  std::unique_ptr<context::AuthorSimilarity> authors;
  std::unique_ptr<context::ContextAssignment> assignment;
  std::unique_ptr<context::PrestigeScores> prestige;
  std::unique_ptr<context::ContextSearchEngine> engine;
  /// Author -> papers listing them (affectedness spread of a brand-new
  /// co-authorship pair: §3.2's Level-1 channel is corpus-global).
  std::unordered_map<corpus::AuthorId, std::vector<PaperId>> papers_by_author;
};

/// One immutable published delta segment state. Record data (papers,
/// contributions, maps) is copied forward from the previous state on every
/// ingest; the overlay cache starts empty — memoized serving state is only
/// valid for exactly this segment content.
struct MutableIndex::DeltaState {
  explicit DeltaState(const Base& base) : authors(*base.authors) {}

  /// Lazily computed, memoized per-context serving overlays. One mutex;
  /// Lifted calls Raw only outside it (never nested). A losing racer
  /// recomputes an identical (deterministic) overlay and discards it.
  struct OverlayCache {
    std::shared_ptr<const context::ContextOverlay> Raw(
        const context::MergedCorpusView& view, TermId t,
        const context::TextAssignmentOptions& aopts,
        const context::TextPrestigeOptions& popts) {
      {
        std::lock_guard<std::mutex> lock(mu);
        auto it = raw.find(t);
        if (it != raw.end()) return it->second;
      }
      auto computed = std::make_shared<const context::ContextOverlay>(
          context::ComputeContextOverlay(view, t, aopts, popts));
      std::lock_guard<std::mutex> lock(mu);
      return raw.emplace(t, std::move(computed)).first->second;
    }

    /// Post-hierarchy-max scores aligned with Raw(t)->members: the §3 lift
    /// merges each descendant's RAW (pre-lift) scores, exactly like
    /// ApplyHierarchicalMax's frozen-copy pass.
    std::shared_ptr<const std::vector<double>> Lifted(
        const context::MergedCorpusView& view, const ontology::Ontology& onto,
        TermId t, const context::TextAssignmentOptions& aopts,
        const context::TextPrestigeOptions& popts) {
      {
        std::lock_guard<std::mutex> lock(mu);
        auto it = lifted.find(t);
        if (it != lifted.end()) return it->second;
      }
      const std::shared_ptr<const context::ContextOverlay> ov =
          Raw(view, t, aopts, popts);
      auto scores = std::make_shared<std::vector<double>>(ov->raw);
      if (popts.hierarchical_max && ov->has_scores()) {
        for (TermId d : onto.Descendants(t)) {
          const auto dov = Raw(view, d, aopts, popts);
          if (!dov->has_scores()) continue;
          context::LiftWithDescendant(ov->members, *scores, dov->members,
                                      dov->raw);
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      return lifted.emplace(t, std::move(scores)).first->second;
    }

    std::mutex mu;
    std::unordered_map<TermId, std::shared_ptr<const context::ContextOverlay>>
        raw;
    std::unordered_map<TermId, std::shared_ptr<const std::vector<double>>>
        lifted;
  };

  /// Un-compacted papers in ingest order; global id = base size + index.
  std::vector<context::DeltaPaper> papers;
  /// Per paper: the contexts it can belong to (evidence terms plus every
  /// base context whose representative admits it) — MemberContexts for
  /// delta papers in later papers' affectedness analysis.
  std::vector<std::vector<TermId>> self_contexts;
  /// Per paper: its ancestor-closed affected-context contribution,
  /// recomputed against the new base when leftovers replay at compaction.
  std::vector<std::vector<TermId>> contributions;
  /// Paper -> delta papers citing it (merged InNeighbors suffix).
  std::unordered_map<PaperId, std::vector<PaperId>> extra_in;
  /// Term -> delta evidence papers in ingest order (merged Evidence
  /// suffix — exactly the order a rebuilt corpus's AddEvidence calls
  /// would append).
  std::unordered_map<TermId, std::vector<PaperId>> extra_evidence;
  /// Base co-authorship plus every delta paper folded in.
  context::AuthorSimilarity authors;
  /// Full vectors of the delta papers (match-cosine scoring).
  text::DeltaPostings postings;
  /// Union of all contributions, sorted — contexts whose serving state
  /// must come from overlays. Closed under ancestors.
  std::vector<TermId> affected;
  /// Delta-born contexts: no base members, delta evidence present. Routed
  /// via ContextSearchEngine's extra_selectable hook.
  std::vector<TermId> extra_selectable;
  mutable OverlayCache overlays;
};

MutableIndex::MutableIndex(const ontology::Ontology& onto, Options options,
                           size_t stats_prefix)
    : onto_(&onto),
      options_(std::move(options)),
      stats_prefix_(stats_prefix) {}

MutableIndex::~MutableIndex() = default;

Result<std::unique_ptr<MutableIndex::Base>> MutableIndex::BuildBase(
    corpus::Corpus corpus, const ontology::Ontology& onto,
    const Options& options, size_t stats_prefix) {
  auto base = std::make_unique<Base>();
  base->corpus = std::move(corpus);
  base->tc = std::make_unique<corpus::TokenizedCorpus>(
      base->corpus, options.analyzer, stats_prefix);
  base->search = std::make_unique<corpus::FullTextSearch>(*base->tc);
  base->graph = std::make_unique<graph::CitationGraph>(base->corpus);
  base->authors = std::make_unique<context::AuthorSimilarity>(
      base->corpus, options.prestige.author);
  auto assignment = context::BuildTextBasedAssignment(
      *base->tc, onto, *base->search, options.assignment);
  CTXRANK_RETURN_NOT_OK(assignment.status());
  base->assignment = std::make_unique<context::ContextAssignment>(
      std::move(assignment).value());
  // Build parallelism is thread-invariant by contract, so the index-wide
  // num_threads can drive the prestige fan-out and engine construction.
  context::TextPrestigeOptions popts = options.prestige;
  popts.num_threads = options.num_threads;
  auto prestige = context::ComputeTextPrestige(
      onto, *base->assignment, *base->tc, *base->graph, *base->authors, popts);
  CTXRANK_RETURN_NOT_OK(prestige.status());
  base->prestige =
      std::make_unique<context::PrestigeScores>(std::move(prestige).value());
  context::ContextSearchEngine::EngineOptions eopts = options.engine;
  eopts.num_threads = options.num_threads;
  base->engine = std::make_unique<context::ContextSearchEngine>(
      *base->tc, onto, *base->assignment, *base->prestige, eopts);
  for (PaperId p = 0; p < base->corpus.size(); ++p) {
    std::vector<corpus::AuthorId> authors = base->corpus.paper(p).authors;
    std::sort(authors.begin(), authors.end());
    authors.erase(std::unique(authors.begin(), authors.end()), authors.end());
    for (corpus::AuthorId a : authors) {
      base->papers_by_author[a].push_back(p);
    }
  }
  return base;
}

Result<std::unique_ptr<MutableIndex>> MutableIndex::Build(
    corpus::Corpus corpus, const ontology::Ontology& onto, Options options) {
  if (!onto.finalized()) {
    return Status::FailedPrecondition(
        "MutableIndex requires a finalized ontology");
  }
  const size_t stats_prefix = corpus.size();
  if (stats_prefix == 0) {
    return Status::InvalidArgument(
        "MutableIndex requires a non-empty seed corpus (the TF-IDF "
        "statistics are frozen at its size)");
  }
  auto base = BuildBase(std::move(corpus), onto, options, stats_prefix);
  CTXRANK_RETURN_NOT_OK(base.status());
  std::unique_ptr<MutableIndex> index(
      new MutableIndex(onto, std::move(options), stats_prefix));
  index->base_ =
      std::shared_ptr<const Base>(std::move(base).value().release());
  Metrics().generation.Set(0);
  Metrics().delta_papers.Set(0);
  return index;
}

MutableIndex::View MutableIndex::CurrentView() const {
  std::lock_guard<std::mutex> lock(mu_);
  return View{base_, delta_};
}

Result<context::DeltaPaper> MutableIndex::MakeDeltaPaper(
    const Base& base, size_t delta_count, IngestPaper in) const {
  const PaperId id =
      static_cast<PaperId>(base.corpus.size() + delta_count);
  corpus::Paper paper = std::move(in.paper);
  paper.id = id;
  // Same reference invariants Corpus::Add enforces at compaction — reject
  // now so a bad ingest can never poison the compaction rebuild.
  std::unordered_set<PaperId> seen;
  for (PaperId ref : paper.references) {
    if (ref >= id) {
      return Status::InvalidArgument(
          "ingested paper cites unknown paper " + std::to_string(ref) +
          " (next id is " + std::to_string(id) + ")");
    }
    if (!seen.insert(ref).second) {
      return Status::InvalidArgument("duplicate reference " +
                                     std::to_string(ref) +
                                     " in ingested paper");
    }
  }
  std::sort(paper.authors.begin(), paper.authors.end());
  paper.authors.erase(
      std::unique(paper.authors.begin(), paper.authors.end()),
      paper.authors.end());
  std::vector<TermId> evidence = std::move(in.evidence_terms);
  for (TermId t : evidence) {
    if (t >= onto_->size()) {
      return Status::InvalidArgument("evidence term " + std::to_string(t) +
                                     " out of ontology range");
    }
  }
  SortUnique(evidence);
  // Tokenize and vectorize with the frozen model. AnalyzeToKnownIds drops
  // tokens outside the frozen vocabulary; a rebuild would intern them with
  // df = 0 and Transform would drop them — identical vectors either way.
  context::DeltaPaper dp;
  const text::Analyzer& analyzer = base.tc->analyzer();
  const text::Vocabulary& vocab = base.tc->vocabulary();
  std::vector<text::TermId> all;
  for (int s = 0; s < corpus::kNumTextSections; ++s) {
    const std::vector<text::TermId> ids = analyzer.AnalyzeToKnownIds(
        paper.SectionText(static_cast<corpus::Section>(s)), vocab);
    dp.sections[static_cast<size_t>(s)] = base.tc->tfidf().Transform(ids);
    all.insert(all.end(), ids.begin(), ids.end());
  }
  dp.full = base.tc->tfidf().Transform(all);
  dp.paper = std::move(paper);
  dp.evidence_terms = std::move(evidence);
  return dp;
}

std::shared_ptr<MutableIndex::DeltaState> MutableIndex::CloneShell(
    const Base& base, const DeltaState* prev) {
  auto state = std::make_shared<DeltaState>(base);
  if (prev != nullptr) {
    state->papers = prev->papers;
    state->self_contexts = prev->self_contexts;
    state->contributions = prev->contributions;
    state->extra_in = prev->extra_in;
    state->extra_evidence = prev->extra_evidence;
    state->authors = prev->authors;
    state->postings = prev->postings;
  }
  return state;
}

void MutableIndex::AppendRecord(const Base& base, DeltaState& state,
                                context::DeltaPaper dp) const {
  const size_t base_n = base.corpus.size();
  const PaperId new_id = static_cast<PaperId>(base_n + state.papers.size());

  // Brand-new co-authorship pairs, detected before folding the paper in:
  // a pair that already co-authored changes no Level-1 similarity.
  std::vector<corpus::AuthorId> pair_authors;
  const std::vector<corpus::AuthorId>& aus = dp.paper.authors;
  for (size_t i = 0; i < aus.size(); ++i) {
    for (size_t j = i + 1; j < aus.size(); ++j) {
      if (!state.authors.AreCoauthors(aus[i], aus[j])) {
        pair_authors.push_back(aus[i]);
        pair_authors.push_back(aus[j]);
      }
    }
  }
  std::sort(pair_authors.begin(), pair_authors.end());
  pair_authors.erase(
      std::unique(pair_authors.begin(), pair_authors.end()),
      pair_authors.end());

  // Contexts this paper can belong to: its evidence terms plus every base
  // context whose representative's cosine admits it (the exact member-scan
  // comparison).
  std::vector<TermId> self = dp.evidence_terms;
  {
    const std::vector<TermId> threshold = context::ThresholdContexts(
        *base.tc, *base.assignment, dp.full,
        options_.assignment.member_threshold);
    self.insert(self.end(), threshold.begin(), threshold.end());
    SortUnique(self);
  }

  // Affectedness seed: the paper's own contexts, the contexts of every
  // paper it cites (their in-neighbor lists — the co-citation channel —
  // change), and, for brand-new co-author pairs, the contexts of every
  // paper by either author (their Level-1 similarities change).
  std::vector<TermId> seed = self;
  const auto add_member_contexts = [&](PaperId q) {
    if (q < base_n) {
      const std::span<const TermId> contexts = base.assignment->ContextsOf(q);
      seed.insert(seed.end(), contexts.begin(), contexts.end());
    } else {
      const std::vector<TermId>& contexts = state.self_contexts[q - base_n];
      seed.insert(seed.end(), contexts.begin(), contexts.end());
    }
  };
  for (PaperId r : dp.paper.references) add_member_contexts(r);
  if (!pair_authors.empty()) {
    for (corpus::AuthorId a : pair_authors) {
      const auto it = base.papers_by_author.find(a);
      if (it == base.papers_by_author.end()) continue;
      for (PaperId q : it->second) add_member_contexts(q);
    }
    for (size_t d = 0; d < state.papers.size(); ++d) {
      const std::vector<corpus::AuthorId>& das = state.papers[d].paper.authors;
      const bool touched = std::any_of(
          pair_authors.begin(), pair_authors.end(),
          [&das](corpus::AuthorId a) {
            return std::binary_search(das.begin(), das.end(), a);
          });
      if (touched) {
        seed.insert(seed.end(), state.self_contexts[d].begin(),
                    state.self_contexts[d].end());
      }
    }
  }
  std::vector<TermId> contribution = AncestorClosure(*onto_, seed);

  for (PaperId r : dp.paper.references) {
    state.extra_in[r].push_back(new_id);
  }
  for (TermId t : dp.evidence_terms) {
    state.extra_evidence[t].push_back(new_id);
  }
  state.postings.Add(dp.full);
  state.authors.AddPaper(dp.paper);
  state.self_contexts.push_back(std::move(self));
  state.contributions.push_back(std::move(contribution));
  state.papers.push_back(std::move(dp));
}

void MutableIndex::FinishState(const Base& base, DeltaState& state) {
  state.affected.clear();
  for (const std::vector<TermId>& c : state.contributions) {
    state.affected.insert(state.affected.end(), c.begin(), c.end());
  }
  SortUnique(state.affected);
  state.extra_selectable.clear();
  for (const auto& [term, papers] : state.extra_evidence) {
    if (!papers.empty() && base.assignment->Members(term).empty()) {
      state.extra_selectable.push_back(term);
    }
  }
  std::sort(state.extra_selectable.begin(), state.extra_selectable.end());
}

Result<PaperId> MutableIndex::Ingest(IngestPaper in) {
  MutableIndexMetrics& m = Metrics();
  const auto t0 = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(ingest_mu_);
  const View view = CurrentView();
  const Base& base = *view.base;
  const size_t delta_count =
      view.delta != nullptr ? view.delta->papers.size() : 0;
  auto dp = MakeDeltaPaper(base, delta_count, std::move(in));
  if (!dp.ok()) {
    m.ingest_failures.Increment();
    return dp.status();
  }
  std::shared_ptr<DeltaState> next = CloneShell(base, view.delta.get());
  AppendRecord(base, *next, std::move(dp).value());
  FinishState(base, *next);
  const PaperId id =
      static_cast<PaperId>(base.corpus.size() + next->papers.size() - 1);
  const size_t delta_size = next->papers.size();
  {
    std::lock_guard<std::mutex> swap(mu_);
    delta_ = std::move(next);
  }
  m.ingest_papers.Increment();
  m.delta_papers.Set(static_cast<int64_t>(delta_size));
  m.ingest_latency_us.Observe(MicrosSince(t0));
  return id;
}

SearchResponse MutableIndex::SearchTwoLeg(
    const View& view, std::string_view query,
    const context::SearchOptions& options, const Deadline& deadline) const {
  const Base& base = *view.base;
  const DeltaState& delta = *view.delta;
  const size_t base_n = base.tc->size();

  // Route ONCE on the base engine; delta-born contexts become selectable
  // via the sorted extra list. Identical to routing on a merged rebuild:
  // the frozen model pins name vectors, norms, and query analysis.
  const std::vector<ContextMatch> selected =
      base.engine->RouteQueryText(query, options, delta.extra_selectable);

  // Partition into the base leg (contexts untouched by the delta — the
  // frozen artifacts, pruned fast path included, are exact for them) and
  // the overlay leg, remembering each context's global selection rank for
  // the cross-leg merge.
  std::vector<ContextMatch> base_leg;
  std::vector<ContextMatch> overlay_leg;
  std::unordered_map<TermId, size_t> rank_of;
  rank_of.reserve(selected.size());
  for (size_t i = 0; i < selected.size(); ++i) {
    rank_of.emplace(selected[i].term, i);
    if (std::binary_search(delta.affected.begin(), delta.affected.end(),
                           selected[i].term)) {
      overlay_leg.push_back(selected[i]);
    } else {
      base_leg.push_back(selected[i]);
    }
  }

  SearchResponse base_resp =
      base.engine->SearchRouted(query, base_leg, options, deadline);

  // Overlay leg: exact scan over the recomputed per-context serving state,
  // mirroring ExactScan's per-member expression and skip conditions.
  const auto ids =
      base.tc->analyzer().AnalyzeToKnownIds(query, base.tc->vocabulary());
  const text::SparseVector qv = base.tc->tfidf().TransformQuery(ids);
  const context::MergedCorpusView merged(*base.tc, *base.graph, delta.authors,
                                         delta.papers, delta.extra_in,
                                         delta.extra_evidence);
  const double wp = options.weights.prestige;
  const double wm = options.weights.matching;
  std::vector<SearchHit> overlay_hits;
  std::vector<TermId> overlay_skipped;
  std::vector<double> delta_cos;
  bool have_cos = false;
  for (const ContextMatch& cm : overlay_leg) {
    if (deadline.expired()) {
      overlay_skipped.push_back(cm.term);
      continue;
    }
    const auto overlay = delta.overlays.Raw(merged, cm.term,
                                            options_.assignment,
                                            options_.prestige);
    if (!overlay->has_scores()) continue;
    const auto lifted = delta.overlays.Lifted(
        merged, *onto_, cm.term, options_.assignment, options_.prestige);
    if (!have_cos) {
      delta_cos = delta.postings.CosineAll(qv);
      have_cos = true;
    }
    for (size_t i = 0; i < overlay->members.size(); ++i) {
      const PaperId p = overlay->members[i];
      const double match = p < base_n ? qv.Cosine(base.tc->FullVector(p))
                                      : delta_cos[p - base_n];
      const double prestige = i < lifted->size() ? (*lifted)[i] : 0.0;
      const double r = wp * prestige + wm * match;
      if (r < options.min_relevancy) continue;
      overlay_hits.push_back({p, r, cm.term, prestige, match});
    }
  }

  // Cross-leg merge: per paper, best relevancy wins; ties go to the lower
  // global selection rank. Each leg already resolved its internal ties the
  // same way (first context with the max, in selection order), so this
  // reproduces the sequential single-engine merge exactly.
  struct Ranked {
    SearchHit hit;
    size_t rank;
  };
  std::unordered_map<PaperId, Ranked> per_paper;
  const auto fold = [&](const SearchHit& hit) {
    const size_t rank = rank_of.at(hit.context);
    auto it = per_paper.find(hit.paper);
    if (it == per_paper.end() ||
        hit.relevancy > it->second.hit.relevancy ||
        (hit.relevancy == it->second.hit.relevancy &&
         rank < it->second.rank)) {
      per_paper[hit.paper] = Ranked{hit, rank};
    }
  };
  for (const SearchHit& hit : base_resp.hits) fold(hit);
  for (const SearchHit& hit : overlay_hits) fold(hit);

  SearchResponse response;
  response.hits.reserve(per_paper.size());
  for (const auto& [paper, ranked] : per_paper) {
    response.hits.push_back(ranked.hit);
  }
  SortHits(response.hits);
  if (options.top_k > 0 && response.hits.size() > options.top_k) {
    response.hits.resize(options.top_k);
  }
  response.skipped_contexts = std::move(base_resp.skipped_contexts);
  response.skipped_contexts.insert(response.skipped_contexts.end(),
                                   overlay_skipped.begin(),
                                   overlay_skipped.end());
  response.degraded = !response.skipped_contexts.empty();
  return response;
}

SearchResponse MutableIndex::SearchGuarded(
    std::string_view query, const context::SearchOptions& options,
    const Deadline& deadline) const {
  const View view = CurrentView();
  if (view.delta == nullptr || view.delta->papers.empty()) {
    return view.base->engine->SearchGuarded(query, options, deadline);
  }
  return SearchTwoLeg(view, query, options, deadline);
}

SearchResponse MutableIndex::SearchEx(
    std::string_view query, const context::SearchOptions& options) const {
  const Deadline deadline = options.deadline_ms > 0
                                ? Deadline::AfterMs(options.deadline_ms)
                                : Deadline();
  return SearchGuarded(query, options, deadline);
}

Status MutableIndex::Compact() {
  MutableIndexMetrics& m = Metrics();
  std::lock_guard<std::mutex> compact_lock(compact_mu_);
  const View view = CurrentView();
  const size_t fold = view.delta != nullptr ? view.delta->papers.size() : 0;
  if (fold == 0) return Status::OK();  // Empty delta: compaction is a no-op.
  const auto t0 = std::chrono::steady_clock::now();
  const auto fail = [&m](Status status) {
    m.compaction_failures.Increment();
    return status;
  };

  // Merged corpus: base papers, then the captured delta prefix in ingest
  // order. Per-term evidence keeps base order first, delta ingest order
  // after — exactly the merged Evidence() the overlays served from.
  const Base& old_base = *view.base;
  const size_t base_n = old_base.corpus.size();
  corpus::Corpus corpus;
  for (PaperId p = 0; p < base_n; ++p) {
    CTXRANK_RETURN_NOT_OK(corpus.Add(old_base.corpus.paper(p)));
  }
  size_t num_authors = old_base.corpus.num_authors();
  for (size_t d = 0; d < fold; ++d) {
    const corpus::Paper& paper = view.delta->papers[d].paper;
    CTXRANK_RETURN_NOT_OK(corpus.Add(paper));
    for (corpus::AuthorId a : paper.authors) {
      num_authors = std::max(num_authors, static_cast<size_t>(a) + 1);
    }
  }
  corpus.set_num_authors(num_authors);
  for (TermId t = 0; t < onto_->size(); ++t) {
    for (PaperId p : old_base.corpus.Evidence(t)) corpus.AddEvidence(t, p);
  }
  for (size_t d = 0; d < fold; ++d) {
    for (TermId t : view.delta->papers[d].evidence_terms) {
      corpus.AddEvidence(t, static_cast<PaperId>(base_n + d));
    }
  }

  // The heavy rebuild runs off every serving lock: queries keep serving
  // the old view, ingests keep appending to the live delta.
  {
    Status s = fault::MaybeFail("mutable_index/compact");
    if (!s.ok()) return fail(std::move(s));
  }
  fault::MaybeStall("mutable_index/compact");
  auto built = BuildBase(std::move(corpus), *onto_, options_, stats_prefix_);
  if (!built.ok()) return fail(built.status());
  const std::shared_ptr<const Base> new_base(
      std::move(built).value().release());

  if (!options_.snapshot_path.empty()) {
    SnapshotInputs inputs;
    inputs.tc = new_base->tc.get();
    inputs.onto = onto_;
    inputs.assignment = new_base->assignment.get();
    inputs.prestige = new_base->prestige.get();
    inputs.engine = new_base->engine.get();
    inputs.corpus = &new_base->corpus;
    const std::string tmp = options_.snapshot_path + ".tmp";
    Status s = SaveSnapshot(inputs, tmp, options_.num_threads);
    if (s.ok() &&
        std::rename(tmp.c_str(), options_.snapshot_path.c_str()) != 0) {
      s = Status::IoError("rename " + tmp + " -> " + options_.snapshot_path +
                          " failed");
    }
    if (!s.ok()) return fail(std::move(s));
  }

  // Publish: with ingests paused, replay every paper ingested since the
  // capture against the new base. Leftover global ids are unchanged (the
  // compacted prefix moved into the base, so base size grew by exactly
  // their old delta offset), which keeps stored references and vectors
  // valid verbatim; contexts and affectedness are recomputed because both
  // are relative to the base generation.
  size_t leftover = 0;
  {
    std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
    const View current = CurrentView();
    const size_t total =
        current.delta != nullptr ? current.delta->papers.size() : 0;
    std::shared_ptr<DeltaState> replayed;
    if (total > fold) {
      replayed = CloneShell(*new_base, nullptr);
      for (size_t d = fold; d < total; ++d) {
        AppendRecord(*new_base, *replayed, current.delta->papers[d]);
      }
      FinishState(*new_base, *replayed);
      leftover = total - fold;
    }
    {
      std::lock_guard<std::mutex> swap(mu_);
      base_ = new_base;
      delta_ = std::move(replayed);
    }
    generation_.fetch_add(1);
  }
  m.compaction_runs.Increment();
  m.compaction_papers_folded.Increment(fold);
  m.delta_papers.Set(static_cast<int64_t>(leftover));
  m.generation.Set(static_cast<int64_t>(generation_.load()));
  m.compaction_latency_us.Observe(MicrosSince(t0));
  return Status::OK();
}

size_t MutableIndex::base_papers() const {
  return CurrentView().base->corpus.size();
}

size_t MutableIndex::delta_papers() const {
  const View view = CurrentView();
  return view.delta != nullptr ? view.delta->papers.size() : 0;
}

size_t MutableIndex::num_papers() const {
  const View view = CurrentView();
  return view.base->corpus.size() +
         (view.delta != nullptr ? view.delta->papers.size() : 0);
}

std::vector<TermId> MutableIndex::affected_contexts() const {
  const View view = CurrentView();
  return view.delta != nullptr ? view.delta->affected : std::vector<TermId>();
}

std::vector<TermId> MutableIndex::extra_selectable_contexts() const {
  const View view = CurrentView();
  return view.delta != nullptr ? view.delta->extra_selectable
                               : std::vector<TermId>();
}

}  // namespace ctxrank::serve
