#include "serve/supervisor.h"

#include <sys/stat.h>

#include <chrono>
#include <utility>

#include "common/backoff.h"
#include "common/fault_injection.h"
#include "common/metrics.h"

namespace ctxrank::serve {
namespace {

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Reload lifecycle telemetry. The two gauges make "how stale is the
/// serving snapshot" a first-class signal: generation is the successful
/// swap count and last_success_walltime_s is the unix time of the latest
/// swap (0 until one succeeds) — age is computed at display time.
struct SupervisorMetrics {
  obs::Counter& attempts;
  obs::Counter& successes;
  obs::Counter& failures;
  obs::Counter& retries;
  obs::Counter& identity_races;
  obs::Gauge& generation;
  obs::Gauge& last_success_walltime_s;
};

SupervisorMetrics& Metrics() {
  auto& reg = obs::MetricsRegistry::Instance();
  static SupervisorMetrics m{
      reg.GetCounter("ctxrank_snapshot_reload_attempts_total"),
      reg.GetCounter("ctxrank_snapshot_reload_success_total"),
      reg.GetCounter("ctxrank_snapshot_reload_failures_total"),
      reg.GetCounter("ctxrank_snapshot_reload_retries_total"),
      reg.GetCounter("ctxrank_snapshot_reload_identity_races_total"),
      reg.GetGauge("ctxrank_snapshot_generation"),
      reg.GetGauge("ctxrank_snapshot_last_success_walltime_s")};
  return m;
}

}  // namespace

SnapshotSupervisor::SnapshotSupervisor(Options options)
    : options_(std::move(options)) {}

SnapshotSupervisor::~SnapshotSupervisor() { StopWatching(); }

SnapshotSupervisor::FileIdentity SnapshotSupervisor::StatIdentity(
    const std::string& path) {
  FileIdentity id;
  struct stat st{};
  if (!fault::MaybeFail("supervisor/stat").ok()) return id;
  if (::stat(path.c_str(), &st) != 0) return id;
  id.inode = static_cast<uint64_t>(st.st_ino);
  id.size = static_cast<uint64_t>(st.st_size);
  id.mtime_ns = static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
                static_cast<int64_t>(st.st_mtim.tv_nsec);
  id.exists = true;
  return id;
}

bool SnapshotSupervisor::BackoffSleep(size_t attempt, uint64_t salt) {
  const uint64_t delay =
      Backoff::DelayMs({.initial_ms = options_.backoff_initial_ms,
                        .max_ms = options_.backoff_max_ms,
                        .jitter_seed = options_.jitter_seed},
                       attempt, salt);
  std::unique_lock<std::mutex> lock(mu_);
  // wait_for returns true when the predicate (shutdown) fired.
  return !wake_.wait_for(lock, std::chrono::milliseconds(delay),
                         [this] { return stop_; });
}

Status SnapshotSupervisor::Reload(const std::string& path) {
  // Serialize whole reload cycles without blocking readers or stats: mu_ is
  // only taken for the brief swap/bookkeeping windows.
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  Metrics().attempts.Increment();
  const uint64_t salt = Fnv1a(path);
  Status status;
  for (size_t attempt = 0;; ++attempt) {
    // Bracket the load with identity stats: mmap reads the file over an
    // extended window, so a same-inode in-place rewrite (as compaction's
    // or SaveSnapshot's O_TRUNC path produces) racing the load can yield a
    // half-old half-new byte stream — or a "validated" snapshot of a file
    // state that no longer exists. A before/after mismatch discards
    // whatever Load produced and retries as transient: the file settles,
    // the retry reads one coherent state.
    const FileIdentity id_before = StatIdentity(path);
    auto result = ServingSnapshot::Load(path, options_.num_threads);
    const FileIdentity id_after = StatIdentity(path);
    const bool identity_stable =
        id_before.exists && id_after.exists && id_before == id_after;
    // A successful load of an unstable file is a race (the bytes served
    // later out of the mapping may not be the bytes that validated). A
    // failed load only counts as a race when the file demonstrably changed
    // underneath it — a plain missing file is an ordinary IoError.
    const bool raced =
        result.ok() ? !identity_stable
                    : (id_before.exists && id_after.exists &&
                       !(id_before == id_after));
    if (raced) {
      Metrics().identity_races.Increment();
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.identity_races;
      }
      if (result.ok()) {
        result =
            Status::IoError("snapshot file changed while loading " + path);
      }
    }
    if (result.ok()) {
      // Configure before publishing: the hook owns the only reference, so
      // engine setters cannot race an in-flight query.
      if (options_.on_load) options_.on_load(*result.value());
      std::shared_ptr<const ServingSnapshot> fresh(
          std::move(result).value().release());
      const int64_t now_s =
          std::chrono::duration_cast<std::chrono::seconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count();
      std::lock_guard<std::mutex> lock(mu_);
      // The swap is a shared_ptr store: in-flight readers keep their
      // reference to the old snapshot; it dies with its last reader.
      current_ = std::move(fresh);
      ++stats_.generation;
      stats_.current_path = path;
      stats_.last_error.clear();
      stats_.last_success_unix_s = now_s;
      Metrics().successes.Increment();
      Metrics().generation.Set(static_cast<int64_t>(stats_.generation));
      Metrics().last_success_walltime_s.Set(now_s);
      return Status::OK();
    }
    status = result.status();
    // Only I/O errors are worth retrying: the file may be mid-copy or a
    // transient fault. A validation failure (bad magic, checksum mismatch)
    // is permanent for this file state — retrying would reload the same
    // bytes. Exception: a raced load is transient whatever its code — a
    // half-old half-new read produces exactly those "permanent" checksum
    // errors, and the retry reads the settled file.
    const bool transient = status.code() == StatusCode::kIoError || raced;
    if (!transient || attempt >= options_.max_retries) break;
    Metrics().retries.Increment();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.retries;
    }
    if (!BackoffSleep(attempt, salt)) break;  // Shutdown requested.
  }
  Metrics().failures.Increment();
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.failed_reloads;
  stats_.last_error = status.ToString();
  return status;
}

std::shared_ptr<const ServingSnapshot> SnapshotSupervisor::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

Status SnapshotSupervisor::StartWatching(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (watcher_.joinable()) {
    return Status::FailedPrecondition("already watching " + watch_path_);
  }
  watch_path_ = path;
  stop_ = false;
  forced_ = true;  // Examine the file immediately, not after one interval.
  has_attempted_ = false;
  watcher_ = std::thread([this] { WatchLoop(); });
  return Status::OK();
}

void SnapshotSupervisor::StopWatching() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!watcher_.joinable()) return;
    stop_ = true;
    to_join = std::move(watcher_);
  }
  wake_.notify_all();
  to_join.join();
}

void SnapshotSupervisor::TriggerReload() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    forced_ = true;
  }
  wake_.notify_all();
}

bool SnapshotSupervisor::watching() const {
  std::lock_guard<std::mutex> lock(mu_);
  return watcher_.joinable();
}

SnapshotSupervisor::Stats SnapshotSupervisor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

uint64_t SnapshotSupervisor::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.generation;
}

void SnapshotSupervisor::WatchLoop() {
  const auto interval = std::chrono::milliseconds(options_.watch_interval_ms);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    wake_.wait_for(lock, interval, [this] { return stop_ || forced_; });
    if (stop_) break;
    const bool forced = std::exchange(forced_, false);
    const std::string path = watch_path_;
    lock.unlock();
    const FileIdentity id = StatIdentity(path);
    bool attempt = false;
    {
      std::lock_guard<std::mutex> state_lock(mu_);
      // Reload when the file changed since the last attempt (success or
      // failure) or when explicitly triggered. Remembering failed states
      // keeps the watcher from hot-looping on a persistently bad file.
      attempt = id.exists &&
                (forced || !has_attempted_ || !(id == last_attempted_));
      if (attempt) {
        last_attempted_ = id;
        has_attempted_ = true;
      }
    }
    if (attempt) Reload(path);
    lock.lock();
  }
}

}  // namespace ctxrank::serve
