// Hot-reload supervisor for serving snapshots with last-good fallback.
//
// The supervisor owns the currently served ServingSnapshot behind an
// atomically swappable shared_ptr (RCU-style: readers grab a reference and
// keep serving off it even while a newer snapshot is being swapped in; the
// old snapshot is destroyed when its last in-flight reader drops the
// reference). Reload loads and fully validates a candidate file off the
// serving path and only swaps it in once Load has accepted it — a corrupt
// or truncated file therefore never reaches queries: the previous
// ("last-good") snapshot keeps serving and the failure is recorded.
//
// Failure policy:
//   - kIoError is treated as transient (file mid-copy, interrupted write,
//     injected fault) and retried with capped exponential backoff plus
//     deterministic jitter.
//   - Any other code (kInvalidArgument = corruption/format mismatch) is
//     permanent for that file state: fail immediately, keep last-good.
//
// An optional watcher thread polls the file's identity (inode, size,
// mtime) and triggers a reload when it changes. A failed attempt remembers
// the file state it failed on, so the watcher does not hot-loop on a bad
// file — it waits for the file to change again (or an explicit
// TriggerReload).
//
// See docs/RELIABILITY.md for the full state machine.
#ifndef CTXRANK_SERVE_SUPERVISOR_H_
#define CTXRANK_SERVE_SUPERVISOR_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "serve/snapshot.h"

namespace ctxrank::serve {

class SnapshotSupervisor {
 public:
  struct Options {
    /// Load parallelism (0 = hardware concurrency).
    size_t num_threads = 0;
    /// Retries after the initial attempt for transient (kIoError) failures.
    size_t max_retries = 3;
    /// First backoff delay; doubles per retry up to `backoff_max_ms`.
    uint64_t backoff_initial_ms = 10;
    uint64_t backoff_max_ms = 1000;
    /// Seed for the deterministic jitter added to each backoff delay.
    uint64_t jitter_seed = 0;
    /// Poll interval of the watcher thread.
    uint64_t watch_interval_ms = 200;
    /// Invoked on every freshly loaded snapshot after validation and
    /// before it is swapped in to serve — the hook runs off the serving
    /// path, so engine configuration that is unsafe against in-flight
    /// queries (EnableQueryCache, SetAdmissionLimit via mutable_engine())
    /// is safe here. Survives hot reloads: every generation gets the same
    /// configuration. Null = no-op.
    std::function<void(ServingSnapshot&)> on_load;
  };

  struct Stats {
    /// Successful swaps since construction (0 = nothing loaded yet).
    uint64_t generation = 0;
    /// Reload calls that exhausted retries or hit a permanent error.
    uint64_t failed_reloads = 0;
    /// Transient-failure retry attempts across all reloads.
    uint64_t retries = 0;
    /// Loads discarded because the file's identity (inode, size, mtime)
    /// changed while the load was reading it — a same-inode in-place
    /// rewrite racing the load can hand Load a half-old half-new byte
    /// stream that still validates per-section. Each race is retried as a
    /// transient failure against the settled file.
    uint64_t identity_races = 0;
    /// Status message of the most recent failure ("" if none).
    std::string last_error;
    /// Path of the currently served snapshot ("" if none).
    std::string current_path;
    /// Unix time (seconds) of the last successful swap (0 = none yet);
    /// serving-snapshot age is current time minus this.
    int64_t last_success_unix_s = 0;
  };

  SnapshotSupervisor() : SnapshotSupervisor(Options()) {}
  explicit SnapshotSupervisor(Options options);
  ~SnapshotSupervisor();

  SnapshotSupervisor(const SnapshotSupervisor&) = delete;
  SnapshotSupervisor& operator=(const SnapshotSupervisor&) = delete;

  /// Loads and validates `path`, retrying transient failures, and swaps it
  /// in as the served snapshot on success. On failure the previously served
  /// snapshot (if any) stays in place and the error is both returned and
  /// recorded in stats(). Thread-safe; concurrent reloads serialize.
  Status Reload(const std::string& path);

  /// The currently served snapshot, or nullptr before the first successful
  /// Reload. The returned reference stays valid (and the snapshot alive)
  /// for as long as the caller holds it, even across later swaps.
  std::shared_ptr<const ServingSnapshot> current() const;

  /// Starts a background thread that polls `path` and reloads when the
  /// file's identity (inode, size, mtime) changes. Does not require the
  /// file to exist yet — it is picked up once it appears.
  Status StartWatching(const std::string& path);

  /// Stops the watcher thread (no-op when not watching). Idempotent.
  void StopWatching();

  /// Wakes the watcher to re-examine the file immediately, bypassing both
  /// the poll interval and the failed-state memory. No-op when not
  /// watching.
  void TriggerReload();

  bool watching() const;
  Stats stats() const;

  /// stats().generation without copying the full struct — cheap enough
  /// for per-query cache-key construction (ShardedEngine invalidates its
  /// merged-result cache whenever any shard's generation moves).
  uint64_t generation() const;

 private:
  struct FileIdentity {
    uint64_t inode = 0;
    uint64_t size = 0;
    int64_t mtime_ns = 0;
    bool exists = false;
    bool operator==(const FileIdentity&) const = default;
  };

  static FileIdentity StatIdentity(const std::string& path);

  /// One full reload attempt cycle (initial try + transient retries).
  /// Returns the final status and updates stats/current under mu_.
  Status ReloadLocked(const std::string& path,
                      std::unique_lock<std::mutex>& lock);

  /// Sleeps for the backoff delay of `attempt`, waking early on shutdown.
  /// Returns false when shutdown was requested.
  bool BackoffSleep(size_t attempt, uint64_t salt);

  void WatchLoop();

  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable wake_;
  std::shared_ptr<const ServingSnapshot> current_;
  Stats stats_;

  // Watcher state (guarded by mu_).
  std::thread watcher_;
  std::string watch_path_;
  bool stop_ = false;
  bool forced_ = false;
  FileIdentity last_attempted_;
  bool has_attempted_ = false;

  // Serializes Reload bodies without holding mu_ during the (slow) load.
  std::mutex reload_mu_;
};

}  // namespace ctxrank::serve

#endif  // CTXRANK_SERVE_SUPERVISOR_H_
