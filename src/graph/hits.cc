#include "graph/hits.h"

#include <cmath>

namespace ctxrank::graph {

namespace {

void L2Normalize(std::vector<double>& v) {
  double norm = 0.0;
  for (double x : v) norm += x * x;
  norm = std::sqrt(norm);
  if (norm > 0.0) {
    for (double& x : v) x /= norm;
  }
}

}  // namespace

Result<HitsResult> ComputeHits(const InducedSubgraph& subgraph,
                               const HitsOptions& options) {
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  const size_t n = subgraph.size();
  HitsResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }
  const auto& adj = subgraph.out_adj();
  std::vector<double> auth(n, 1.0), hub(n, 1.0);
  std::vector<double> new_auth(n), new_hub(n);
  L2Normalize(auth);
  L2Normalize(hub);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Authority of v = sum of hub scores of papers citing v.
    std::fill(new_auth.begin(), new_auth.end(), 0.0);
    for (size_t u = 0; u < n; ++u) {
      for (uint32_t v : adj[u]) new_auth[v] += hub[u];
    }
    L2Normalize(new_auth);
    // Hub of u = sum of authority scores of papers u cites.
    std::fill(new_hub.begin(), new_hub.end(), 0.0);
    for (size_t u = 0; u < n; ++u) {
      for (uint32_t v : adj[u]) new_hub[u] += new_auth[v];
    }
    L2Normalize(new_hub);
    double delta = 0.0;
    for (size_t i = 0; i < n; ++i) {
      delta += std::fabs(new_auth[i] - auth[i]) + std::fabs(new_hub[i] - hub[i]);
    }
    auth.swap(new_auth);
    hub.swap(new_hub);
    result.iterations = iter + 1;
    if (delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.authority = std::move(auth);
  result.hub = std::move(hub);
  return result;
}

}  // namespace ctxrank::graph
