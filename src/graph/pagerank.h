// The paper's citation-based prestige core: PageRank restricted to one
// context's citation subgraph, P_{i+1} = (1-d) M^T P_i + E, with the two
// teleport formulations the paper mentions (§3.1).
#ifndef CTXRANK_GRAPH_PAGERANK_H_
#define CTXRANK_GRAPH_PAGERANK_H_

#include <vector>

#include "common/status.h"
#include "graph/citation_graph.h"

namespace ctxrank::graph {

/// Teleport ("hidden citation link") formulation, paper §3.1.
enum class TeleportVariant {
  /// E1 = d: constant teleport mass added to every node.
  kE1Constant,
  /// E2 = (d/N)[1_N]P_i: teleport mass proportional to the current total
  /// score (keeps the vector sum-normalized when P_0 sums to 1).
  kE2Proportional,
};

struct PageRankOptions {
  /// Probability of following a citation (the paper's (1-d) multiplies M^T,
  /// so `d` here is the probability of jumping to a random paper).
  double d = 0.15;
  TeleportVariant teleport = TeleportVariant::kE2Proportional;
  int max_iterations = 100;
  /// L1 convergence threshold.
  double tolerance = 1e-9;
  /// Dangling nodes (no outgoing citations inside the context) donate their
  /// mass uniformly when true; otherwise their mass decays into teleport.
  bool redistribute_dangling = true;
};

struct PageRankResult {
  /// Score per local node id, sum-normalized to 1.
  std::vector<double> scores;
  int iterations = 0;
  bool converged = false;
};

/// Runs PageRank on an induced context subgraph. Returns InvalidArgument
/// for bad options; an empty subgraph yields an empty score vector.
/// Pure over its const inputs (no global or hidden state) — safe to call
/// concurrently on different subgraphs, which the parallel per-context
/// citation-prestige engine relies on.
Result<PageRankResult> ComputePageRank(const InducedSubgraph& subgraph,
                                       const PageRankOptions& options = {});

}  // namespace ctxrank::graph

#endif  // CTXRANK_GRAPH_PAGERANK_H_
