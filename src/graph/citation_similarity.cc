#include "graph/citation_similarity.h"

#include <algorithm>

namespace ctxrank::graph {

namespace {

double SortedJaccard(std::vector<PaperId> x, std::vector<PaperId> y) {
  if (x.empty() || y.empty()) return 0.0;
  std::sort(x.begin(), x.end());
  std::sort(y.begin(), y.end());
  size_t i = 0, j = 0, inter = 0;
  while (i < x.size() && j < y.size()) {
    if (x[i] == y[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (x[i] < y[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t uni = x.size() + y.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace

double BibliographicCoupling(const CitationGraph& graph, PaperId a,
                             PaperId b) {
  return SortedJaccard(graph.OutNeighbors(a), graph.OutNeighbors(b));
}

double CoCitation(const CitationGraph& graph, PaperId a, PaperId b) {
  return SortedJaccard(graph.InNeighbors(a), graph.InNeighbors(b));
}

double CitationSimilarity(const CitationGraph& graph, PaperId a, PaperId b,
                          double bib_weight) {
  return bib_weight * BibliographicCoupling(graph, a, b) +
         (1.0 - bib_weight) * CoCitation(graph, a, b);
}

double NeighborJaccard(std::vector<PaperId> x, std::vector<PaperId> y) {
  return SortedJaccard(std::move(x), std::move(y));
}

double CitationSimilarity(std::vector<PaperId> out_a, std::vector<PaperId> in_a,
                          std::vector<PaperId> out_b, std::vector<PaperId> in_b,
                          double bib_weight) {
  return bib_weight * SortedJaccard(std::move(out_a), std::move(out_b)) +
         (1.0 - bib_weight) * SortedJaccard(std::move(in_a), std::move(in_b));
}

}  // namespace ctxrank::graph
