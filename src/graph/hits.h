// Kleinberg's HITS (paper §3.1 discusses it as the alternative to PageRank;
// prior work found the two highly correlated on literature graphs — our
// ablation bench re-checks that claim on the synthetic corpus).
#ifndef CTXRANK_GRAPH_HITS_H_
#define CTXRANK_GRAPH_HITS_H_

#include <vector>

#include "common/status.h"
#include "graph/citation_graph.h"

namespace ctxrank::graph {

struct HitsOptions {
  int max_iterations = 100;
  double tolerance = 1e-9;
};

struct HitsResult {
  /// L2-normalized authority and hub scores per local node id.
  std::vector<double> authority;
  std::vector<double> hub;
  int iterations = 0;
  bool converged = false;
};

/// Runs HITS on an induced context subgraph. Pure over its const inputs —
/// safe to call concurrently on different subgraphs.
Result<HitsResult> ComputeHits(const InducedSubgraph& subgraph,
                               const HitsOptions& options = {});

}  // namespace ctxrank::graph

#endif  // CTXRANK_GRAPH_HITS_H_
