#include "graph/graph_stats.h"

#include <algorithm>
#include <numeric>

namespace ctxrank::graph {

namespace {

/// Union-find over local ids.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

  size_t SizeOf(size_t x) { return size_[Find(x)]; }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
};

double Gini(std::vector<size_t> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  double cum = 0.0, weighted = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    weighted += static_cast<double>(i + 1) * static_cast<double>(values[i]);
    cum += static_cast<double>(values[i]);
  }
  if (cum == 0.0) return 0.0;
  return (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
}

}  // namespace

SubgraphStats ComputeSubgraphStats(const InducedSubgraph& subgraph) {
  SubgraphStats stats;
  stats.nodes = subgraph.size();
  stats.edges = subgraph.num_edges();
  stats.density = subgraph.Density();
  if (stats.nodes == 0) return stats;

  const auto& adj = subgraph.out_adj();
  std::vector<size_t> in_degree(stats.nodes, 0);
  std::vector<bool> touched(stats.nodes, false);
  DisjointSets components(stats.nodes);
  for (size_t u = 0; u < stats.nodes; ++u) {
    for (uint32_t v : adj[u]) {
      ++in_degree[v];
      touched[u] = touched[v] = true;
      components.Union(u, v);
    }
  }
  size_t isolated = 0, in_sum = 0;
  for (size_t u = 0; u < stats.nodes; ++u) {
    if (!touched[u]) ++isolated;
    in_sum += in_degree[u];
    stats.max_in_degree = std::max(stats.max_in_degree, in_degree[u]);
  }
  stats.isolated_fraction =
      static_cast<double>(isolated) / static_cast<double>(stats.nodes);
  stats.mean_in_degree =
      static_cast<double>(in_sum) / static_cast<double>(stats.nodes);
  // Components.
  std::vector<bool> seen_root(stats.nodes, false);
  for (size_t u = 0; u < stats.nodes; ++u) {
    const size_t root = components.Find(u);
    if (!seen_root[root]) {
      seen_root[root] = true;
      ++stats.weak_components;
      stats.largest_component =
          std::max(stats.largest_component, components.SizeOf(root));
    }
  }
  stats.in_degree_gini = Gini(in_degree);
  return stats;
}

}  // namespace ctxrank::graph
