// Citation-derived paper-pair similarity: bibliographic coupling (Kessler
// 1963) and co-citation (Small 1973), combined per the paper's §3.2
// SimReferences = BibWeight*Sim_bib + (1-BibWeight)*Sim_coc.
#ifndef CTXRANK_GRAPH_CITATION_SIMILARITY_H_
#define CTXRANK_GRAPH_CITATION_SIMILARITY_H_

#include <vector>

#include "graph/citation_graph.h"

namespace ctxrank::graph {

// All three similarities are pure functions over a const graph — safe for
// concurrent callers sharing one CitationGraph (the parallel text-prestige
// engine's reference channel).

/// Bibliographic coupling: Jaccard overlap of the two papers' reference
/// lists (papers citing the same literature are similar). In [0, 1].
double BibliographicCoupling(const CitationGraph& graph, PaperId a, PaperId b);

/// Co-citation: Jaccard overlap of the sets of papers citing a and b
/// (papers cited together are similar). In [0, 1].
double CoCitation(const CitationGraph& graph, PaperId a, PaperId b);

/// SimReferences(a, b) = bib_weight * coupling + (1 - bib_weight) *
/// co-citation. `bib_weight` in [0, 1].
double CitationSimilarity(const CitationGraph& graph, PaperId a, PaperId b,
                          double bib_weight);

/// Jaccard overlap of two neighbor lists (any order; copies and sorts
/// internally, exactly like the graph-backed similarities above).
double NeighborJaccard(std::vector<PaperId> x, std::vector<PaperId> y);

/// List-based SimReferences for callers holding adjacency outside a
/// CitationGraph (a mutable index's merged base+delta view): same
/// floating-point expression as the graph overload.
double CitationSimilarity(std::vector<PaperId> out_a, std::vector<PaperId> in_a,
                          std::vector<PaperId> out_b, std::vector<PaperId> in_b,
                          double bib_weight);

}  // namespace ctxrank::graph

#endif  // CTXRANK_GRAPH_CITATION_SIMILARITY_H_
