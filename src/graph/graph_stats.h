// Structural statistics of citation (sub)graphs: the quantities behind the
// paper's "sparse citation graph" diagnosis — degree distributions, the
// share of isolated papers, weakly connected components, and degree
// concentration.
#ifndef CTXRANK_GRAPH_GRAPH_STATS_H_
#define CTXRANK_GRAPH_GRAPH_STATS_H_

#include <cstddef>
#include <vector>

#include "graph/citation_graph.h"

namespace ctxrank::graph {

struct SubgraphStats {
  size_t nodes = 0;
  size_t edges = 0;
  /// |E| / (n·(n-1)).
  double density = 0.0;
  /// Fraction of nodes with no intra-subgraph edge in either direction.
  double isolated_fraction = 0.0;
  /// Mean / max in-degree.
  double mean_in_degree = 0.0;
  size_t max_in_degree = 0;
  /// Number of weakly connected components (isolated nodes count).
  size_t weak_components = 0;
  /// Size of the largest weakly connected component.
  size_t largest_component = 0;
  /// Gini coefficient of the in-degree distribution (0 = perfectly even,
  /// -> 1 = one hub absorbs everything).
  double in_degree_gini = 0.0;
};

/// Computes all statistics in one pass over the subgraph.
SubgraphStats ComputeSubgraphStats(const InducedSubgraph& subgraph);

}  // namespace ctxrank::graph

#endif  // CTXRANK_GRAPH_GRAPH_STATS_H_
