// Citation graph over the corpus, with forward (references) and reverse
// (cited-by) adjacency, plus induced-subgraph extraction for per-context
// score computation (the paper restricts citation prestige to edges inside
// one context, §3.1).
#ifndef CTXRANK_GRAPH_CITATION_GRAPH_H_
#define CTXRANK_GRAPH_CITATION_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "corpus/corpus.h"

namespace ctxrank::graph {

using corpus::PaperId;

/// \brief Immutable CSR-style citation graph. Node ids are PaperIds.
///
/// Thread-safety: construction is the only mutating phase. Every accessor
/// is const, touches no hidden mutable state, and allocates only locals —
/// any number of threads may read one graph concurrently (the parallel
/// prestige engines build per-context InducedSubgraphs from one shared
/// instance).
class CitationGraph {
 public:
  /// Builds from a corpus (edge p -> q for each q in p's references).
  explicit CitationGraph(const corpus::Corpus& corpus);

  /// Builds from explicit edge lists; `num_nodes` bounds both endpoints.
  CitationGraph(size_t num_nodes,
                const std::vector<std::pair<PaperId, PaperId>>& edges);

  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return out_edges_.size(); }

  /// Papers cited by `p`.
  std::vector<PaperId> OutNeighbors(PaperId p) const;
  /// Papers citing `p`.
  std::vector<PaperId> InNeighbors(PaperId p) const;

  size_t OutDegree(PaperId p) const { return out_offsets_[p + 1] - out_offsets_[p]; }
  size_t InDegree(PaperId p) const { return in_offsets_[p + 1] - in_offsets_[p]; }

  /// All papers reachable from any of `seeds` following citation edges in
  /// either direction, up to `max_hops` hops (excluding the seeds
  /// themselves). Used by the AC-answer-set citation expansion, which the
  /// paper limits to paths of length <= 2.
  std::vector<PaperId> ReachableWithin(const std::vector<PaperId>& seeds,
                                       int max_hops) const;

 private:
  void BuildCsr(const std::vector<std::pair<PaperId, PaperId>>& edges);

  size_t num_nodes_ = 0;
  std::vector<size_t> out_offsets_;
  std::vector<PaperId> out_edges_;
  std::vector<size_t> in_offsets_;
  std::vector<PaperId> in_edges_;
};

/// \brief The citation subgraph induced by a set of papers, with local
/// dense ids [0, n). This is what per-context PageRank runs on.
/// Construction only reads the source graph, so subgraphs for different
/// contexts can be extracted concurrently; after construction the object
/// is immutable like CitationGraph.
class InducedSubgraph {
 public:
  /// `members` must be duplicate-free.
  InducedSubgraph(const CitationGraph& graph,
                  std::span<const PaperId> members);
  InducedSubgraph(const CitationGraph& graph,
                  std::initializer_list<PaperId> members)
      : InducedSubgraph(graph, std::span<const PaperId>(members.begin(),
                                                        members.size())) {}

  size_t size() const { return members_.size(); }
  const std::vector<PaperId>& members() const { return members_; }
  PaperId ToGlobal(size_t local) const { return members_[local]; }

  /// Local out-adjacency (edges whose both endpoints are members).
  const std::vector<std::vector<uint32_t>>& out_adj() const { return out_adj_; }

  size_t num_edges() const { return num_edges_; }

  /// Edge density |E| / (n*(n-1)); 0 for n < 2. The paper's sparseness
  /// argument for citation-score inaccuracy is about exactly this quantity.
  double Density() const;

 private:
  std::vector<PaperId> members_;
  std::vector<std::vector<uint32_t>> out_adj_;
  size_t num_edges_ = 0;
};

}  // namespace ctxrank::graph

#endif  // CTXRANK_GRAPH_CITATION_GRAPH_H_
