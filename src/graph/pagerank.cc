#include "graph/pagerank.h"

#include <cmath>

namespace ctxrank::graph {

Result<PageRankResult> ComputePageRank(const InducedSubgraph& subgraph,
                                       const PageRankOptions& options) {
  if (options.d <= 0.0 || options.d >= 1.0) {
    return Status::InvalidArgument("PageRank d must be in (0, 1)");
  }
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  const size_t n = subgraph.size();
  PageRankResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }
  const auto& adj = subgraph.out_adj();
  const double inv_n = 1.0 / static_cast<double>(n);
  std::vector<double> cur(n, inv_n), next(n, 0.0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling_mass = 0.0;
    for (size_t u = 0; u < n; ++u) {
      if (adj[u].empty()) {
        dangling_mass += cur[u];
        continue;
      }
      // Row-normalized citation matrix M: each out-edge carries 1/outdeg.
      const double share =
          (1.0 - options.d) * cur[u] / static_cast<double>(adj[u].size());
      for (uint32_t v : adj[u]) next[v] += share;
    }
    if (options.redistribute_dangling) {
      const double share = (1.0 - options.d) * dangling_mass * inv_n;
      for (double& x : next) x += share;
    }
    // Teleport term E.
    double total = 0.0;
    for (double x : cur) total += x;
    const double teleport =
        options.teleport == TeleportVariant::kE1Constant
            ? options.d * inv_n       // E1 = d (normalized per node).
            : options.d * total * inv_n;  // E2 = (d/N) * sum(P_i).
    for (double& x : next) x += teleport;
    // Convergence check (L1).
    double delta = 0.0;
    for (size_t i = 0; i < n; ++i) delta += std::fabs(next[i] - cur[i]);
    cur.swap(next);
    result.iterations = iter + 1;
    if (delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  // Sum-normalize so scores are comparable across contexts of different
  // sizes before the per-context min-max normalization downstream.
  double total = 0.0;
  for (double x : cur) total += x;
  if (total > 0.0) {
    for (double& x : cur) x /= total;
  }
  result.scores = std::move(cur);
  return result;
}

}  // namespace ctxrank::graph
