#include "graph/citation_graph.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace ctxrank::graph {

CitationGraph::CitationGraph(const corpus::Corpus& corpus) {
  std::vector<std::pair<PaperId, PaperId>> edges;
  for (const corpus::Paper& p : corpus.papers()) {
    for (PaperId ref : p.references) edges.emplace_back(p.id, ref);
  }
  num_nodes_ = corpus.size();
  BuildCsr(edges);
}

CitationGraph::CitationGraph(
    size_t num_nodes, const std::vector<std::pair<PaperId, PaperId>>& edges)
    : num_nodes_(num_nodes) {
  BuildCsr(edges);
}

void CitationGraph::BuildCsr(
    const std::vector<std::pair<PaperId, PaperId>>& edges) {
  out_offsets_.assign(num_nodes_ + 1, 0);
  in_offsets_.assign(num_nodes_ + 1, 0);
  for (const auto& [src, dst] : edges) {
    ++out_offsets_[src + 1];
    ++in_offsets_[dst + 1];
  }
  for (size_t i = 1; i <= num_nodes_; ++i) {
    out_offsets_[i] += out_offsets_[i - 1];
    in_offsets_[i] += in_offsets_[i - 1];
  }
  out_edges_.resize(edges.size());
  in_edges_.resize(edges.size());
  std::vector<size_t> out_pos(out_offsets_.begin(), out_offsets_.end() - 1);
  std::vector<size_t> in_pos(in_offsets_.begin(), in_offsets_.end() - 1);
  for (const auto& [src, dst] : edges) {
    out_edges_[out_pos[src]++] = dst;
    in_edges_[in_pos[dst]++] = src;
  }
}

std::vector<PaperId> CitationGraph::OutNeighbors(PaperId p) const {
  return {out_edges_.begin() + static_cast<long>(out_offsets_[p]),
          out_edges_.begin() + static_cast<long>(out_offsets_[p + 1])};
}

std::vector<PaperId> CitationGraph::InNeighbors(PaperId p) const {
  return {in_edges_.begin() + static_cast<long>(in_offsets_[p]),
          in_edges_.begin() + static_cast<long>(in_offsets_[p + 1])};
}

std::vector<PaperId> CitationGraph::ReachableWithin(
    const std::vector<PaperId>& seeds, int max_hops) const {
  std::vector<int> dist(num_nodes_, -1);
  std::deque<PaperId> queue;
  for (PaperId s : seeds) {
    if (s < num_nodes_ && dist[s] < 0) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  std::vector<PaperId> out;
  while (!queue.empty()) {
    const PaperId u = queue.front();
    queue.pop_front();
    if (dist[u] >= max_hops) continue;
    auto visit = [&](PaperId v) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        out.push_back(v);
        queue.push_back(v);
      }
    };
    for (size_t i = out_offsets_[u]; i < out_offsets_[u + 1]; ++i) {
      visit(out_edges_[i]);
    }
    for (size_t i = in_offsets_[u]; i < in_offsets_[u + 1]; ++i) {
      visit(in_edges_[i]);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

InducedSubgraph::InducedSubgraph(const CitationGraph& graph,
                                 std::span<const PaperId> members)
    : members_(members.begin(), members.end()) {
  std::sort(members_.begin(), members_.end());
  std::unordered_map<PaperId, uint32_t> local;
  local.reserve(members_.size());
  for (uint32_t i = 0; i < members_.size(); ++i) local.emplace(members_[i], i);
  out_adj_.resize(members_.size());
  for (uint32_t i = 0; i < members_.size(); ++i) {
    for (PaperId dst : graph.OutNeighbors(members_[i])) {
      auto it = local.find(dst);
      if (it != local.end()) {
        out_adj_[i].push_back(it->second);
        ++num_edges_;
      }
    }
  }
}

double InducedSubgraph::Density() const {
  const size_t n = members_.size();
  if (n < 2) return 0.0;
  return static_cast<double>(num_edges_) /
         (static_cast<double>(n) * static_cast<double>(n - 1));
}

}  // namespace ctxrank::graph
