// Inverted index with TF-IDF postings for ranked retrieval.
#ifndef CTXRANK_TEXT_INVERTED_INDEX_H_
#define CTXRANK_TEXT_INVERTED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "text/sparse_vector.h"
#include "text/vocabulary.h"

namespace ctxrank::text {

using DocId = uint32_t;

struct ScoredDoc {
  DocId doc;
  double score;
};

/// \brief Term -> (doc, weight) postings built from normalized document
/// vectors. Because both document vectors and queries are L2-normalized,
/// the accumulated dot product equals cosine similarity.
///
/// Postings either grow on the heap via Add (owned mode) or view a flat
/// CSR layout owned elsewhere (FromView — the serving snapshot seam);
/// queries behave identically in both modes.
class InvertedIndex {
 public:
  struct Posting {
    DocId doc;
    double weight;
  };
  // Snapshot record layout (u32 doc, 4 bytes zero padding, f64 weight LE).
  static_assert(sizeof(Posting) == 16, "Posting must be a 16-byte record");
  static_assert(alignof(Posting) == 8, "Posting must be 8-byte aligned");

  InvertedIndex() = default;

  /// Wraps a frozen CSR postings layout owned elsewhere: `offsets` has
  /// num_terms + 1 entries indexing into `postings`. Add must not be
  /// called on the result.
  static InvertedIndex FromView(std::span<const uint64_t> offsets,
                                std::span<const Posting> postings,
                                size_t num_documents);

  /// Adds a document with the given external id. Ids may be sparse but
  /// postings memory is proportional to nnz only. Owned mode only.
  void Add(DocId doc, const SparseVector& vec);

  /// Documents scoring >= `min_score` against `query`, sorted by descending
  /// score (ties broken by ascending doc id for determinism).
  std::vector<ScoredDoc> Search(const SparseVector& query,
                                double min_score) const;

  /// Top `k` documents (after threshold filtering with `min_score`).
  std::vector<ScoredDoc> SearchTopK(const SparseVector& query, size_t k,
                                    double min_score = 0.0) const;

  size_t num_documents() const { return num_documents_; }

 private:
  /// Postings of `term` regardless of storage mode.
  std::span<const Posting> ListOf(TermId term) const {
    if (view_mode_) {
      if (term + 1 >= view_offsets_.size()) return {};
      return view_postings_.subspan(
          view_offsets_[term], view_offsets_[term + 1] - view_offsets_[term]);
    }
    if (term >= postings_.size()) return {};
    return postings_[term];
  }

  std::vector<std::vector<Posting>> postings_;  // Indexed by term id.
  size_t num_documents_ = 0;
  // View mode (snapshot-backed).
  bool view_mode_ = false;
  std::span<const uint64_t> view_offsets_;
  std::span<const Posting> view_postings_;
};

}  // namespace ctxrank::text

#endif  // CTXRANK_TEXT_INVERTED_INDEX_H_
