// Inverted index with TF-IDF postings for ranked retrieval.
#ifndef CTXRANK_TEXT_INVERTED_INDEX_H_
#define CTXRANK_TEXT_INVERTED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "text/sparse_vector.h"
#include "text/vocabulary.h"

namespace ctxrank::text {

using DocId = uint32_t;

struct ScoredDoc {
  DocId doc;
  double score;
};

/// \brief Term -> (doc, weight) postings built from normalized document
/// vectors. Because both document vectors and queries are L2-normalized,
/// the accumulated dot product equals cosine similarity.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Adds a document with the given external id. Ids may be sparse but
  /// postings memory is proportional to nnz only.
  void Add(DocId doc, const SparseVector& vec);

  /// Documents scoring >= `min_score` against `query`, sorted by descending
  /// score (ties broken by ascending doc id for determinism).
  std::vector<ScoredDoc> Search(const SparseVector& query,
                                double min_score) const;

  /// Top `k` documents (after threshold filtering with `min_score`).
  std::vector<ScoredDoc> SearchTopK(const SparseVector& query, size_t k,
                                    double min_score = 0.0) const;

  size_t num_documents() const { return num_documents_; }

 private:
  struct Posting {
    DocId doc;
    double weight;
  };
  std::vector<std::vector<Posting>> postings_;  // Indexed by term id.
  size_t num_documents_ = 0;
};

}  // namespace ctxrank::text

#endif  // CTXRANK_TEXT_INVERTED_INDEX_H_
