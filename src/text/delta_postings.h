// Append-only postings over a delta segment's document vectors. The
// mutable index (serve::MutableIndex) scores live-ingested papers through
// this structure instead of rebuilding an ImpactOrderedIndex per ingest:
// Add is O(nnz), and DotAll/CosineAll accumulate per-document products in
// the same ascending-term order SparseVector::Dot walks, so every score is
// bitwise identical to q.Dot / q.Cosine against the stored vector.
#ifndef CTXRANK_TEXT_DELTA_POSTINGS_H_
#define CTXRANK_TEXT_DELTA_POSTINGS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "text/sparse_vector.h"

namespace ctxrank::text {

/// \brief Term -> (local doc, weight) postings over appended sparse
/// vectors. Construction-then-read like every serving structure: Add all
/// documents, then query from any thread.
class DeltaPostings {
 public:
  /// Appends `vec` as local document `size()`; returns its index.
  size_t Add(const SparseVector& vec);

  size_t size() const { return norms_.size(); }

  /// L2 norm of document `doc`'s vector (SparseVector::Norm at Add time).
  double norm(size_t doc) const { return norms_[doc]; }

  /// Raw dot product of `q` against every document. Per document the
  /// accumulation order (ascending term, acc += q_w * d_w) matches
  /// SparseVector::Dot exactly, so slot i == q.Dot(doc_i) bitwise.
  std::vector<double> DotAll(const SparseVector& q) const;

  /// Cosine per document: dot / (|q| * |doc|), 0 when either norm is <= 0
  /// — slot i == q.Cosine(doc_i) bitwise.
  std::vector<double> CosineAll(const SparseVector& q) const;

 private:
  struct Posting {
    uint32_t doc;
    double weight;
  };
  std::unordered_map<TermId, std::vector<Posting>> postings_;
  std::vector<double> norms_;
};

}  // namespace ctxrank::text

#endif  // CTXRANK_TEXT_DELTA_POSTINGS_H_
