#include "text/porter_stemmer.h"

#include <array>

namespace ctxrank::text {

namespace {

// Implementation closely follows Porter's original description. The word is
// held in a mutable buffer `b` with logical end `k` (inclusive index of last
// character), mirroring the reference implementation's structure.
class Stemmer {
 public:
  explicit Stemmer(std::string_view word) : b_(word), k_(word.size() - 1) {}

  std::string Run() {
    if (b_.size() <= 2) return b_;
    Step1ab();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    return b_.substr(0, k_ + 1);
  }

 private:
  bool IsConsonant(size_t i) const {
    switch (b_[i]) {
      case 'a': case 'e': case 'i': case 'o': case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  // Measure of the stem b_[0..j]: number of VC sequences.
  int Measure(size_t j) const {
    int n = 0;
    size_t i = 0;
    while (true) {
      if (i > j) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  bool VowelInStem(size_t j) const {
    for (size_t i = 0; i <= j; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  bool DoubleConsonant(size_t j) const {
    if (j < 1) return false;
    if (b_[j] != b_[j - 1]) return false;
    return IsConsonant(j);
  }

  // cvc at i-2..i, where the final c is not w, x or y.
  bool Cvc(size_t i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) || !IsConsonant(i - 2)) {
      return false;
    }
    const char ch = b_[i];
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  bool EndsWith(std::string_view suffix) {
    const size_t len = suffix.size();
    if (len > k_ + 1) return false;
    if (b_.compare(k_ + 1 - len, len, suffix) != 0) return false;
    j_ = k_ - len;  // May wrap when suffix == whole word; guarded by callers
                    // via Measure(j_) which only runs when j_ is valid.
    return len <= k_;  // Require a non-empty stem remainder.
  }

  void SetTo(std::string_view s) {
    b_.resize(j_ + 1);
    b_.append(s);
    k_ = b_.size() - 1;
  }

  void ReplaceSuffix(std::string_view s) {
    if (Measure(j_) > 0) SetTo(s);
  }

  // Step 1ab: plurals and -ed/-ing.
  void Step1ab() {
    if (b_[k_] == 's') {
      if (EndsWith("sses")) {
        k_ -= 2;
      } else if (EndsWith("ies")) {
        SetTo("i");
      } else if (k_ >= 1 && b_[k_ - 1] != 's') {
        --k_;
      }
    }
    if (EndsWith("eed")) {
      if (Measure(j_) > 0) --k_;
    } else if ((EndsWith("ed") || EndsWith("ing")) && VowelInStem(j_)) {
      k_ = j_;
      b_.resize(k_ + 1);
      if (EndsWith("at")) {
        SetTo("ate");
      } else if (EndsWith("bl")) {
        SetTo("ble");
      } else if (EndsWith("iz")) {
        SetTo("ize");
      } else if (DoubleConsonant(k_)) {
        const char ch = b_[k_];
        if (ch != 'l' && ch != 's' && ch != 'z') {
          --k_;
          b_.resize(k_ + 1);
        }
      } else if (Measure(k_) == 1 && Cvc(k_)) {
        j_ = k_;
        SetTo("e");
      }
    }
    b_.resize(k_ + 1);
  }

  // Step 1c: y -> i when there is another vowel in the stem.
  void Step1c() {
    if (b_[k_] == 'y' && k_ >= 1 && VowelInStem(k_ - 1)) b_[k_] = 'i';
  }

  // Step 2: double suffices mapped to single ones when m > 0.
  void Step2() {
    struct Rule { std::string_view from, to; };
    static constexpr std::array<Rule, 21> kRules = {{
        {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
        {"anci", "ance"},   {"izer", "ize"},    {"abli", "able"},
        {"alli", "al"},     {"entli", "ent"},   {"eli", "e"},
        {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
        {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"},
        {"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
        {"iviti", "ive"},   {"biliti", "ble"},  {"logi", "log"},
    }};
    for (const Rule& r : kRules) {
      if (EndsWith(r.from)) {
        ReplaceSuffix(r.to);
        return;
      }
    }
  }

  // Step 3: -icate, -ful, -ness etc.
  void Step3() {
    struct Rule { std::string_view from, to; };
    static constexpr std::array<Rule, 7> kRules = {{
        {"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
        {"ical", "ic"},  {"ful", ""},   {"ness", ""},
    }};
    for (const Rule& r : kRules) {
      if (EndsWith(r.from)) {
        ReplaceSuffix(r.to);
        return;
      }
    }
  }

  // Step 4: drop -ant, -ence, etc. when m > 1.
  void Step4() {
    static constexpr std::array<std::string_view, 19> kSuffixes = {
        "al",   "ance", "ence", "er",   "ic",   "able", "ible",
        "ant",  "ement","ment", "ent",  "ou",   "ism",  "ate",
        "iti",  "ous",  "ive",  "ize",  "ion",
    };
    for (std::string_view s : kSuffixes) {
      if (EndsWith(s)) {
        if (s == "ion") {
          // -ion only drops after s or t.
          if (!(j_ + 1 >= 1 && (b_[j_] == 's' || b_[j_] == 't'))) continue;
        }
        if (Measure(j_) > 1) {
          k_ = j_;
          b_.resize(k_ + 1);
        }
        return;
      }
    }
  }

  // Step 5: remove final -e and reduce -ll when m > 1.
  void Step5() {
    j_ = k_;
    if (b_[k_] == 'e') {
      const int a = Measure(k_ - 1 <= k_ ? k_ - 1 : 0);
      if (a > 1 || (a == 1 && !Cvc(k_ - 1))) {
        --k_;
        b_.resize(k_ + 1);
      }
    }
    if (b_[k_] == 'l' && DoubleConsonant(k_) && Measure(k_) > 1) {
      --k_;
      b_.resize(k_ + 1);
    }
  }

  std::string b_;
  size_t k_;       // Index of last character.
  size_t j_ = 0;   // Index of last character of the stem before a suffix.
};

}  // namespace

std::string PorterStem(std::string_view word) {
  if (word.size() <= 2) return std::string(word);
  return Stemmer(word).Run();
}

}  // namespace ctxrank::text
