// Sparse term-weight vectors: the unit of all text similarity computation.
#ifndef CTXRANK_TEXT_SPARSE_VECTOR_H_
#define CTXRANK_TEXT_SPARSE_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/array_view.h"
#include "text/vocabulary.h"

namespace ctxrank::text {

/// \brief Immutable-ish sparse vector stored as (term id, weight) pairs
/// sorted by term id. Dot products and cosines run in O(nnz1 + nnz2).
///
/// Storage is either heap-owned or a view over external storage (the
/// serving snapshot's mmap'd forward-vector section — see
/// common/array_view.h). Mutating a view-backed vector first materializes
/// an owned copy, so the API stays uniform.
class SparseVector {
 public:
  struct Entry {
    TermId term;
    double weight;
  };
  // The snapshot stores entries as 16-byte records (u32 term, 4 bytes of
  // zero padding, f64 weight, little-endian) and reinterprets them as
  // Entry on load; these assertions pin the in-memory layout it relies on.
  static_assert(sizeof(Entry) == 16, "Entry must be a 16-byte record");
  static_assert(alignof(Entry) == 8, "Entry must be 8-byte aligned");

  SparseVector() = default;

  /// Builds from possibly-unsorted, possibly-duplicated entries; duplicate
  /// term ids are summed, zero weights dropped.
  static SparseVector FromUnsorted(std::vector<Entry> entries);

  /// Builds from term counts keyed by id.
  static SparseVector FromCounts(const std::vector<std::pair<TermId, double>>& counts);

  /// Wraps entries owned elsewhere (must stay alive and already be sorted
  /// by term id, duplicate- and zero-free — the snapshot writer guarantees
  /// this because it serializes vectors that already held the invariant).
  static SparseVector FromView(std::span<const Entry> entries);

  std::span<const Entry> entries() const { return entries_.span(); }
  size_t nnz() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Weight of `term`, 0 if absent. O(log nnz).
  double WeightOf(TermId term) const;

  double Dot(const SparseVector& other) const;
  double Norm() const;

  /// Cosine similarity; 0 if either vector has zero norm.
  double Cosine(const SparseVector& other) const;

  /// Scales all weights in place.
  void Scale(double factor);

  /// Normalizes to unit L2 norm in place (no-op on the zero vector).
  void L2Normalize();

  /// Accumulates `other * factor` into this vector (used for centroids).
  void AddScaled(const SparseVector& other, double factor);

 private:
  /// Copies viewed storage into owned storage so mutation is safe.
  std::vector<Entry>& MutableEntries();

  VecOrSpan<Entry> entries_;
};

}  // namespace ctxrank::text

#endif  // CTXRANK_TEXT_SPARSE_VECTOR_H_
