// Sparse term-weight vectors: the unit of all text similarity computation.
#ifndef CTXRANK_TEXT_SPARSE_VECTOR_H_
#define CTXRANK_TEXT_SPARSE_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "text/vocabulary.h"

namespace ctxrank::text {

/// \brief Immutable-ish sparse vector stored as (term id, weight) pairs
/// sorted by term id. Dot products and cosines run in O(nnz1 + nnz2).
class SparseVector {
 public:
  struct Entry {
    TermId term;
    double weight;
  };

  SparseVector() = default;

  /// Builds from possibly-unsorted, possibly-duplicated entries; duplicate
  /// term ids are summed, zero weights dropped.
  static SparseVector FromUnsorted(std::vector<Entry> entries);

  /// Builds from term counts keyed by id.
  static SparseVector FromCounts(const std::vector<std::pair<TermId, double>>& counts);

  const std::vector<Entry>& entries() const { return entries_; }
  size_t nnz() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Weight of `term`, 0 if absent. O(log nnz).
  double WeightOf(TermId term) const;

  double Dot(const SparseVector& other) const;
  double Norm() const;

  /// Cosine similarity; 0 if either vector has zero norm.
  double Cosine(const SparseVector& other) const;

  /// Scales all weights in place.
  void Scale(double factor);

  /// Normalizes to unit L2 norm in place (no-op on the zero vector).
  void L2Normalize();

  /// Accumulates `other * factor` into this vector (used for centroids).
  void AddScaled(const SparseVector& other, double factor);

 private:
  std::vector<Entry> entries_;
};

}  // namespace ctxrank::text

#endif  // CTXRANK_TEXT_SPARSE_VECTOR_H_
