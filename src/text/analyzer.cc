#include "text/analyzer.h"

#include "text/porter_stemmer.h"
#include "text/stopwords.h"

namespace ctxrank::text {

Analyzer::Analyzer(AnalyzerOptions options)
    : tokenizer_(options.tokenizer), options_(options) {}

std::vector<std::string> Analyzer::Analyze(std::string_view str) const {
  std::vector<std::string> out;
  for (std::string& token : tokenizer_.Tokenize(str)) {
    if (options_.remove_stopwords && IsStopword(token)) continue;
    out.push_back(options_.stem ? PorterStem(token) : std::move(token));
  }
  return out;
}

std::vector<TermId> Analyzer::AnalyzeToIds(std::string_view str,
                                           Vocabulary& vocab) const {
  std::vector<TermId> ids;
  for (const std::string& token : Analyze(str)) {
    ids.push_back(vocab.GetOrAdd(token));
  }
  return ids;
}

std::vector<TermId> Analyzer::AnalyzeToKnownIds(
    std::string_view str, const Vocabulary& vocab) const {
  std::vector<TermId> ids;
  for (const std::string& token : Analyze(str)) {
    const TermId id = vocab.Lookup(token);
    if (id != kInvalidTermId) ids.push_back(id);
  }
  return ids;
}

}  // namespace ctxrank::text
