#include "text/analyzer.h"

#include "text/porter_stemmer.h"
#include "text/stopwords.h"

namespace ctxrank::text {

Analyzer::Analyzer(AnalyzerOptions options)
    : tokenizer_(options.tokenizer), options_(options) {}

std::vector<std::string> Analyzer::Analyze(std::string_view str) const {
  std::vector<std::string> out;
  tokenizer_.ForEachToken(str, [&](const std::string& token) {
    if (options_.remove_stopwords && IsStopword(token)) return;
    out.push_back(options_.stem ? PorterStem(token) : token);
  });
  return out;
}

std::vector<TermId> Analyzer::AnalyzeToIds(std::string_view str,
                                           Vocabulary& vocab) const {
  std::vector<TermId> ids;
  for (const std::string& token : Analyze(str)) {
    ids.push_back(vocab.GetOrAdd(token));
  }
  return ids;
}

std::vector<TermId> Analyzer::AnalyzeToKnownIds(
    std::string_view str, const Vocabulary& vocab) const {
  // Fused tokenize -> stopword -> stem -> lookup pipeline: no intermediate
  // token vectors on the per-query hot path. Ids are identical to mapping
  // Analyze(str) through vocab.Lookup.
  std::vector<TermId> ids;
  tokenizer_.ForEachToken(str, [&](const std::string& token) {
    if (options_.remove_stopwords && IsStopword(token)) return;
    const TermId id =
        vocab.Lookup(options_.stem ? PorterStem(token) : token);
    if (id != kInvalidTermId) ids.push_back(id);
  });
  return ids;
}

}  // namespace ctxrank::text
