#include "text/sparse_vector.h"

#include <algorithm>
#include <cmath>

namespace ctxrank::text {

SparseVector SparseVector::FromUnsorted(std::vector<Entry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.term < b.term; });
  SparseVector v;
  v.entries_.reserve(entries.size());
  for (const Entry& e : entries) {
    if (!v.entries_.empty() && v.entries_.back().term == e.term) {
      v.entries_.back().weight += e.weight;
    } else {
      v.entries_.push_back(e);
    }
  }
  std::erase_if(v.entries_, [](const Entry& e) { return e.weight == 0.0; });
  return v;
}

SparseVector SparseVector::FromCounts(
    const std::vector<std::pair<TermId, double>>& counts) {
  std::vector<Entry> entries;
  entries.reserve(counts.size());
  for (const auto& [term, count] : counts) entries.push_back({term, count});
  return FromUnsorted(std::move(entries));
}

double SparseVector::WeightOf(TermId term) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), term,
      [](const Entry& e, TermId t) { return e.term < t; });
  if (it != entries_.end() && it->term == term) return it->weight;
  return 0.0;
}

double SparseVector::Dot(const SparseVector& other) const {
  double acc = 0.0;
  size_t i = 0, j = 0;
  while (i < entries_.size() && j < other.entries_.size()) {
    const TermId a = entries_[i].term, b = other.entries_[j].term;
    if (a == b) {
      acc += entries_[i].weight * other.entries_[j].weight;
      ++i;
      ++j;
    } else if (a < b) {
      ++i;
    } else {
      ++j;
    }
  }
  return acc;
}

double SparseVector::Norm() const {
  double acc = 0.0;
  for (const Entry& e : entries_) acc += e.weight * e.weight;
  return std::sqrt(acc);
}

double SparseVector::Cosine(const SparseVector& other) const {
  const double n1 = Norm(), n2 = other.Norm();
  if (n1 <= 0.0 || n2 <= 0.0) return 0.0;
  return Dot(other) / (n1 * n2);
}

void SparseVector::Scale(double factor) {
  for (Entry& e : entries_) e.weight *= factor;
}

void SparseVector::L2Normalize() {
  const double n = Norm();
  if (n > 0.0) Scale(1.0 / n);
}

void SparseVector::AddScaled(const SparseVector& other, double factor) {
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  size_t i = 0, j = 0;
  while (i < entries_.size() || j < other.entries_.size()) {
    if (j >= other.entries_.size() ||
        (i < entries_.size() && entries_[i].term < other.entries_[j].term)) {
      merged.push_back(entries_[i++]);
    } else if (i >= entries_.size() ||
               other.entries_[j].term < entries_[i].term) {
      merged.push_back({other.entries_[j].term,
                        other.entries_[j].weight * factor});
      ++j;
    } else {
      merged.push_back({entries_[i].term,
                        entries_[i].weight + other.entries_[j].weight * factor});
      ++i;
      ++j;
    }
  }
  entries_ = std::move(merged);
}

}  // namespace ctxrank::text
