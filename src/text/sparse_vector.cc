#include "text/sparse_vector.h"

#include <algorithm>
#include <cmath>

namespace ctxrank::text {

SparseVector SparseVector::FromUnsorted(std::vector<Entry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.term < b.term; });
  std::vector<Entry> merged;
  merged.reserve(entries.size());
  for (const Entry& e : entries) {
    if (!merged.empty() && merged.back().term == e.term) {
      merged.back().weight += e.weight;
    } else {
      merged.push_back(e);
    }
  }
  std::erase_if(merged, [](const Entry& e) { return e.weight == 0.0; });
  SparseVector v;
  v.entries_.SetOwned(std::move(merged));
  return v;
}

SparseVector SparseVector::FromCounts(
    const std::vector<std::pair<TermId, double>>& counts) {
  std::vector<Entry> entries;
  entries.reserve(counts.size());
  for (const auto& [term, count] : counts) entries.push_back({term, count});
  return FromUnsorted(std::move(entries));
}

SparseVector SparseVector::FromView(std::span<const Entry> entries) {
  SparseVector v;
  v.entries_.SetView(entries);
  return v;
}

std::vector<SparseVector::Entry>& SparseVector::MutableEntries() {
  if (!entries_.owning()) {
    const std::span<const Entry> view = entries_.span();
    entries_.SetOwned(std::vector<Entry>(view.begin(), view.end()));
  }
  return entries_.mutable_vector();
}

double SparseVector::WeightOf(TermId term) const {
  const std::span<const Entry> entries = entries_.span();
  auto it = std::lower_bound(
      entries.begin(), entries.end(), term,
      [](const Entry& e, TermId t) { return e.term < t; });
  if (it != entries.end() && it->term == term) return it->weight;
  return 0.0;
}

double SparseVector::Dot(const SparseVector& other) const {
  const std::span<const Entry> a = entries_.span();
  const std::span<const Entry> b = other.entries_.span();
  double acc = 0.0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const TermId ta = a[i].term, tb = b[j].term;
    if (ta == tb) {
      acc += a[i].weight * b[j].weight;
      ++i;
      ++j;
    } else if (ta < tb) {
      ++i;
    } else {
      ++j;
    }
  }
  return acc;
}

double SparseVector::Norm() const {
  double acc = 0.0;
  for (const Entry& e : entries_.span()) acc += e.weight * e.weight;
  return std::sqrt(acc);
}

double SparseVector::Cosine(const SparseVector& other) const {
  const double n1 = Norm(), n2 = other.Norm();
  if (n1 <= 0.0 || n2 <= 0.0) return 0.0;
  return Dot(other) / (n1 * n2);
}

void SparseVector::Scale(double factor) {
  for (Entry& e : MutableEntries()) e.weight *= factor;
  entries_.SyncView();
}

void SparseVector::L2Normalize() {
  const double n = Norm();
  if (n > 0.0) Scale(1.0 / n);
}

void SparseVector::AddScaled(const SparseVector& other, double factor) {
  const std::span<const Entry> a = entries_.span();
  const std::span<const Entry> b = other.entries();
  std::vector<Entry> merged;
  merged.reserve(a.size() + b.size());
  size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (j >= b.size() || (i < a.size() && a[i].term < b[j].term)) {
      merged.push_back(a[i++]);
    } else if (i >= a.size() || b[j].term < a[i].term) {
      merged.push_back({b[j].term, b[j].weight * factor});
      ++j;
    } else {
      merged.push_back({a[i].term, a[i].weight + b[j].weight * factor});
      ++i;
      ++j;
    }
  }
  entries_.SetOwned(std::move(merged));
}

}  // namespace ctxrank::text
