#include "text/bm25.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace ctxrank::text {

Bm25Index::Bm25Index(Bm25Options options) : options_(options) {}

void Bm25Index::Add(DocId doc, std::span<const TermId> terms) {
  const uint32_t dense = static_cast<uint32_t>(doc_len_.size());
  doc_len_.push_back(static_cast<uint32_t>(terms.size()));
  doc_ids_.push_back(doc);
  if (doc >= doc_index_of_.size()) doc_index_of_.resize(doc + 1, 0);
  doc_index_of_[doc] = dense + 1;
  std::unordered_map<TermId, uint32_t> tf;
  for (TermId t : terms) ++tf[t];
  for (const auto& [term, count] : tf) {
    if (term >= postings_.size()) postings_.resize(term + 1);
    postings_[term].push_back({doc, count});
  }
  finalized_ = false;
}

void Bm25Index::Finalize() {
  double total = 0.0;
  for (uint32_t len : doc_len_) total += len;
  avg_len_ = doc_len_.empty()
                 ? 0.0
                 : total / static_cast<double>(doc_len_.size());
  // Score() binary-searches postings by doc id; Add() order is arbitrary.
  for (auto& list : postings_) {
    std::sort(list.begin(), list.end(),
              [](const Posting& a, const Posting& b) { return a.doc < b.doc; });
  }
  finalized_ = true;
}

double Bm25Index::TermDocScore(TermId term, uint32_t tf, DocId doc) const {
  const double n = static_cast<double>(doc_len_.size());
  const double df = static_cast<double>(postings_[term].size());
  // Lucene-style idf: log(1 + (n - df + 0.5)/(df + 0.5)) — strictly
  // positive, so very common terms still contribute (a little) instead of
  // vanishing, which matters in small corpora.
  const double idf = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
  const double len = static_cast<double>(
      doc_len_[doc_index_of_[doc] - 1]);
  const double denom =
      tf + options_.k1 *
               (1.0 - options_.b + options_.b * len / std::max(1.0, avg_len_));
  return idf * (tf * (options_.k1 + 1.0)) / denom;
}

std::vector<ScoredDoc> Bm25Index::Search(const std::vector<TermId>& query,
                                         double min_score) const {
  std::vector<ScoredDoc> out;
  if (!finalized_) return out;
  std::unordered_map<DocId, double> acc;
  for (TermId term : query) {
    if (term >= postings_.size()) continue;
    for (const Posting& p : postings_[term]) {
      acc[p.doc] += TermDocScore(term, p.tf, p.doc);
    }
  }
  out.reserve(acc.size());
  for (const auto& [doc, score] : acc) {
    if (score > min_score) out.push_back({doc, score});
  }
  std::sort(out.begin(), out.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  return out;
}

double Bm25Index::Score(const std::vector<TermId>& query, DocId doc) const {
  if (!finalized_ || doc >= doc_index_of_.size() || doc_index_of_[doc] == 0) {
    return 0.0;
  }
  double score = 0.0;
  for (TermId term : query) {
    if (term >= postings_.size()) continue;
    const auto& list = postings_[term];
    const auto it = std::lower_bound(
        list.begin(), list.end(), doc,
        [](const Posting& p, DocId d) { return p.doc < d; });
    if (it != list.end() && it->doc == doc) {
      score += TermDocScore(term, it->tf, doc);
    }
  }
  return score;
}

}  // namespace ctxrank::text
