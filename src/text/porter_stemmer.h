// Porter stemming algorithm (M.F. Porter, 1980), the classic suffix-stripping
// stemmer used by the TF-IDF model of Salton's "Automatic Text Processing"
// lineage the paper builds on.
#ifndef CTXRANK_TEXT_PORTER_STEMMER_H_
#define CTXRANK_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace ctxrank::text {

/// Returns the Porter stem of `word`. `word` must be lower-case ASCII;
/// words shorter than 3 characters are returned unchanged (per the original
/// algorithm's guard).
std::string PorterStem(std::string_view word);

}  // namespace ctxrank::text

#endif  // CTXRANK_TEXT_PORTER_STEMMER_H_
