// TF-IDF weighting (Salton's "Automatic Text Processing" model, the paper's
// reference [6]): weight = (1 + log tf) * log(N / df), L2-normalized.
#ifndef CTXRANK_TEXT_TFIDF_H_
#define CTXRANK_TEXT_TFIDF_H_

#include <vector>

#include "text/sparse_vector.h"
#include "text/vocabulary.h"

namespace ctxrank::text {

/// \brief Document-frequency model fit over a corpus of term-id documents;
/// transforms documents and queries into normalized TF-IDF vectors.
class TfIdfModel {
 public:
  TfIdfModel() = default;

  /// Counts document frequencies. Each inner vector is one document's term
  /// ids (with repetitions). `vocab_size` must cover every id present.
  void Fit(const std::vector<std::vector<TermId>>& documents,
           size_t vocab_size);

  /// Incremental alternative to Fit: register documents one at a time, then
  /// call FinishFit(). Useful when the corpus does not fit a single vector.
  void AddDocument(const std::vector<TermId>& doc_terms, size_t vocab_size);
  void FinishFit() {}  // Present for API symmetry; df counting is online.

  /// TF-IDF vector for a document, L2-normalized ("ltc" weighting).
  /// Terms with df == 0 (never seen in Fit) are ignored.
  SparseVector Transform(const std::vector<TermId>& doc_terms) const;

  /// Same weighting applied to a query.
  SparseVector TransformQuery(const std::vector<TermId>& query_terms) const {
    return Transform(query_terms);
  }

  size_t num_documents() const { return num_documents_; }
  size_t DocumentFrequency(TermId term) const {
    return term < df_.size() ? df_[term] : 0;
  }

  /// log(N / df) for `term`; 0 for unseen terms.
  double Idf(TermId term) const;

 private:
  std::vector<uint32_t> df_;
  size_t num_documents_ = 0;
};

}  // namespace ctxrank::text

#endif  // CTXRANK_TEXT_TFIDF_H_
