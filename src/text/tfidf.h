// TF-IDF weighting (Salton's "Automatic Text Processing" model, the paper's
// reference [6]): weight = (1 + log tf) * log(N / df), L2-normalized.
#ifndef CTXRANK_TEXT_TFIDF_H_
#define CTXRANK_TEXT_TFIDF_H_

#include <initializer_list>
#include <span>
#include <vector>

#include "common/array_view.h"
#include "text/sparse_vector.h"
#include "text/vocabulary.h"

namespace ctxrank::text {

/// \brief Document-frequency model fit over a corpus of term-id documents;
/// transforms documents and queries into normalized TF-IDF vectors.
/// The document-frequency table either lives on the heap (Fit/AddDocument)
/// or views snapshot storage (FromView); transform behavior is identical.
class TfIdfModel {
 public:
  TfIdfModel() = default;

  /// Wraps a frozen df table owned elsewhere (snapshot storage). Fit and
  /// AddDocument must not be called on the result.
  static TfIdfModel FromView(std::span<const uint32_t> df,
                             size_t num_documents);

  /// Counts document frequencies. Each inner vector is one document's term
  /// ids (with repetitions). `vocab_size` must cover every id present.
  void Fit(const std::vector<std::vector<TermId>>& documents,
           size_t vocab_size);

  /// Incremental alternative to Fit: register documents one at a time, then
  /// call FinishFit(). Useful when the corpus does not fit a single vector.
  void AddDocument(std::span<const TermId> doc_terms, size_t vocab_size);
  void FinishFit() {}  // Present for API symmetry; df counting is online.

  /// TF-IDF vector for a document, L2-normalized ("ltc" weighting).
  /// Terms with df == 0 (never seen in Fit) are ignored.
  SparseVector Transform(std::span<const TermId> doc_terms) const;

  SparseVector Transform(std::initializer_list<TermId> doc_terms) const {
    return Transform(std::span<const TermId>(doc_terms.begin(),
                                             doc_terms.size()));
  }

  /// Same weighting applied to a query.
  SparseVector TransformQuery(std::span<const TermId> query_terms) const {
    return Transform(query_terms);
  }

  size_t num_documents() const { return num_documents_; }
  size_t DocumentFrequency(TermId term) const {
    return term < df_.size() ? df_[term] : 0;
  }

  /// log(N / df) for `term`; 0 for unseen terms.
  double Idf(TermId term) const;

 private:
  VecOrSpan<uint32_t> df_;
  size_t num_documents_ = 0;
};

}  // namespace ctxrank::text

#endif  // CTXRANK_TEXT_TFIDF_H_
