// Locale-independent word tokenizer for English scientific text.
#ifndef CTXRANK_TEXT_TOKENIZER_H_
#define CTXRANK_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace ctxrank::text {

struct TokenizerOptions {
  /// Drop tokens shorter than this many characters.
  size_t min_token_length = 2;
  /// Drop tokens that consist only of digits.
  bool drop_numeric = true;
  /// Lower-case all tokens.
  bool lowercase = true;
};

/// \brief Splits text into word tokens. A token is a maximal run of ASCII
/// letters/digits; hyphens and apostrophes inside a word are treated as
/// separators ("gene-ontology" -> "gene", "ontology"), matching the
/// bag-of-words treatment in the paper's TF-IDF model.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  std::vector<std::string> Tokenize(std::string_view str) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  TokenizerOptions options_;
};

}  // namespace ctxrank::text

#endif  // CTXRANK_TEXT_TOKENIZER_H_
