// Locale-independent word tokenizer for English scientific text.
#ifndef CTXRANK_TEXT_TOKENIZER_H_
#define CTXRANK_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace ctxrank::text {

struct TokenizerOptions {
  /// Drop tokens shorter than this many characters.
  size_t min_token_length = 2;
  /// Drop tokens that consist only of digits.
  bool drop_numeric = true;
  /// Lower-case all tokens.
  bool lowercase = true;
};

/// \brief Splits text into word tokens. A token is a maximal run of ASCII
/// letters/digits; hyphens and apostrophes inside a word are treated as
/// separators ("gene-ontology" -> "gene", "ontology"), matching the
/// bag-of-words treatment in the paper's TF-IDF model.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  std::vector<std::string> Tokenize(std::string_view str) const;

  /// Streaming variant of Tokenize: invokes `fn(token)` for each token
  /// without materializing the token vector. `token` is a reference to a
  /// buffer reused across tokens — copy it if it must outlive the call.
  /// Token set, order and contents are identical to Tokenize().
  template <typename Fn>
  void ForEachToken(std::string_view str, Fn&& fn) const {
    std::string current;
    bool all_digits = true;
    const auto flush = [&] {
      if (current.size() >= options_.min_token_length &&
          !(options_.drop_numeric && all_digits)) {
        fn(current);
      }
      current.clear();
      all_digits = true;
    };
    for (const char raw : str) {
      const unsigned char c = static_cast<unsigned char>(raw);
      // Branchless ASCII classification, equivalent to std::isalnum /
      // std::isdigit / std::tolower in the C locale (all input is ASCII
      // scientific text; bytes >= 0x80 are separators either way).
      const bool digit = c >= '0' && c <= '9';
      const bool upper = c >= 'A' && c <= 'Z';
      const bool lower = c >= 'a' && c <= 'z';
      if (digit || upper || lower) {
        if (!digit) all_digits = false;
        current.push_back(options_.lowercase && upper
                              ? static_cast<char>(c - 'A' + 'a')
                              : raw);
      } else if (!current.empty()) {
        flush();
      }
    }
    if (!current.empty()) flush();
  }

  const TokenizerOptions& options() const { return options_; }

 private:
  TokenizerOptions options_;
};

}  // namespace ctxrank::text

#endif  // CTXRANK_TEXT_TOKENIZER_H_
