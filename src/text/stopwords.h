// Standard English stopword list (SMART-derived subset) used before TF-IDF
// weighting and pattern mining.
#ifndef CTXRANK_TEXT_STOPWORDS_H_
#define CTXRANK_TEXT_STOPWORDS_H_

#include <string_view>

namespace ctxrank::text {

/// True if `word` (already lower-cased) is an English stopword.
bool IsStopword(std::string_view word);

/// Number of words in the built-in stopword list (for tests).
size_t StopwordCount();

}  // namespace ctxrank::text

#endif  // CTXRANK_TEXT_STOPWORDS_H_
