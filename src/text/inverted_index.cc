#include "text/inverted_index.h"

#include <algorithm>
#include <unordered_map>

namespace ctxrank::text {

void InvertedIndex::Add(DocId doc, const SparseVector& vec) {
  ++num_documents_;
  for (const auto& e : vec.entries()) {
    if (e.term >= postings_.size()) postings_.resize(e.term + 1);
    postings_[e.term].push_back({doc, e.weight});
  }
}

std::vector<ScoredDoc> InvertedIndex::Search(const SparseVector& query,
                                             double min_score) const {
  std::unordered_map<DocId, double> acc;
  for (const auto& qe : query.entries()) {
    if (qe.term >= postings_.size()) continue;
    for (const Posting& p : postings_[qe.term]) {
      acc[p.doc] += qe.weight * p.weight;
    }
  }
  std::vector<ScoredDoc> out;
  out.reserve(acc.size());
  for (const auto& [doc, score] : acc) {
    if (score >= min_score) out.push_back({doc, score});
  }
  std::sort(out.begin(), out.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  return out;
}

std::vector<ScoredDoc> InvertedIndex::SearchTopK(const SparseVector& query,
                                                 size_t k,
                                                 double min_score) const {
  std::vector<ScoredDoc> all = Search(query, min_score);
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace ctxrank::text
