#include "text/inverted_index.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace ctxrank::text {

InvertedIndex InvertedIndex::FromView(std::span<const uint64_t> offsets,
                                      std::span<const Posting> postings,
                                      size_t num_documents) {
  InvertedIndex index;
  index.view_mode_ = true;
  index.view_offsets_ = offsets;
  index.view_postings_ = postings;
  index.num_documents_ = num_documents;
  return index;
}

void InvertedIndex::Add(DocId doc, const SparseVector& vec) {
  assert(!view_mode_ && "Add on a frozen snapshot inverted index");
  ++num_documents_;
  for (const auto& e : vec.entries()) {
    if (e.term >= postings_.size()) postings_.resize(e.term + 1);
    postings_[e.term].push_back({doc, e.weight});
  }
}

std::vector<ScoredDoc> InvertedIndex::Search(const SparseVector& query,
                                             double min_score) const {
  std::unordered_map<DocId, double> acc;
  for (const auto& qe : query.entries()) {
    for (const Posting& p : ListOf(qe.term)) {
      acc[p.doc] += qe.weight * p.weight;
    }
  }
  std::vector<ScoredDoc> out;
  out.reserve(acc.size());
  for (const auto& [doc, score] : acc) {
    if (score >= min_score) out.push_back({doc, score});
  }
  std::sort(out.begin(), out.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  return out;
}

std::vector<ScoredDoc> InvertedIndex::SearchTopK(const SparseVector& query,
                                                 size_t k,
                                                 double min_score) const {
  if (k == 0) return {};
  std::unordered_map<DocId, double> acc;
  for (const auto& qe : query.entries()) {
    for (const Posting& p : ListOf(qe.term)) {
      acc[p.doc] += qe.weight * p.weight;
    }
  }
  // Bounded min-heap instead of scoring-then-full-sort: `better` is the
  // final output order (descending score, ascending doc id on ties), and
  // the heap keeps the k best under it with the worst element on top.
  const auto better = [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  };
  std::vector<ScoredDoc> heap;
  heap.reserve(k + 1);
  for (const auto& [doc, score] : acc) {
    if (score < min_score) continue;
    const ScoredDoc cand{doc, score};
    if (heap.size() < k) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end(), better);
    } else if (better(cand, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), better);
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end(), better);
    }
  }
  // With `better` as the strict weak order, sort_heap leaves the best
  // candidate first — exactly the Search() output order.
  std::sort_heap(heap.begin(), heap.end(), better);
  return heap;
}

}  // namespace ctxrank::text
