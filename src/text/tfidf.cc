#include "text/tfidf.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

namespace ctxrank::text {

TfIdfModel TfIdfModel::FromView(std::span<const uint32_t> df,
                                size_t num_documents) {
  TfIdfModel m;
  m.df_.SetView(df);
  m.num_documents_ = num_documents;
  return m;
}

void TfIdfModel::Fit(const std::vector<std::vector<TermId>>& documents,
                     size_t vocab_size) {
  df_.SetOwned(std::vector<uint32_t>(vocab_size, 0));
  num_documents_ = 0;
  for (const auto& doc : documents) AddDocument(doc, vocab_size);
}

void TfIdfModel::AddDocument(std::span<const TermId> doc_terms,
                             size_t vocab_size) {
  assert(df_.owning() && "AddDocument on a frozen snapshot TF-IDF model");
  std::vector<uint32_t>& df = df_.mutable_vector();
  if (df.size() < vocab_size) df.resize(vocab_size, 0);
  ++num_documents_;
  // Count each term once per document.
  std::vector<TermId> unique(doc_terms.begin(), doc_terms.end());
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  for (TermId t : unique) {
    if (t < df.size()) ++df[t];
  }
  df_.SyncView();
}

double TfIdfModel::Idf(TermId term) const {
  const size_t df = DocumentFrequency(term);
  if (df == 0 || num_documents_ == 0) return 0.0;
  return std::log(static_cast<double>(num_documents_) /
                  static_cast<double>(df));
}

SparseVector TfIdfModel::Transform(std::span<const TermId> doc_terms) const {
  std::unordered_map<TermId, double> tf;
  for (TermId t : doc_terms) tf[t] += 1.0;
  std::vector<SparseVector::Entry> entries;
  entries.reserve(tf.size());
  for (const auto& [term, count] : tf) {
    const double idf = Idf(term);
    if (idf <= 0.0) continue;
    entries.push_back({term, (1.0 + std::log(count)) * idf});
  }
  SparseVector v = SparseVector::FromUnsorted(std::move(entries));
  v.L2Normalize();
  return v;
}

}  // namespace ctxrank::text
