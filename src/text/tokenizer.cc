#include "text/tokenizer.h"

#include <cctype>

namespace ctxrank::text {

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {}

std::vector<std::string> Tokenizer::Tokenize(std::string_view str) const {
  std::vector<std::string> tokens;
  std::string current;
  bool all_digits = true;
  auto flush = [&] {
    if (current.size() >= options_.min_token_length &&
        !(options_.drop_numeric && all_digits)) {
      tokens.push_back(current);
    }
    current.clear();
    all_digits = true;
  };
  for (char raw : str) {
    const unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      if (!std::isdigit(c)) all_digits = false;
      current.push_back(options_.lowercase
                            ? static_cast<char>(std::tolower(c))
                            : raw);
    } else if (!current.empty()) {
      flush();
    }
  }
  if (!current.empty()) flush();
  return tokens;
}

}  // namespace ctxrank::text
