#include "text/tokenizer.h"

namespace ctxrank::text {

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {}

std::vector<std::string> Tokenizer::Tokenize(std::string_view str) const {
  std::vector<std::string> tokens;
  ForEachToken(str,
               [&tokens](const std::string& token) { tokens.push_back(token); });
  return tokens;
}

}  // namespace ctxrank::text
