// The analysis pipeline: tokenize -> drop stopwords -> Porter-stem ->
// intern into a shared vocabulary.
#ifndef CTXRANK_TEXT_ANALYZER_H_
#define CTXRANK_TEXT_ANALYZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace ctxrank::text {

struct AnalyzerOptions {
  TokenizerOptions tokenizer;
  bool remove_stopwords = true;
  bool stem = true;
};

/// \brief Turns raw text into stemmed token strings or interned term ids.
/// Thread-compatible: Analyze() is const; AnalyzeToIds() mutates the
/// vocabulary it was given and must be externally synchronized.
class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = {});

  /// Full pipeline to token strings (stemmed, stopword-free).
  std::vector<std::string> Analyze(std::string_view str) const;

  /// Full pipeline; interns tokens in `vocab` (growing it).
  std::vector<TermId> AnalyzeToIds(std::string_view str,
                                   Vocabulary& vocab) const;

  /// Full pipeline; looks tokens up in a frozen `vocab`, dropping unknowns.
  std::vector<TermId> AnalyzeToKnownIds(std::string_view str,
                                        const Vocabulary& vocab) const;

  const AnalyzerOptions& options() const { return options_; }

 private:
  Tokenizer tokenizer_;
  AnalyzerOptions options_;
};

}  // namespace ctxrank::text

#endif  // CTXRANK_TEXT_ANALYZER_H_
