// Okapi BM25 ranked retrieval — a modern alternative to the paper's
// cosine/TF-IDF matching score, provided so the relevancy combination can
// be evaluated with a stronger text-matching component
// (bench/ablation_matching_models).
#ifndef CTXRANK_TEXT_BM25_H_
#define CTXRANK_TEXT_BM25_H_

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "text/inverted_index.h"
#include "text/vocabulary.h"

namespace ctxrank::text {

struct Bm25Options {
  /// Term-frequency saturation.
  double k1 = 1.2;
  /// Document-length normalization strength.
  double b = 0.75;
};

/// \brief BM25 index over term-id documents. Add every document, then
/// Finalize(), then Search().
class Bm25Index {
 public:
  explicit Bm25Index(Bm25Options options = {});

  /// Adds a document (term ids with repetitions) under external id `doc`.
  void Add(DocId doc, std::span<const TermId> terms);
  void Add(DocId doc, std::initializer_list<TermId> terms) {
    Add(doc, std::span<const TermId>(terms.begin(), terms.size()));
  }

  /// Computes idf values and length normalization. Must be called once
  /// after all Add() calls; Search() before Finalize() returns nothing.
  void Finalize();

  /// BM25 scores for `query` (term ids), best first, scores > min_score.
  std::vector<ScoredDoc> Search(const std::vector<TermId>& query,
                                double min_score = 0.0) const;

  /// BM25 score of one document for `query` (0 when unknown doc).
  double Score(const std::vector<TermId>& query, DocId doc) const;

  size_t num_documents() const { return doc_len_.size(); }
  double average_doc_length() const { return avg_len_; }

 private:
  struct Posting {
    DocId doc;
    uint32_t tf;
  };

  double TermDocScore(TermId term, uint32_t tf, DocId doc) const;

  Bm25Options options_;
  std::vector<std::vector<Posting>> postings_;  // By term id.
  std::vector<uint32_t> doc_len_;               // By dense doc index.
  std::vector<DocId> doc_ids_;                  // Dense index -> external.
  std::vector<uint32_t> doc_index_of_;          // External -> dense (+1).
  double avg_len_ = 0.0;
  bool finalized_ = false;
};

}  // namespace ctxrank::text

#endif  // CTXRANK_TEXT_BM25_H_
