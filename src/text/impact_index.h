// Impact-ordered postings for top-k pruned ranked retrieval (max-score /
// WAND family). Unlike InvertedIndex, whose postings follow insertion
// order, every postings list here is sorted by descending weight so a
// scorer walking it can stop admitting new candidates as soon as the
// per-term score bound falls below its current top-k threshold.
#ifndef CTXRANK_TEXT_IMPACT_INDEX_H_
#define CTXRANK_TEXT_IMPACT_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/array_view.h"
#include "text/sparse_vector.h"
#include "text/vocabulary.h"

namespace ctxrank::text {

/// \brief Term -> (doc, weight) postings sorted by descending weight, with
/// per-term max-weight metadata and the minimum positive document norm.
/// Documents get sequential local ids (0, 1, ...) in Add order, so the
/// caller can keep per-doc side data (prestige, external ids) in plain
/// arrays indexed the same way.
///
/// After Finalize() the index is a flat CSR layout — a term-offsets array
/// into one contiguous postings array plus a per-doc norms array — stored
/// either on the heap (built via Add/Finalize) or as views over a serving
/// snapshot's mmap region (FromView). The view constructor also accepts
/// offsets that index into a *shared* postings array covering many
/// indexes, so a snapshot can concatenate every context's postings into
/// one section.
///
/// The pruning contract: for any query q and document d,
///   dot(q, d) <= sum over query terms t of q_t * MaxWeight(t), and
///   cosine(q, d) <= dot_upper / (||q|| * min_positive_norm()),
/// so a scorer that tracks these bounds can skip documents (or whole
/// postings tails) that provably cannot reach a score threshold.
///
/// Block-max metadata (optional, Finalize(block_size) / FromView with a
/// BlockView): every postings list is chunked into fixed-size blocks of
/// `block_size` postings (the last block of a list may be short) and each
/// block records its max weight plus its doc-id bounds. Because lists are
/// impact-ordered, block b's max weight is its first posting's weight and
/// the per-block maxima are non-increasing — a scorer can locate the
/// admission boundary by scanning the compact max array (never touching
/// the postings), admit everything strictly before the boundary block
/// without per-posting bound checks (each such posting outweighs the next
/// block's max, which passed), and use the doc-id bounds to skip
/// accumulator lookups for blocks disjoint from the touched-doc range.
class ImpactOrderedIndex {
 public:
  struct Posting {
    uint32_t doc;
    double weight;
  };
  // The snapshot stores postings as 16-byte records (u32 doc, 4 bytes of
  // zero padding, f64 weight, little-endian) and reinterprets them on
  // load; these assertions pin the layout that relies on.
  static_assert(sizeof(Posting) == 16, "Posting must be a 16-byte record");
  static_assert(alignof(Posting) == 8, "Posting must be 8-byte aligned");

  /// Per-term slices of the block metadata arrays (parallel, one entry
  /// per block). Empty spans when the index has no blocks.
  struct TermBlocks {
    std::span<const double> max_weight;  // Non-increasing across blocks.
    std::span<const uint32_t> doc_min;
    std::span<const uint32_t> doc_max;
  };

  /// Block metadata views over storage owned elsewhere (the snapshot's
  /// mmap region). `offsets` has num_terms + 1 entries indexing into the
  /// three parallel block arrays (absolute positions — they may be shared
  /// super-arrays covering many indexes).
  struct BlockView {
    size_t block_size = 0;
    std::span<const uint64_t> offsets;
    std::span<const double> max_weight;
    std::span<const uint32_t> doc_min;
    std::span<const uint32_t> doc_max;
  };

  ImpactOrderedIndex() = default;

  /// Wraps finalized storage owned elsewhere. `offsets` has num_terms + 1
  /// entries indexing into `postings` (absolute positions, so `postings`
  /// may be a shared super-array); `norms` has one entry per document.
  /// `blocks` attaches block-max metadata; the overload without it (or a
  /// BlockView with block_size 0, as for pre-block snapshots) leaves the
  /// index serving without blocks and scorers fall back to the per-term
  /// max-weight path.
  static ImpactOrderedIndex FromView(std::span<const uint64_t> offsets,
                                     std::span<const Posting> postings,
                                     std::span<const double> norms,
                                     double min_positive_norm);
  static ImpactOrderedIndex FromView(std::span<const uint64_t> offsets,
                                     std::span<const Posting> postings,
                                     std::span<const double> norms,
                                     double min_positive_norm,
                                     const BlockView& blocks);

  /// Adds the next document (local id = number of prior Add calls) and
  /// returns that id. Must not be called after Finalize().
  uint32_t Add(const SparseVector& vec);

  /// Sorts every postings list by descending weight (ties: ascending doc
  /// id, for determinism) and flattens them into the CSR layout. Required
  /// before any query-side accessor. `block_size` > 0 additionally builds
  /// the per-block max-weight / doc-bound metadata; 0 skips it.
  void Finalize(size_t block_size = 0);

  bool finalized() const { return finalized_; }
  size_t num_documents() const { return norms_.size(); }
  size_t num_terms() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Total postings across all terms (memory/telemetry).
  size_t total_postings() const { return total_postings_; }

  /// Impact-ordered postings of `term`; empty for terms never seen.
  std::span<const Posting> PostingsOf(TermId term) const {
    if (term + 1 >= offsets_.size()) return {};
    return postings_.span().subspan(offsets_[term],
                                    offsets_[term + 1] - offsets_[term]);
  }

  /// Largest weight in `term`'s postings; 0 for terms never seen.
  double MaxWeight(TermId term) const {
    if (term + 1 >= offsets_.size() || offsets_[term] == offsets_[term + 1]) {
      return 0.0;
    }
    return postings_[offsets_[term]].weight;
  }

  /// Smallest positive L2 norm among added documents (1.0 when no document
  /// has a positive norm) — the denominator bound that converts a
  /// dot-product upper bound into a cosine upper bound.
  double min_positive_norm() const { return min_positive_norm_; }

  /// L2 norm of document `doc`, exactly as SparseVector::Norm() returned
  /// it at Add time — so a scorer holding a complete accumulated dot
  /// product can finish the cosine with the same bits as
  /// SparseVector::Cosine.
  double NormOf(uint32_t doc) const { return norms_[doc]; }

  /// True when block-max metadata is available (built or viewed).
  bool has_blocks() const { return block_size_ != 0; }
  /// Postings per block (0 when the index carries no block metadata).
  size_t block_size() const { return block_size_; }
  /// Total blocks across all terms (telemetry / snapshot sizing).
  size_t total_blocks() const {
    return block_offsets_.empty() ? 0
                                  : static_cast<size_t>(
                                        block_offsets_.span().back() -
                                        block_offsets_.span().front());
  }

  /// Block metadata of `term`'s postings list; empty spans for terms
  /// never seen or when the index has no blocks.
  TermBlocks BlocksOf(TermId term) const {
    if (block_size_ == 0 || term + 1 >= block_offsets_.size()) return {};
    const uint64_t begin = block_offsets_[term];
    const uint64_t count = block_offsets_[term + 1] - begin;
    return {block_max_.span().subspan(begin, count),
            block_doc_min_.span().subspan(begin, count),
            block_doc_max_.span().subspan(begin, count)};
  }

  /// CSR internals, exposed for the snapshot writer. Offsets index into
  /// postings_span() (absolute; zero-based for heap-built indexes).
  std::span<const uint64_t> offsets_span() const { return offsets_.span(); }
  std::span<const Posting> postings_span() const { return postings_.span(); }
  std::span<const double> norms_span() const { return norms_.span(); }
  /// Block internals for the snapshot writer (same absolute-offset
  /// convention as offsets_span; empty when has_blocks() is false).
  std::span<const uint64_t> block_offsets_span() const {
    return block_offsets_.span();
  }
  std::span<const double> block_max_span() const { return block_max_.span(); }
  std::span<const uint32_t> block_doc_min_span() const {
    return block_doc_min_.span();
  }
  std::span<const uint32_t> block_doc_max_span() const {
    return block_doc_max_.span();
  }

 private:
  // Build-time staging (owned mode, cleared by Finalize).
  std::vector<std::vector<Posting>> build_postings_;
  // Finalized CSR storage.
  VecOrSpan<uint64_t> offsets_;  // num_terms + 1 entries.
  VecOrSpan<Posting> postings_;
  VecOrSpan<double> norms_;  // Indexed by doc id.
  // Block-max metadata (empty when block_size_ == 0): per-term offsets
  // into three parallel per-block arrays, same CSR shape as offsets_.
  VecOrSpan<uint64_t> block_offsets_;  // num_terms + 1 entries.
  VecOrSpan<double> block_max_;
  VecOrSpan<uint32_t> block_doc_min_;
  VecOrSpan<uint32_t> block_doc_max_;
  size_t block_size_ = 0;
  size_t total_postings_ = 0;
  double min_positive_norm_ = 1.0;
  bool seen_positive_norm_ = false;
  bool finalized_ = false;
};

}  // namespace ctxrank::text

#endif  // CTXRANK_TEXT_IMPACT_INDEX_H_
