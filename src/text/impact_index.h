// Impact-ordered postings for top-k pruned ranked retrieval (max-score /
// WAND family). Unlike InvertedIndex, whose postings follow insertion
// order, every postings list here is sorted by descending weight so a
// scorer walking it can stop admitting new candidates as soon as the
// per-term score bound falls below its current top-k threshold.
#ifndef CTXRANK_TEXT_IMPACT_INDEX_H_
#define CTXRANK_TEXT_IMPACT_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "text/sparse_vector.h"
#include "text/vocabulary.h"

namespace ctxrank::text {

/// \brief Term -> (doc, weight) postings sorted by descending weight, with
/// per-term max-weight metadata and the minimum positive document norm.
/// Documents get sequential local ids (0, 1, ...) in Add order, so the
/// caller can keep per-doc side data (prestige, external ids) in plain
/// arrays indexed the same way.
///
/// The pruning contract: for any query q and document d,
///   dot(q, d) <= sum over query terms t of q_t * MaxWeight(t), and
///   cosine(q, d) <= dot_upper / (||q|| * min_positive_norm()),
/// so a scorer that tracks these bounds can skip documents (or whole
/// postings tails) that provably cannot reach a score threshold.
class ImpactOrderedIndex {
 public:
  struct Posting {
    uint32_t doc;
    double weight;
  };

  ImpactOrderedIndex() = default;

  /// Adds the next document (local id = number of prior Add calls) and
  /// returns that id. Must not be called after Finalize().
  uint32_t Add(const SparseVector& vec);

  /// Sorts every postings list by descending weight (ties: ascending doc
  /// id, for determinism). Required before any query-side accessor.
  void Finalize();

  bool finalized() const { return finalized_; }
  size_t num_documents() const { return num_documents_; }
  size_t num_terms() const { return postings_.size(); }

  /// Total postings across all terms (memory/telemetry).
  size_t total_postings() const { return total_postings_; }

  /// Impact-ordered postings of `term`; empty for terms never seen.
  const std::vector<Posting>& PostingsOf(TermId term) const;

  /// Largest weight in `term`'s postings; 0 for terms never seen.
  double MaxWeight(TermId term) const {
    return term < postings_.size() && !postings_[term].empty()
               ? postings_[term].front().weight
               : 0.0;
  }

  /// Smallest positive L2 norm among added documents (1.0 when no document
  /// has a positive norm) — the denominator bound that converts a
  /// dot-product upper bound into a cosine upper bound.
  double min_positive_norm() const { return min_positive_norm_; }

  /// L2 norm of document `doc`, exactly as SparseVector::Norm() returned
  /// it at Add time — so a scorer holding a complete accumulated dot
  /// product can finish the cosine with the same bits as
  /// SparseVector::Cosine.
  double NormOf(uint32_t doc) const { return norms_[doc]; }

 private:
  std::vector<std::vector<Posting>> postings_;  // Indexed by term id.
  std::vector<double> norms_;                   // Indexed by doc id.
  size_t num_documents_ = 0;
  size_t total_postings_ = 0;
  double min_positive_norm_ = 1.0;
  bool seen_positive_norm_ = false;
  bool finalized_ = false;
};

}  // namespace ctxrank::text

#endif  // CTXRANK_TEXT_IMPACT_INDEX_H_
