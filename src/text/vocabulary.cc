#include "text/vocabulary.h"

#include <algorithm>
#include <cassert>

namespace ctxrank::text {

Vocabulary Vocabulary::FromView(std::span<const char> blob,
                                std::span<const uint64_t> offsets,
                                std::span<const TermId> sorted) {
  Vocabulary v;
  v.view_mode_ = true;
  v.blob_ = blob;
  v.offsets_ = offsets;
  v.sorted_ = sorted;
  return v;
}

TermId Vocabulary::GetOrAdd(std::string_view term) {
  assert(!view_mode_ && "GetOrAdd on a frozen snapshot vocabulary");
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  const TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(terms_.back(), id);
  return id;
}

TermId Vocabulary::Lookup(std::string_view term) const {
  if (!view_mode_) {
    auto it = index_.find(term);
    return it == index_.end() ? kInvalidTermId : it->second;
  }
  auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), term,
      [this](TermId id, std::string_view t) { return this->term(id) < t; });
  if (it != sorted_.end() && this->term(*it) == term) return *it;
  return kInvalidTermId;
}

}  // namespace ctxrank::text
