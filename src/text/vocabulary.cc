#include "text/vocabulary.h"

namespace ctxrank::text {

TermId Vocabulary::GetOrAdd(std::string_view term) {
  auto it = index_.find(std::string(term));
  if (it != index_.end()) return it->second;
  const TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(terms_.back(), id);
  return id;
}

TermId Vocabulary::Lookup(std::string_view term) const {
  auto it = index_.find(std::string(term));
  return it == index_.end() ? kInvalidTermId : it->second;
}

}  // namespace ctxrank::text
