#include "text/delta_postings.h"

namespace ctxrank::text {

size_t DeltaPostings::Add(const SparseVector& vec) {
  const uint32_t doc = static_cast<uint32_t>(norms_.size());
  for (const auto& e : vec.entries()) {
    postings_[e.term].push_back({doc, e.weight});
  }
  norms_.push_back(vec.Norm());
  return doc;
}

std::vector<double> DeltaPostings::DotAll(const SparseVector& q) const {
  std::vector<double> acc(norms_.size(), 0.0);
  // Query entries are sorted ascending by term, so each document's
  // accumulator receives its contributions in exactly the order a
  // merge-walk Dot would produce them.
  for (const auto& qe : q.entries()) {
    const auto it = postings_.find(qe.term);
    if (it == postings_.end()) continue;
    for (const Posting& p : it->second) {
      acc[p.doc] += qe.weight * p.weight;
    }
  }
  return acc;
}

std::vector<double> DeltaPostings::CosineAll(const SparseVector& q) const {
  std::vector<double> cos = DotAll(q);
  const double qnorm = q.Norm();
  for (size_t d = 0; d < cos.size(); ++d) {
    const double dnorm = norms_[d];
    cos[d] = (qnorm <= 0.0 || dnorm <= 0.0) ? 0.0 : cos[d] / (qnorm * dnorm);
  }
  return cos;
}

}  // namespace ctxrank::text
