#include "text/impact_index.h"

#include <algorithm>
#include <cassert>

namespace ctxrank::text {

uint32_t ImpactOrderedIndex::Add(const SparseVector& vec) {
  assert(!finalized_);
  const uint32_t doc = static_cast<uint32_t>(num_documents_++);
  for (const auto& e : vec.entries()) {
    if (e.term >= postings_.size()) postings_.resize(e.term + 1);
    postings_[e.term].push_back({doc, e.weight});
    ++total_postings_;
  }
  const double norm = vec.Norm();
  norms_.push_back(norm);
  if (norm > 0.0) {
    min_positive_norm_ =
        seen_positive_norm_ ? std::min(min_positive_norm_, norm) : norm;
    seen_positive_norm_ = true;
  }
  return doc;
}

void ImpactOrderedIndex::Finalize() {
  for (auto& list : postings_) {
    std::sort(list.begin(), list.end(),
              [](const Posting& a, const Posting& b) {
                if (a.weight != b.weight) return a.weight > b.weight;
                return a.doc < b.doc;
              });
  }
  finalized_ = true;
}

const std::vector<ImpactOrderedIndex::Posting>& ImpactOrderedIndex::PostingsOf(
    TermId term) const {
  static const std::vector<Posting> kEmpty;
  return term < postings_.size() ? postings_[term] : kEmpty;
}

}  // namespace ctxrank::text
