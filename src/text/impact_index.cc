#include "text/impact_index.h"

#include <algorithm>
#include <cassert>

namespace ctxrank::text {

ImpactOrderedIndex ImpactOrderedIndex::FromView(
    std::span<const uint64_t> offsets, std::span<const Posting> postings,
    std::span<const double> norms, double min_positive_norm) {
  return FromView(offsets, postings, norms, min_positive_norm, BlockView{});
}

ImpactOrderedIndex ImpactOrderedIndex::FromView(
    std::span<const uint64_t> offsets, std::span<const Posting> postings,
    std::span<const double> norms, double min_positive_norm,
    const BlockView& blocks) {
  ImpactOrderedIndex index;
  index.offsets_.SetView(offsets);
  index.postings_.SetView(postings);
  index.norms_.SetView(norms);
  index.total_postings_ =
      offsets.empty() ? 0 : static_cast<size_t>(offsets.back() - offsets.front());
  index.min_positive_norm_ = min_positive_norm;
  index.seen_positive_norm_ = true;
  index.finalized_ = true;
  if (blocks.block_size > 0) {
    index.block_size_ = blocks.block_size;
    index.block_offsets_.SetView(blocks.offsets);
    index.block_max_.SetView(blocks.max_weight);
    index.block_doc_min_.SetView(blocks.doc_min);
    index.block_doc_max_.SetView(blocks.doc_max);
  }
  return index;
}

uint32_t ImpactOrderedIndex::Add(const SparseVector& vec) {
  assert(!finalized_);
  std::vector<double>& norms = norms_.mutable_vector();
  const uint32_t doc = static_cast<uint32_t>(norms.size());
  for (const auto& e : vec.entries()) {
    if (e.term >= build_postings_.size()) build_postings_.resize(e.term + 1);
    build_postings_[e.term].push_back({doc, e.weight});
    ++total_postings_;
  }
  const double norm = vec.Norm();
  norms.push_back(norm);
  norms_.SyncView();
  if (norm > 0.0) {
    min_positive_norm_ =
        seen_positive_norm_ ? std::min(min_positive_norm_, norm) : norm;
    seen_positive_norm_ = true;
  }
  return doc;
}

void ImpactOrderedIndex::Finalize(size_t block_size) {
  std::vector<uint64_t> offsets;
  offsets.reserve(build_postings_.size() + 1);
  std::vector<Posting> flat;
  flat.reserve(total_postings_);
  offsets.push_back(0);
  for (auto& list : build_postings_) {
    std::sort(list.begin(), list.end(),
              [](const Posting& a, const Posting& b) {
                if (a.weight != b.weight) return a.weight > b.weight;
                return a.doc < b.doc;
              });
    flat.insert(flat.end(), list.begin(), list.end());
    offsets.push_back(flat.size());
  }
  build_postings_.clear();
  build_postings_.shrink_to_fit();
  if (block_size > 0) {
    // Per-term block metadata over the flattened lists. Impact order makes
    // each block's first posting its max weight; doc bounds are a min/max
    // sweep. One pass over the postings, O(total / block_size) storage.
    std::vector<uint64_t> boffsets;
    boffsets.reserve(offsets.size());
    std::vector<double> bmax;
    std::vector<uint32_t> bdmin;
    std::vector<uint32_t> bdmax;
    boffsets.push_back(0);
    for (size_t t = 0; t + 1 < offsets.size(); ++t) {
      for (uint64_t start = offsets[t]; start < offsets[t + 1];
           start += block_size) {
        const uint64_t end =
            std::min<uint64_t>(start + block_size, offsets[t + 1]);
        uint32_t dmin = flat[start].doc;
        uint32_t dmax = flat[start].doc;
        for (uint64_t i = start + 1; i < end; ++i) {
          dmin = std::min(dmin, flat[i].doc);
          dmax = std::max(dmax, flat[i].doc);
        }
        bmax.push_back(flat[start].weight);
        bdmin.push_back(dmin);
        bdmax.push_back(dmax);
      }
      boffsets.push_back(bmax.size());
    }
    block_size_ = block_size;
    block_offsets_.SetOwned(std::move(boffsets));
    block_max_.SetOwned(std::move(bmax));
    block_doc_min_.SetOwned(std::move(bdmin));
    block_doc_max_.SetOwned(std::move(bdmax));
  }
  offsets_.SetOwned(std::move(offsets));
  postings_.SetOwned(std::move(flat));
  finalized_ = true;
}

}  // namespace ctxrank::text
