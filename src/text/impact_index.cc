#include "text/impact_index.h"

#include <algorithm>
#include <cassert>

namespace ctxrank::text {

ImpactOrderedIndex ImpactOrderedIndex::FromView(
    std::span<const uint64_t> offsets, std::span<const Posting> postings,
    std::span<const double> norms, double min_positive_norm) {
  ImpactOrderedIndex index;
  index.offsets_.SetView(offsets);
  index.postings_.SetView(postings);
  index.norms_.SetView(norms);
  index.total_postings_ =
      offsets.empty() ? 0 : static_cast<size_t>(offsets.back() - offsets.front());
  index.min_positive_norm_ = min_positive_norm;
  index.seen_positive_norm_ = true;
  index.finalized_ = true;
  return index;
}

uint32_t ImpactOrderedIndex::Add(const SparseVector& vec) {
  assert(!finalized_);
  std::vector<double>& norms = norms_.mutable_vector();
  const uint32_t doc = static_cast<uint32_t>(norms.size());
  for (const auto& e : vec.entries()) {
    if (e.term >= build_postings_.size()) build_postings_.resize(e.term + 1);
    build_postings_[e.term].push_back({doc, e.weight});
    ++total_postings_;
  }
  const double norm = vec.Norm();
  norms.push_back(norm);
  norms_.SyncView();
  if (norm > 0.0) {
    min_positive_norm_ =
        seen_positive_norm_ ? std::min(min_positive_norm_, norm) : norm;
    seen_positive_norm_ = true;
  }
  return doc;
}

void ImpactOrderedIndex::Finalize() {
  std::vector<uint64_t> offsets;
  offsets.reserve(build_postings_.size() + 1);
  std::vector<Posting> flat;
  flat.reserve(total_postings_);
  offsets.push_back(0);
  for (auto& list : build_postings_) {
    std::sort(list.begin(), list.end(),
              [](const Posting& a, const Posting& b) {
                if (a.weight != b.weight) return a.weight > b.weight;
                return a.doc < b.doc;
              });
    flat.insert(flat.end(), list.begin(), list.end());
    offsets.push_back(flat.size());
  }
  build_postings_.clear();
  build_postings_.shrink_to_fit();
  offsets_.SetOwned(std::move(offsets));
  postings_.SetOwned(std::move(flat));
  finalized_ = true;
}

}  // namespace ctxrank::text
