// Term interning: maps stemmed word strings to dense 32-bit term ids.
#ifndef CTXRANK_TEXT_VOCABULARY_H_
#define CTXRANK_TEXT_VOCABULARY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ctxrank::text {

using TermId = uint32_t;

inline constexpr TermId kInvalidTermId = UINT32_MAX;

/// \brief Bidirectional term <-> id mapping. Ids are assigned densely in
/// insertion order, so they can index vectors directly.
class Vocabulary {
 public:
  Vocabulary() = default;

  // Movable but not copyable: a vocabulary is shared by reference across the
  // pipeline and accidental copies would silently fork the id space.
  Vocabulary(Vocabulary&&) = default;
  Vocabulary& operator=(Vocabulary&&) = default;
  Vocabulary(const Vocabulary&) = delete;
  Vocabulary& operator=(const Vocabulary&) = delete;

  /// Returns the id for `term`, interning it if new.
  TermId GetOrAdd(std::string_view term);

  /// Returns the id for `term`, or kInvalidTermId if absent.
  TermId Lookup(std::string_view term) const;

  /// Returns the term string for `id`; `id` must be < size().
  const std::string& term(TermId id) const { return terms_[id]; }

  size_t size() const { return terms_.size(); }

 private:
  std::unordered_map<std::string, TermId> index_;
  std::vector<std::string> terms_;
};

}  // namespace ctxrank::text

#endif  // CTXRANK_TEXT_VOCABULARY_H_
