// Term interning: maps stemmed word strings to dense 32-bit term ids.
#ifndef CTXRANK_TEXT_VOCABULARY_H_
#define CTXRANK_TEXT_VOCABULARY_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ctxrank::text {

using TermId = uint32_t;

inline constexpr TermId kInvalidTermId = UINT32_MAX;

/// \brief Bidirectional term <-> id mapping. Ids are assigned densely in
/// insertion order, so they can index vectors directly.
///
/// Two storage modes share the read API:
///   * owned (default): interned strings plus a hash index; GetOrAdd grows
///     the id space.
///   * view (FromView): term bytes live in an external blob (the serving
///     snapshot's mmap region) addressed by an offsets table, and Lookup
///     binary-searches a precomputed lexicographic permutation. The
///     vocabulary is frozen — GetOrAdd must not be called.
class Vocabulary {
 public:
  Vocabulary() = default;

  // Movable but not copyable: a vocabulary is shared by reference across the
  // pipeline and accidental copies would silently fork the id space.
  Vocabulary(Vocabulary&&) = default;
  Vocabulary& operator=(Vocabulary&&) = default;
  Vocabulary(const Vocabulary&) = delete;
  Vocabulary& operator=(const Vocabulary&) = delete;

  /// Wraps external storage: `offsets` has size() + 1 entries delimiting
  /// each term's bytes in `blob` (term i = blob[offsets[i], offsets[i+1])),
  /// and `sorted` is the term-id permutation ordered by term string. All
  /// three must outlive the returned vocabulary.
  static Vocabulary FromView(std::span<const char> blob,
                             std::span<const uint64_t> offsets,
                             std::span<const TermId> sorted);

  /// Returns the id for `term`, interning it if new. Owned mode only.
  TermId GetOrAdd(std::string_view term);

  /// Returns the id for `term`, or kInvalidTermId if absent.
  TermId Lookup(std::string_view term) const;

  /// Returns the term string for `id`; `id` must be < size().
  std::string_view term(TermId id) const {
    if (!view_mode_) return terms_[id];
    return std::string_view(blob_.data() + offsets_[id],
                            offsets_[id + 1] - offsets_[id]);
  }

  size_t size() const {
    return view_mode_ ? (offsets_.empty() ? 0 : offsets_.size() - 1)
                      : terms_.size();
  }

  bool view_mode() const { return view_mode_; }

 private:
  // Heterogeneous lookup: Lookup(string_view) probes without materializing
  // a std::string key (the query hot path calls it once per token).
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  // Owned mode.
  std::unordered_map<std::string, TermId, StringHash, std::equal_to<>> index_;
  std::vector<std::string> terms_;
  // View mode.
  bool view_mode_ = false;
  std::span<const char> blob_;
  std::span<const uint64_t> offsets_;
  std::span<const TermId> sorted_;
};

}  // namespace ctxrank::text

#endif  // CTXRANK_TEXT_VOCABULARY_H_
