#include "text/stopwords.h"

#include <algorithm>
#include <array>
#include <string_view>

namespace ctxrank::text {

namespace {

constexpr auto kStopwords = std::to_array<std::string_view>({
    "a",         "about",   "above",    "after",   "again",    "against",
    "all",       "am",      "an",       "and",     "any",      "are",
    "aren",      "as",      "at",       "be",      "because",  "been",
    "before",    "being",   "below",    "between", "both",     "but",
    "by",        "can",     "cannot",   "could",   "couldn",   "did",
    "didn",      "do",      "does",     "doesn",   "doing",    "don",
    "down",      "during",  "each",     "et",      "etc",      "few",
    "for",       "from",    "further",  "had",     "hadn",     "has",
    "hasn",      "have",    "haven",    "having",  "he",       "her",
    "here",      "hers",    "herself",  "him",     "himself",  "his",
    "how",       "however", "i",        "if",      "in",       "into",
    "is",        "isn",     "it",       "its",     "itself",   "let",
    "may",       "me",      "might",    "more",    "most",     "must",
    "mustn",     "my",      "myself",   "no",      "nor",      "not",
    "of",        "off",     "on",       "once",    "only",     "or",
    "other",     "ought",   "our",      "ours",    "ourselves","out",
    "over",      "own",     "same",     "shall",   "shan",     "she",
    "should",    "shouldn", "so",       "some",    "such",     "than",
    "that",      "the",     "their",    "theirs",  "them",     "themselves",
    "then",      "there",   "therefore","these",   "they",     "this",
    "those",     "through", "thus",     "to",      "too",      "under",
    "until",     "up",      "upon",     "us",      "very",     "was",
    "wasn",      "we",      "were",     "weren",   "what",     "when",
    "where",     "whether", "which",    "while",   "who",      "whom",
    "why",       "will",    "with",     "within",  "without",  "won",
    "would",     "wouldn",  "you",      "your",    "yours",    "yourself",
    "yourselves","also",    "among",    "although","based",    "besides",
    "came",      "come",    "e",        "g",       "furthermore","hence",
    "ie",        "indeed",  "moreover", "nevertheless","onto", "per",
    "respectively","since", "toward",   "towards", "via",      "whereas",
});

// Sorted copy built once at first use (function-local static; the array is
// trivially destructible so this satisfies the static-storage rules).
const std::array<std::string_view, kStopwords.size()>& SortedStopwords() {
  static const std::array<std::string_view, kStopwords.size()> sorted = [] {
    auto copy = kStopwords;
    std::sort(copy.begin(), copy.end());
    return copy;
  }();
  return sorted;
}

}  // namespace

bool IsStopword(std::string_view word) {
  const auto& sorted = SortedStopwords();
  return std::binary_search(sorted.begin(), sorted.end(), word);
}

size_t StopwordCount() { return kStopwords.size(); }

}  // namespace ctxrank::text
