// A small curated GO fragment (transcription / molecular-function flavoured,
// including the paper's §5.2 example "RNA polymerase II transcription factor
// activity" and its four children) used by examples and tests.
#ifndef CTXRANK_ONTOLOGY_MINI_GO_H_
#define CTXRANK_ONTOLOGY_MINI_GO_H_

#include "ontology/ontology.h"

namespace ctxrank::ontology {

/// Builds and finalizes the ~30-term mini ontology. Never fails.
Ontology MakeMiniGo();

}  // namespace ctxrank::ontology

#endif  // CTXRANK_ONTOLOGY_MINI_GO_H_
