// Information-content semantic similarity between ontology terms
// (Resnik, IJCAI 1995 — the paper's reference [13] — plus Lin's
// normalized variant). Used to expand context selection to semantically
// close contexts and to analyze how related two contexts are.
#ifndef CTXRANK_ONTOLOGY_SEMANTIC_SIMILARITY_H_
#define CTXRANK_ONTOLOGY_SEMANTIC_SIMILARITY_H_

#include <vector>

#include "ontology/ontology.h"

namespace ctxrank::ontology {

/// The common ancestor of `a` and `b` with the highest information
/// content (the "most informative common ancestor"). Returns kInvalidTerm
/// when the terms share no ancestor (different roots).
TermId MostInformativeCommonAncestor(const Ontology& onto, TermId a,
                                     TermId b);

/// Resnik similarity: I(MICA). 0 when the only shared ancestor is an
/// uninformative root; 0 when no ancestor is shared.
double ResnikSimilarity(const Ontology& onto, TermId a, TermId b);

/// Lin similarity: 2·I(MICA) / (I(a) + I(b)), in [0, 1]. 1 for a == b
/// (when I(a) > 0); 0 when nothing is shared.
double LinSimilarity(const Ontology& onto, TermId a, TermId b);

/// The `k` terms most Lin-similar to `seed` (excluding `seed`), best
/// first; ties broken by ascending term id.
std::vector<TermId> MostSimilarTerms(const Ontology& onto, TermId seed,
                                     size_t k);

}  // namespace ctxrank::ontology

#endif  // CTXRANK_ONTOLOGY_SEMANTIC_SIMILARITY_H_
