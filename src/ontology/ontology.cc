#include "ontology/ontology.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_set>

namespace ctxrank::ontology {

TermId Ontology::AddTerm(std::string accession, std::string name) {
  const TermId id = static_cast<TermId>(terms_.size());
  Term t;
  t.id = id;
  t.accession = std::move(accession);
  t.name = std::move(name);
  terms_.push_back(std::move(t));
  finalized_ = false;
  return id;
}

Status Ontology::AddIsA(TermId child, TermId parent) {
  if (child >= terms_.size() || parent >= terms_.size()) {
    return Status::InvalidArgument("is-a edge references unknown term");
  }
  if (child == parent) {
    return Status::InvalidArgument("self is-a edge on " +
                                   terms_[child].accession);
  }
  terms_[child].parents.push_back(parent);
  terms_[parent].children.push_back(child);
  finalized_ = false;
  return Status::OK();
}

Status Ontology::Finalize() {
  finalized_ = false;
  // Unique accessions.
  {
    std::unordered_set<std::string> seen;
    for (const Term& t : terms_) {
      if (!seen.insert(t.accession).second) {
        return Status::InvalidArgument("duplicate accession " + t.accession);
      }
    }
  }
  // Dedup parallel edges.
  for (Term& t : terms_) {
    std::sort(t.parents.begin(), t.parents.end());
    t.parents.erase(std::unique(t.parents.begin(), t.parents.end()),
                    t.parents.end());
    std::sort(t.children.begin(), t.children.end());
    t.children.erase(std::unique(t.children.begin(), t.children.end()),
                     t.children.end());
  }
  // Roots and cycle check via Kahn topological sort (parents before
  // children).
  roots_.clear();
  std::vector<size_t> pending_parents(terms_.size());
  for (const Term& t : terms_) {
    pending_parents[t.id] = t.parents.size();
    if (t.parents.empty()) roots_.push_back(t.id);
  }
  if (roots_.empty() && !terms_.empty()) {
    return Status::InvalidArgument("ontology has no root term");
  }
  std::deque<TermId> queue(roots_.begin(), roots_.end());
  std::vector<TermId> topo_order;
  topo_order.reserve(terms_.size());
  // Levels: 1 for roots, else 1 + min parent level (shortest path).
  std::vector<int> level(terms_.size(), 0);
  for (TermId r : roots_) level[r] = 1;
  while (!queue.empty()) {
    const TermId u = queue.front();
    queue.pop_front();
    topo_order.push_back(u);
    for (TermId c : terms_[u].children) {
      // Shortest-path level: parents precede children in topo order, so the
      // final value is the minimum over all parents.
      if (level[c] == 0) {
        level[c] = level[u] + 1;
      } else {
        level[c] = std::min(level[c], level[u] + 1);
      }
      if (--pending_parents[c] == 0) queue.push_back(c);
    }
  }
  if (topo_order.size() != terms_.size()) {
    return Status::InvalidArgument("ontology DAG contains a cycle");
  }
  max_level_ = 0;
  for (size_t i = 0; i < terms_.size(); ++i) {
    terms_[i].level = level[i];
    max_level_ = std::max(max_level_, level[i]);
  }
  // Descendant counts: |union of descendant sets| computed in reverse
  // topological order with bitsets for exactness on multi-parent DAGs.
  const size_t n = terms_.size();
  const size_t words = (n + 63) / 64;
  std::vector<std::vector<uint64_t>> closure(n,
                                             std::vector<uint64_t>(words, 0));
  descendant_counts_.assign(n, 0);
  for (auto it = topo_order.rbegin(); it != topo_order.rend(); ++it) {
    const TermId u = *it;
    auto& bits = closure[u];
    for (TermId c : terms_[u].children) {
      bits[c / 64] |= 1ULL << (c % 64);
      const auto& cb = closure[c];
      for (size_t w = 0; w < words; ++w) bits[w] |= cb[w];
    }
    size_t count = 0;
    for (uint64_t w : bits) count += static_cast<size_t>(__builtin_popcountll(w));
    descendant_counts_[u] = count;
  }
  // Information content.
  information_content_.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double p = (static_cast<double>(descendant_counts_[i]) + 1.0) /
                     static_cast<double>(n);
    information_content_[i] = std::log(1.0 / p);
  }
  finalized_ = true;
  return Status::OK();
}

TermId Ontology::FindByAccession(std::string_view accession) const {
  for (const Term& t : terms_) {
    if (t.accession == accession) return t.id;
  }
  return kInvalidTerm;
}

TermId Ontology::FindByName(std::string_view name) const {
  for (const Term& t : terms_) {
    if (t.name == name) return t.id;
  }
  return kInvalidTerm;
}

std::vector<TermId> Ontology::Descendants(TermId id) const {
  std::vector<TermId> out;
  std::vector<bool> seen(terms_.size(), false);
  std::deque<TermId> queue;
  for (TermId c : terms_[id].children) {
    if (!seen[c]) {
      seen[c] = true;
      queue.push_back(c);
    }
  }
  while (!queue.empty()) {
    const TermId u = queue.front();
    queue.pop_front();
    out.push_back(u);
    for (TermId c : terms_[u].children) {
      if (!seen[c]) {
        seen[c] = true;
        queue.push_back(c);
      }
    }
  }
  return out;
}

std::vector<TermId> Ontology::Ancestors(TermId id) const {
  std::vector<TermId> out;
  std::vector<bool> seen(terms_.size(), false);
  std::deque<TermId> queue;
  for (TermId p : terms_[id].parents) {
    if (!seen[p]) {
      seen[p] = true;
      queue.push_back(p);
    }
  }
  while (!queue.empty()) {
    const TermId u = queue.front();
    queue.pop_front();
    out.push_back(u);
    for (TermId p : terms_[u].parents) {
      if (!seen[p]) {
        seen[p] = true;
        queue.push_back(p);
      }
    }
  }
  return out;
}

bool Ontology::IsAncestorOrSelf(TermId anc, TermId desc) const {
  if (anc == desc) return true;
  // Walk up from `desc`; ontologies are shallow so this is fast.
  std::vector<bool> seen(terms_.size(), false);
  std::deque<TermId> queue;
  queue.push_back(desc);
  seen[desc] = true;
  while (!queue.empty()) {
    const TermId u = queue.front();
    queue.pop_front();
    for (TermId p : terms_[u].parents) {
      if (p == anc) return true;
      if (!seen[p]) {
        seen[p] = true;
        queue.push_back(p);
      }
    }
  }
  return false;
}

double Ontology::RelativeSize(TermId id) const {
  return (static_cast<double>(descendant_counts_[id]) + 1.0) /
         static_cast<double>(terms_.size());
}

double Ontology::InformationContent(TermId id) const {
  return information_content_[id];
}

double Ontology::RateOfDecay(TermId ancestor, TermId descendant) const {
  const double i_desc = InformationContent(descendant);
  if (i_desc <= 0.0 || ancestor == descendant) return 1.0;
  const double i_anc = InformationContent(ancestor);
  return i_anc / i_desc;
}

std::vector<TermId> Ontology::TermsAtLevel(int level) const {
  std::vector<TermId> out;
  for (const Term& t : terms_) {
    if (t.level == level) out.push_back(t.id);
  }
  return out;
}

}  // namespace ctxrank::ontology
