#include "ontology/obo_io.h"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/string_util.h"

namespace ctxrank::ontology {

std::string WriteObo(const Ontology& onto) {
  std::string out;
  out += "format-version: 1.2\n";
  for (const Term& t : onto.terms()) {
    out += "\n[Term]\n";
    out += "id: " + t.accession + "\n";
    out += "name: " + t.name + "\n";
    for (TermId p : t.parents) {
      out += "is_a: " + onto.term(p).accession + " ! " + onto.term(p).name +
             "\n";
    }
  }
  return out;
}

Result<Ontology> ParseObo(std::string_view content) {
  Ontology onto;
  std::unordered_map<std::string, TermId> by_accession;
  struct PendingEdge {
    TermId child;
    std::string parent_accession;
  };
  std::vector<PendingEdge> edges;

  bool in_term = false;
  std::string cur_id, cur_name;
  std::vector<std::string> cur_parents;

  auto flush_term = [&]() -> Status {
    if (!in_term) return Status::OK();
    if (cur_id.empty()) {
      return Status::InvalidArgument("[Term] stanza without id");
    }
    if (by_accession.count(cur_id) > 0) {
      return Status::InvalidArgument("duplicate term id " + cur_id);
    }
    const TermId id = onto.AddTerm(cur_id, cur_name);
    by_accession.emplace(cur_id, id);
    for (std::string& p : cur_parents) {
      edges.push_back({id, std::move(p)});
    }
    cur_id.clear();
    cur_name.clear();
    cur_parents.clear();
    in_term = false;
    return Status::OK();
  };

  size_t pos = 0;
  while (pos <= content.size()) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string_view::npos) eol = content.size();
    std::string_view line = Trim(content.substr(pos, eol - pos));
    pos = eol + 1;
    if (line.empty() || line[0] == '!') continue;
    if (line == "[Term]") {
      CTXRANK_RETURN_NOT_OK(flush_term());
      in_term = true;
      continue;
    }
    if (line[0] == '[') {  // Other stanza types ([Typedef] etc.): skip.
      CTXRANK_RETURN_NOT_OK(flush_term());
      continue;
    }
    if (!in_term) continue;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    const std::string_view key = Trim(line.substr(0, colon));
    std::string_view value = Trim(line.substr(colon + 1));
    // Strip trailing "! comment".
    const size_t bang = value.find('!');
    if (bang != std::string_view::npos) value = Trim(value.substr(0, bang));
    if (key == "id") {
      cur_id = std::string(value);
    } else if (key == "name") {
      cur_name = std::string(value);
    } else if (key == "is_a") {
      cur_parents.emplace_back(value);
    }
  }
  CTXRANK_RETURN_NOT_OK(flush_term());

  for (const PendingEdge& e : edges) {
    auto it = by_accession.find(e.parent_accession);
    if (it == by_accession.end()) {
      return Status::InvalidArgument("is_a references unknown term " +
                                     e.parent_accession);
    }
    CTXRANK_RETURN_NOT_OK(onto.AddIsA(e.child, it->second));
  }
  CTXRANK_RETURN_NOT_OK(onto.Finalize());
  return onto;
}

Status WriteOboFile(const Ontology& onto, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::IoError("cannot open " + path + " for writing");
  f << WriteObo(onto);
  return f.good() ? Status::OK() : Status::IoError("write failed: " + path);
}

Result<Ontology> LoadOboFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ParseObo(ss.str());
}

}  // namespace ctxrank::ontology
