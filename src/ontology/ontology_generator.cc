#include "ontology/ontology_generator.h"

#include <array>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_set>

#include "common/string_util.h"

namespace ctxrank::ontology {

namespace {

// Genomics-flavoured lexicon. Child names are built by prefixing modifiers
// or substituting heads, mimicking how GO specializes term names.
constexpr std::array<std::string_view, 24> kHeads = {
    "activity",     "binding",     "transport",    "signaling",
    "regulation",   "biogenesis",  "assembly",     "localization",
    "metabolism",   "catabolism",  "biosynthesis", "repair",
    "replication",  "transcription", "translation", "splicing",
    "folding",      "degradation", "secretion",    "adhesion",
    "differentiation", "proliferation", "apoptosis", "phosphorylation",
};

constexpr std::array<std::string_view, 28> kEntities = {
    "protein",     "dna",        "rna",        "mrna",
    "trna",        "chromatin",  "histone",    "kinase",
    "phosphatase", "polymerase", "helicase",   "ligase",
    "receptor",    "channel",    "membrane",   "ribosome",
    "nucleotide",  "peptide",    "lipid",      "glucose",
    "calcium",     "zinc",       "ubiquitin",  "proteasome",
    "telomere",    "centromere", "spindle",    "cytoskeleton",
};

constexpr std::array<std::string_view, 20> kModifiers = {
    "positive",      "negative",    "nuclear",     "mitochondrial",
    "cytoplasmic",   "extracellular", "intracellular", "transmembrane",
    "early",         "late",        "general",     "specific",
    "alternative",   "constitutive", "inducible",  "basal",
    "embryonic",     "somatic",     "oxidative",   "hydrolytic",
};

std::string Accession(size_t n) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "SGO:%07zu", n);
  return buf;
}

}  // namespace

Result<Ontology> GenerateOntology(const OntologyGeneratorOptions& options) {
  if (options.num_roots <= 0) {
    return Status::InvalidArgument("num_roots must be positive");
  }
  if (options.max_depth < 1) {
    return Status::InvalidArgument("max_depth must be >= 1");
  }
  Rng rng(options.seed);
  Ontology onto;
  std::unordered_set<std::string> used_names;

  struct Pending {
    TermId id;
    int depth;
  };
  std::deque<Pending> frontier;

  auto make_root_name = [&](int i) {
    std::string name = std::string(kEntities[static_cast<size_t>(i) % kEntities.size()]) +
                       " " + std::string(kHeads[static_cast<size_t>(i) % kHeads.size()]);
    return name;
  };

  for (int r = 0; r < options.num_roots; ++r) {
    std::string name = make_root_name(r);
    while (!used_names.insert(name).second) name += " process";
    const TermId id = onto.AddTerm(Accession(onto.size()), name);
    frontier.push_back({id, 1});
  }

  // Breadth-first growth so every level fills before the cap hits.
  while (!frontier.empty() && onto.size() < options.max_terms) {
    const Pending cur = frontier.front();
    frontier.pop_front();
    if (cur.depth >= options.max_depth) continue;
    const double leaf_prob =
        options.leaf_bias * static_cast<double>(cur.depth);
    if (cur.depth > 1 && rng.NextBernoulli(leaf_prob)) continue;
    // Branching decays with depth: deeper contexts are smaller (paper §1).
    const double mean =
        options.mean_branching * (1.0 - 0.06 * static_cast<double>(cur.depth));
    int n_children = 1 + rng.NextPoisson(mean > 0.5 ? mean - 1.0 : 0.0);
    for (int c = 0; c < n_children && onto.size() < options.max_terms; ++c) {
      // Derive the child name from the parent name, GO-style.
      const std::string& parent_name = onto.term(cur.id).name;
      std::string name;
      const int kind = static_cast<int>(rng.NextBounded(4));
      switch (kind) {
        case 0:  // modifier prefix: "nuclear <parent>"
          name = std::string(kModifiers[rng.NextBounded(kModifiers.size())]) +
                 " " + parent_name;
          break;
        case 1:  // entity prefix: "histone <parent>"
          name = std::string(kEntities[rng.NextBounded(kEntities.size())]) +
                 " " + parent_name;
          break;
        case 2:  // "regulation of <parent>"
          name = std::string(kHeads[rng.NextBounded(kHeads.size())]) +
                 " of " + parent_name;
          break;
        default:  // entity + new head, keeping one parent word
          name = std::string(kEntities[rng.NextBounded(kEntities.size())]) +
                 " " + std::string(kHeads[rng.NextBounded(kHeads.size())]);
          break;
      }
      // Keep names bounded: GO names rarely exceed ~8 words.
      if (SplitWhitespace(name).size() > 8) {
        name = std::string(kModifiers[rng.NextBounded(kModifiers.size())]) +
               " " + std::string(kEntities[rng.NextBounded(kEntities.size())]) +
               " " + std::string(kHeads[rng.NextBounded(kHeads.size())]);
      }
      if (!used_names.insert(name).second) continue;  // Skip duplicate names.
      const TermId child = onto.AddTerm(Accession(onto.size()), name);
      Status st = onto.AddIsA(child, cur.id);
      if (!st.ok()) return st;
      // Occasional second parent from the already-generated pool, at a
      // strictly shallower depth to preserve acyclicity.
      if (rng.NextBernoulli(options.multi_parent_prob) && child > 0) {
        const TermId other = static_cast<TermId>(rng.NextBounded(child));
        if (other != cur.id && !onto.term(other).name.empty()) {
          // AddIsA(child, other) cannot create a cycle: `other` predates
          // `child` and edges always point old -> new.
          st = onto.AddIsA(child, other);
          if (!st.ok()) return st;
        }
      }
      frontier.push_back({child, cur.depth + 1});
    }
  }

  Status st = onto.Finalize();
  if (!st.ok()) return st;
  return onto;
}

}  // namespace ctxrank::ontology
