#include "ontology/mini_go.h"

#include <cassert>

namespace ctxrank::ontology {

Ontology MakeMiniGo() {
  Ontology onto;
  struct Spec {
    const char* acc;
    const char* name;
    const char* parent1;  // accession or nullptr
    const char* parent2;
  };
  // Level structure mirrors the paper's §5.2 worked example around
  // "RNA polymerase II transcription factor activity" (called X there).
  static const Spec kSpecs[] = {
      {"GO:0003674", "molecular function", nullptr, nullptr},
      {"GO:0008150", "biological process", nullptr, nullptr},
      {"GO:0005488", "binding", "GO:0003674", nullptr},
      {"GO:0003824", "catalytic activity", "GO:0003674", nullptr},
      {"GO:0030528", "transcription regulator activity", "GO:0003674",
       nullptr},
      {"GO:0003676", "nucleic acid binding", "GO:0005488", nullptr},
      {"GO:0003677", "dna binding", "GO:0003676", nullptr},
      {"GO:0003723", "rna binding", "GO:0003676", nullptr},
      {"GO:0016740", "transferase activity", "GO:0003824", nullptr},
      {"GO:0016301", "kinase activity", "GO:0016740", nullptr},
      {"GO:0004672", "protein kinase activity", "GO:0016301", nullptr},
      {"GO:0004674", "protein serine threonine kinase activity",
       "GO:0004672", nullptr},
      {"GO:0003700", "transcription factor activity", "GO:0030528",
       "GO:0003677"},
      {"GO:0003702", "rna polymerase ii transcription factor activity",
       "GO:0003700", nullptr},
      // X's four children, quoted in the paper.
      {"GO:0016251", "general rna polymerase ii transcription factor "
                     "activity", "GO:0003702", nullptr},
      {"GO:0016252", "nonspecific rna polymerase ii transcription factor "
                     "activity", "GO:0003702", nullptr},
      {"GO:0003705", "rna polymerase ii transcription factor activity "
                     "enhancer binding", "GO:0003702", nullptr},
      {"GO:0003704", "specific rna polymerase ii transcription factor "
                     "activity", "GO:0003702", nullptr},
      // X's siblings, quoted in the paper.
      {"GO:0003712", "transcription cofactor activity", "GO:0003700",
       nullptr},
      {"GO:0003711", "transcription elongation regulator activity",
       "GO:0003700", nullptr},
      // Biological-process branch for breadth.
      {"GO:0008152", "metabolism", "GO:0008150", nullptr},
      {"GO:0006139", "nucleic acid metabolism", "GO:0008152", nullptr},
      {"GO:0006350", "transcription", "GO:0006139", nullptr},
      {"GO:0006351", "transcription dna dependent", "GO:0006350", nullptr},
      {"GO:0006355", "regulation of transcription", "GO:0006350", nullptr},
      {"GO:0045941", "positive regulation of transcription", "GO:0006355",
       nullptr},
      {"GO:0016481", "negative regulation of transcription", "GO:0006355",
       nullptr},
      {"GO:0006260", "dna replication", "GO:0006139", nullptr},
      {"GO:0006281", "dna repair", "GO:0006139", nullptr},
      {"GO:0006412", "protein biosynthesis", "GO:0008152", nullptr},
      {"GO:0006457", "protein folding", "GO:0008152", nullptr},
      {"GO:0016310", "phosphorylation", "GO:0008152", nullptr},
      {"GO:0006468", "protein amino acid phosphorylation", "GO:0016310",
       nullptr},
  };
  for (const Spec& s : kSpecs) {
    onto.AddTerm(s.acc, s.name);
  }
  for (const Spec& s : kSpecs) {
    const TermId child = onto.FindByAccession(s.acc);
    for (const char* parent : {s.parent1, s.parent2}) {
      if (parent == nullptr) continue;
      const TermId p = onto.FindByAccession(parent);
      assert(p != kInvalidTerm);
      const Status st = onto.AddIsA(child, p);
      assert(st.ok());
      (void)st;
    }
  }
  const Status st = onto.Finalize();
  assert(st.ok());
  (void)st;
  return onto;
}

}  // namespace ctxrank::ontology
