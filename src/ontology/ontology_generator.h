// Synthetic GO-like ontology generation. Substitutes for the real Gene
// Ontology (see DESIGN.md §1): produces a rooted DAG whose term names are
// multi-word phrases built from a genomics lexicon, with child names derived
// from parent names the way GO specializes terms ("transcription factor
// activity" -> "RNA polymerase II transcription factor activity"). This
// lexical structure is what the paper's pattern-based score function feeds
// on, so the generator preserves it deliberately.
#ifndef CTXRANK_ONTOLOGY_ONTOLOGY_GENERATOR_H_
#define CTXRANK_ONTOLOGY_ONTOLOGY_GENERATOR_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "ontology/ontology.h"

namespace ctxrank::ontology {

struct OntologyGeneratorOptions {
  uint64_t seed = 42;
  /// Number of root terms (GO has 3: BP, MF, CC).
  int num_roots = 3;
  /// Maximum depth (paper's experiments use levels 3/5/7, so >= 8).
  int max_depth = 8;
  /// Expected number of children of a non-leaf term; decays with depth.
  double mean_branching = 3.0;
  /// Probability a term is a leaf, grows linearly with depth toward 1.
  double leaf_bias = 0.12;
  /// Probability a non-root term gets a second parent (GO is a DAG).
  double multi_parent_prob = 0.08;
  /// Hard cap on total terms; generation stops growing when reached.
  size_t max_terms = 600;
};

/// Generates a finalized ontology. Returns an error only if the options are
/// degenerate (e.g. no roots).
Result<Ontology> GenerateOntology(const OntologyGeneratorOptions& options);

}  // namespace ctxrank::ontology

#endif  // CTXRANK_ONTOLOGY_ONTOLOGY_GENERATOR_H_
