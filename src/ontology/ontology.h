// A Gene-Ontology-like term hierarchy: a rooted DAG of terms with is-a
// edges. Contexts in the paper are exactly these terms; the search system
// needs term levels, ancestor/descendant closures, and Resnik-style
// information content.
#ifndef CTXRANK_ONTOLOGY_ONTOLOGY_H_
#define CTXRANK_ONTOLOGY_ONTOLOGY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ctxrank::ontology {

using TermId = uint32_t;

inline constexpr TermId kInvalidTerm = UINT32_MAX;

/// \brief One ontology term ("context" in the paper's vocabulary).
struct Term {
  TermId id = kInvalidTerm;
  /// Stable accession like "GO:0003700".
  std::string accession;
  /// Human-readable name, e.g. "RNA polymerase II transcription factor
  /// activity". Term-name words seed the pattern-based score function.
  std::string name;
  std::vector<TermId> parents;
  std::vector<TermId> children;
  /// 1 + shortest is-a distance to a root; the paper's "Level 1 = root".
  int level = 0;
};

/// \brief Immutable term DAG with precomputed levels, descendant counts and
/// information content. Construct via AddTerm/AddIsA then Finalize().
class Ontology {
 public:
  Ontology() = default;

  Ontology(Ontology&&) = default;
  Ontology& operator=(Ontology&&) = default;
  Ontology(const Ontology&) = delete;
  Ontology& operator=(const Ontology&) = delete;

  /// Adds a term; returns its id. Accessions must be unique (checked in
  /// Finalize).
  TermId AddTerm(std::string accession, std::string name);

  /// Declares `child` is-a `parent`. Both must be valid ids.
  Status AddIsA(TermId child, TermId parent);

  /// Validates (unique accessions, acyclicity, ids in range), computes
  /// levels, descendant counts and information content. Must be called
  /// before any query below; returns an error and leaves the ontology
  /// unusable on invalid input.
  Status Finalize();

  bool finalized() const { return finalized_; }
  size_t size() const { return terms_.size(); }
  const Term& term(TermId id) const { return terms_[id]; }
  const std::vector<Term>& terms() const { return terms_; }

  /// Id for an accession, or kInvalidTerm.
  TermId FindByAccession(std::string_view accession) const;
  /// Id for an exact name, or kInvalidTerm.
  TermId FindByName(std::string_view name) const;

  const std::vector<TermId>& roots() const { return roots_; }

  /// All proper descendants of `id` (excluding `id`), unordered.
  std::vector<TermId> Descendants(TermId id) const;
  /// All proper ancestors of `id` (excluding `id`), unordered.
  std::vector<TermId> Ancestors(TermId id) const;
  /// True if `anc` == `desc` or `anc` is a proper ancestor of `desc`.
  bool IsAncestorOrSelf(TermId anc, TermId desc) const;

  /// Number of proper descendants (precomputed).
  size_t DescendantCount(TermId id) const { return descendant_counts_[id]; }

  /// Relative size p(C) = (#descendants + 1) / #terms. The paper defines
  /// p(C) with the bare descendant count, which is 0 for leaves and makes
  /// I(C) infinite; we include the term itself (the standard Resnik
  /// convention) so leaves get the maximal *finite* information content.
  double RelativeSize(TermId id) const;

  /// Information content I(C) = log(1 / p(C)).
  double InformationContent(TermId id) const;

  /// RateOfDecay(anc, desc) = I(anc) / I(desc), the paper's damping factor
  /// for papers inherited from an ancestor context. In [0, 1] whenever
  /// `anc` is a true ancestor (ancestors are less informative). Returns 1
  /// when anc == desc or I(desc) == 0.
  double RateOfDecay(TermId ancestor, TermId descendant) const;

  /// Terms at exactly `level` (level 1 = roots).
  std::vector<TermId> TermsAtLevel(int level) const;

  /// Maximum level present.
  int max_level() const { return max_level_; }

 private:
  std::vector<Term> terms_;
  std::vector<TermId> roots_;
  std::vector<size_t> descendant_counts_;
  std::vector<double> information_content_;
  int max_level_ = 0;
  bool finalized_ = false;
};

}  // namespace ctxrank::ontology

#endif  // CTXRANK_ONTOLOGY_ONTOLOGY_H_
