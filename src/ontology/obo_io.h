// Minimal OBO-flavoured flat-file reader/writer so ontologies can be
// persisted and real GO subsets can be loaded. Supports the [Term] stanza
// subset: id, name, is_a (by accession).
#ifndef CTXRANK_ONTOLOGY_OBO_IO_H_
#define CTXRANK_ONTOLOGY_OBO_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "ontology/ontology.h"

namespace ctxrank::ontology {

/// Serializes to OBO-like text ([Term] stanzas, parents as `is_a:` lines).
std::string WriteObo(const Ontology& onto);

/// Parses OBO-like text produced by WriteObo (or a hand-written subset) and
/// finalizes the resulting ontology.
Result<Ontology> ParseObo(std::string_view content);

/// File variants.
Status WriteOboFile(const Ontology& onto, const std::string& path);
Result<Ontology> LoadOboFile(const std::string& path);

}  // namespace ctxrank::ontology

#endif  // CTXRANK_ONTOLOGY_OBO_IO_H_
