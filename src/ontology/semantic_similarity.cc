#include "ontology/semantic_similarity.h"

#include <algorithm>
#include <unordered_set>

namespace ctxrank::ontology {

TermId MostInformativeCommonAncestor(const Ontology& onto, TermId a,
                                     TermId b) {
  if (a == b) return a;
  std::vector<TermId> anc_a = onto.Ancestors(a);
  anc_a.push_back(a);
  std::vector<TermId> anc_b = onto.Ancestors(b);
  anc_b.push_back(b);
  const std::unordered_set<TermId> set_b(anc_b.begin(), anc_b.end());
  TermId best = kInvalidTerm;
  double best_ic = -1.0;
  for (TermId t : anc_a) {
    if (set_b.count(t) == 0) continue;
    const double ic = onto.InformationContent(t);
    if (ic > best_ic || (ic == best_ic && t < best)) {
      best_ic = ic;
      best = t;
    }
  }
  return best;
}

double ResnikSimilarity(const Ontology& onto, TermId a, TermId b) {
  const TermId mica = MostInformativeCommonAncestor(onto, a, b);
  if (mica == kInvalidTerm) return 0.0;
  return onto.InformationContent(mica);
}

double LinSimilarity(const Ontology& onto, TermId a, TermId b) {
  const double denom =
      onto.InformationContent(a) + onto.InformationContent(b);
  if (denom <= 0.0) return 0.0;
  return 2.0 * ResnikSimilarity(onto, a, b) / denom;
}

std::vector<TermId> MostSimilarTerms(const Ontology& onto, TermId seed,
                                     size_t k) {
  std::vector<std::pair<double, TermId>> scored;
  scored.reserve(onto.size());
  for (TermId t = 0; t < onto.size(); ++t) {
    if (t == seed) continue;
    const double sim = LinSimilarity(onto, seed, t);
    if (sim > 0.0) scored.push_back({sim, t});
  }
  std::sort(scored.begin(), scored.end(), [](const auto& x, const auto& y) {
    if (x.first != y.first) return x.first > y.first;
    return x.second < y.second;
  });
  if (scored.size() > k) scored.resize(k);
  std::vector<TermId> out;
  out.reserve(scored.size());
  for (const auto& [sim, t] : scored) out.push_back(t);
  return out;
}

}  // namespace ctxrank::ontology
