#include "eval/ir_metrics.h"

#include <unordered_set>

namespace ctxrank::eval {

double Recall(const std::vector<corpus::PaperId>& results,
              const std::vector<corpus::PaperId>& answer_set) {
  if (answer_set.empty()) return 0.0;
  const std::unordered_set<corpus::PaperId> truth(answer_set.begin(),
                                                  answer_set.end());
  size_t hits = 0;
  for (corpus::PaperId p : results) {
    if (truth.count(p) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

double FScore(double precision, double recall, double beta) {
  const double b2 = beta * beta;
  const double denom = b2 * precision + recall;
  if (denom <= 0.0) return 0.0;
  return (1.0 + b2) * precision * recall / denom;
}

double AveragePrecision(const std::vector<corpus::PaperId>& ranked_results,
                        const std::vector<corpus::PaperId>& answer_set) {
  if (answer_set.empty()) return 0.0;
  const std::unordered_set<corpus::PaperId> truth(answer_set.begin(),
                                                  answer_set.end());
  size_t hits = 0;
  double sum = 0.0;
  for (size_t rank = 0; rank < ranked_results.size(); ++rank) {
    if (truth.count(ranked_results[rank]) == 0) continue;
    ++hits;
    sum += static_cast<double>(hits) / static_cast<double>(rank + 1);
  }
  return sum / static_cast<double>(truth.size());
}

}  // namespace ctxrank::eval
