// The experiment "world": one call builds the entire §4 setup — synthetic
// ontology, synthetic corpus, analyzed views, citation graph, both context
// paper sets, and every prestige score function — so benches, examples and
// integration tests share identical machinery.
#ifndef CTXRANK_EVAL_EXPERIMENT_H_
#define CTXRANK_EVAL_EXPERIMENT_H_

#include <memory>
#include <optional>

#include "common/stage_timer.h"
#include "common/status.h"
#include "context/assignment_builders.h"
#include "context/citation_prestige.h"
#include "context/pattern_prestige.h"
#include "context/prestige.h"
#include "context/text_prestige.h"
#include "corpus/corpus_generator.h"
#include "corpus/full_text_search.h"
#include "corpus/tokenized_corpus.h"
#include "graph/citation_graph.h"
#include "ontology/ontology.h"
#include "ontology/ontology_generator.h"

namespace ctxrank::eval {

struct WorldConfig {
  ontology::OntologyGeneratorOptions ontology;
  corpus::CorpusGeneratorOptions corpus;
  context::TextAssignmentOptions text_assignment;
  context::PatternAssignmentOptions pattern_assignment;
  context::CitationPrestigeOptions citation;
  context::TextPrestigeOptions text;
  /// Text scores computed *on the pattern-based set* (used by the §5.1
  /// overlap analysis) stay per-context: the hierarchy max rule belongs to
  /// each function's own search assignment, and lifting would couple the
  /// text ranking to the pattern set's roll-up structure.
  context::TextPrestigeOptions text_on_pattern_set;
  context::PatternPrestigeOptions pattern;
  /// Contexts smaller than this are excluded from experiment aggregates
  /// (the paper's "<= 100 papers on 72k" rule, scaled: ~0.1-0.5% of the
  /// corpus).
  size_t min_context_size = 25;
  /// Build the pattern-based context paper set and its scores.
  bool build_pattern_set = true;
  /// Build the text-based context paper set and its scores.
  bool build_text_set = true;
  /// When set, World::Build records per-stage wall/CPU time here (the
  /// timer must outlive the Build call; World does not own it).
  StageTimer* stage_timer = nullptr;

  /// Sets the thread count of every parallel stage at once (corpus text
  /// pass and the three prestige engines). 0 = hardware concurrency.
  /// Results are bitwise identical for any value (see docs/PERFORMANCE.md).
  void SetNumThreads(size_t num_threads);

  /// A small configuration for unit/integration tests (seconds to build).
  static WorldConfig Small();
  /// The default experiment scale (a few minutes for the full bench suite).
  static WorldConfig Default();
};

/// \brief Everything the experiments touch. Non-movable: internal objects
/// hold pointers to siblings; create via Build() and keep behind the
/// returned unique_ptr.
class World {
 public:
  static Result<std::unique_ptr<World>> Build(const WorldConfig& config);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  const WorldConfig& config() const { return config_; }
  const ontology::Ontology& onto() const { return onto_; }
  const corpus::Corpus& corpus() const { return corpus_; }
  const corpus::TokenizedCorpus& tc() const { return *tc_; }
  const corpus::FullTextSearch& fts() const { return *fts_; }
  const graph::CitationGraph& graph() const { return *graph_; }
  const context::AuthorSimilarity& authors() const { return *authors_; }

  // --- text-based context paper set (§4) + its two score functions ---
  const context::ContextAssignment& text_set() const { return *text_set_; }
  const context::PrestigeScores& text_set_citation_scores() const {
    return *text_set_citation_;
  }
  const context::PrestigeScores& text_set_text_scores() const {
    return *text_set_text_;
  }

  // --- pattern-based context paper set (§4) + its score functions ---
  const context::ContextAssignment& pattern_set() const {
    return pattern_result_->assignment;
  }
  const context::PatternAssignmentResult& pattern_result() const {
    return *pattern_result_;
  }
  const context::PrestigeScores& pattern_set_citation_scores() const {
    return *pattern_set_citation_;
  }
  const context::PrestigeScores& pattern_set_pattern_scores() const {
    return *pattern_set_pattern_;
  }
  /// Text scores on the pattern set exist only for contexts with a
  /// representative (paper §4: 5,632 of the contexts).
  const context::PrestigeScores& pattern_set_text_scores() const {
    return *pattern_set_text_;
  }

 private:
  World() = default;

  WorldConfig config_;
  ontology::Ontology onto_;
  corpus::Corpus corpus_;
  std::optional<corpus::TokenizedCorpus> tc_;
  std::optional<corpus::FullTextSearch> fts_;
  std::optional<graph::CitationGraph> graph_;
  std::optional<context::AuthorSimilarity> authors_;
  std::optional<context::ContextAssignment> text_set_;
  std::optional<context::PrestigeScores> text_set_citation_;
  std::optional<context::PrestigeScores> text_set_text_;
  std::optional<context::PatternAssignmentResult> pattern_result_;
  std::optional<context::PrestigeScores> pattern_set_citation_;
  std::optional<context::PrestigeScores> pattern_set_pattern_;
  std::optional<context::PrestigeScores> pattern_set_text_;
};

}  // namespace ctxrank::eval

#endif  // CTXRANK_EVAL_EXPERIMENT_H_
