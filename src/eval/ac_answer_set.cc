#include "eval/ac_answer_set.h"

#include <algorithm>

#include "graph/pagerank.h"

namespace ctxrank::eval {

AcAnswerSetBuilder::AcAnswerSetBuilder(const corpus::TokenizedCorpus& tc,
                                       const corpus::FullTextSearch& search,
                                       const graph::CitationGraph& graph,
                                       AcAnswerSetOptions options)
    : tc_(&tc), search_(&search), graph_(&graph), options_(options) {
  // One global PageRank over the full citation graph.
  std::vector<corpus::PaperId> all(tc.size());
  for (corpus::PaperId p = 0; p < tc.size(); ++p) all[p] = p;
  const graph::InducedSubgraph whole(graph, all);
  auto pr = graph::ComputePageRank(whole);
  global_scores_ = pr.ok() ? std::move(pr).value().scores
                           : std::vector<double>(tc.size(), 0.0);
  // Quantile cutoff for "high citation score".
  if (!global_scores_.empty()) {
    std::vector<double> sorted(global_scores_);
    std::sort(sorted.begin(), sorted.end());
    const size_t idx = std::min(
        sorted.size() - 1,
        static_cast<size_t>(options_.citation_score_quantile *
                            static_cast<double>(sorted.size())));
    score_cutoff_ = sorted[idx];
  }
}

std::vector<corpus::PaperId> AcAnswerSetBuilder::Build(
    std::string_view query) const {
  // --- seed: high-threshold keyword search ---
  std::vector<corpus::FullTextHit> seed_hits =
      search_->Search(query, options_.seed_threshold);
  if (seed_hits.size() > options_.max_seed) {
    seed_hits.resize(options_.max_seed);
  }
  if (seed_hits.empty()) return {};
  std::vector<corpus::PaperId> answer;
  answer.reserve(seed_hits.size());
  for (const auto& h : seed_hits) answer.push_back(h.paper);

  // --- text-based expansion: centroid of the seed set ---
  text::SparseVector centroid;
  for (const auto& h : seed_hits) {
    centroid.AddScaled(tc_->FullVector(h.paper), 1.0);
  }
  centroid.L2Normalize();
  for (const corpus::FullTextHit& h :
       search_->Search(centroid, options_.text_expansion_threshold)) {
    answer.push_back(h.paper);
  }

  // --- citation expansion: <= 2 hops from the seed set, high global
  //     citation score ---
  const std::vector<corpus::PaperId> seeds(answer.begin(),
                                           answer.begin() +
                                               static_cast<long>(
                                                   seed_hits.size()));
  for (corpus::PaperId p :
       graph_->ReachableWithin(seeds, options_.citation_hops)) {
    if (global_scores_[p] >= score_cutoff_) answer.push_back(p);
  }

  std::sort(answer.begin(), answer.end());
  answer.erase(std::unique(answer.begin(), answer.end()), answer.end());
  return answer;
}

}  // namespace ctxrank::eval
