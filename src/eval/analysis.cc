#include "eval/analysis.h"

#include <algorithm>

#include "common/stats.h"
#include "eval/metrics.h"
#include "eval/table.h"

namespace ctxrank::eval {

SeparabilitySummary AnalyzeSeparability(
    const ontology::Ontology& onto,
    const context::ContextAssignment& assignment,
    const context::PrestigeScores& scores,
    const SeparabilityAnalysisOptions& options) {
  SeparabilitySummary summary;
  summary.bucket_width = options.bucket_width;
  std::vector<double> counts(options.buckets, 0.0);
  std::vector<double> sds;
  for (ontology::TermId t :
       assignment.ContextsWithAtLeast(options.min_context_size)) {
    if (options.level != 0 && onto.term(t).level != options.level) continue;
    if (!scores.HasScores(t)) continue;
    const double sd = NormalizedSeparabilitySd(scores.Scores(t));
    sds.push_back(sd);
    size_t b = static_cast<size_t>(sd / options.bucket_width);
    if (b >= options.buckets) b = options.buckets - 1;
    counts[b] += 1.0;
  }
  summary.contexts = sds.size();
  summary.mean_sd = Mean(sds);
  summary.median_sd = Median(sds);
  summary.histogram_pct.resize(options.buckets, 0.0);
  if (!sds.empty()) {
    for (size_t b = 0; b < options.buckets; ++b) {
      summary.histogram_pct[b] =
          100.0 * counts[b] / static_cast<double>(sds.size());
    }
  }
  return summary;
}

std::vector<OverlapCell> AnalyzeOverlapByLevel(
    const ontology::Ontology& onto,
    const context::ContextAssignment& assignment,
    const context::PrestigeScores& a, const context::PrestigeScores& b,
    const std::vector<int>& levels, const std::vector<double>& k_fractions,
    size_t min_context_size) {
  std::vector<OverlapCell> cells;
  for (int level : levels) {
    for (double kf : k_fractions) {
      OverlapCell cell;
      cell.level = level;
      cell.k_fraction = kf;
      double sum = 0.0;
      for (ontology::TermId t :
           assignment.ContextsWithAtLeast(min_context_size)) {
        if (onto.term(t).level != level) continue;
        if (!a.HasScores(t) || !b.HasScores(t)) continue;
        const size_t size = assignment.Members(t).size();
        const size_t k = std::max<size_t>(
            1, static_cast<size_t>(kf * static_cast<double>(size)));
        sum += TopKOverlapRatio(a.Scores(t), b.Scores(t), k);
        ++cell.contexts;
      }
      if (cell.contexts > 0) {
        cell.mean_overlap = sum / static_cast<double>(cell.contexts);
        cells.push_back(cell);
      }
    }
  }
  return cells;
}

std::string RenderSeparability(const SeparabilitySummary& summary) {
  Table table({"SD range", "% contexts"});
  for (size_t b = 0; b < summary.histogram_pct.size(); ++b) {
    table.AddRow(
        {Table::Cell(summary.bucket_width * static_cast<double>(b), 0) +
             "-" +
             Table::Cell(summary.bucket_width * static_cast<double>(b + 1),
                         0),
         Table::Cell(summary.histogram_pct[b], 1) + "%"});
  }
  std::string out = table.ToString();
  out += "contexts: " + std::to_string(summary.contexts) +
         ", mean SD: " + Table::Cell(summary.mean_sd, 2) +
         ", median SD: " + Table::Cell(summary.median_sd, 2) + "\n";
  return out;
}

}  // namespace ctxrank::eval
