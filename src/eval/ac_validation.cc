#include "eval/ac_validation.h"

#include <algorithm>
#include <unordered_set>

#include "eval/ir_metrics.h"
#include "eval/metrics.h"

namespace ctxrank::eval {

std::vector<corpus::PaperId> GroundTruthPapers(
    const ontology::Ontology& onto, const corpus::Corpus& corpus,
    ontology::TermId term) {
  std::unordered_set<ontology::TermId> wanted;
  wanted.insert(term);
  for (ontology::TermId d : onto.Descendants(term)) wanted.insert(d);
  std::vector<corpus::PaperId> out;
  for (const corpus::Paper& p : corpus.papers()) {
    for (ontology::TermId t : p.true_topics) {
      if (wanted.count(t) > 0) {
        out.push_back(p.id);
        break;
      }
    }
  }
  return out;
}

AcValidationResult ValidateAcAnswerSets(
    const ontology::Ontology& onto, const corpus::Corpus& corpus,
    const AcAnswerSetBuilder& builder,
    const std::vector<EvalQuery>& queries) {
  AcValidationResult result;
  double precision_sum = 0, recall_sum = 0, f1_sum = 0;
  double ac_size_sum = 0, truth_size_sum = 0;
  for (const EvalQuery& q : queries) {
    const auto ac = builder.Build(q.text);
    if (ac.empty()) {
      ++result.empty_queries;
      continue;
    }
    const auto truth = GroundTruthPapers(onto, corpus, q.target_term);
    const double precision = Precision(ac, truth);
    const double recall = Recall(ac, truth);
    precision_sum += precision;
    recall_sum += recall;
    f1_sum += FScore(precision, recall);
    ac_size_sum += static_cast<double>(ac.size());
    truth_size_sum += static_cast<double>(truth.size());
    ++result.answered_queries;
  }
  if (result.answered_queries > 0) {
    const double n = static_cast<double>(result.answered_queries);
    result.mean_precision = precision_sum / n;
    result.mean_recall = recall_sum / n;
    result.mean_f1 = f1_sum / n;
    result.mean_ac_size = ac_size_sum / n;
    result.mean_truth_size = truth_size_sum / n;
  }
  return result;
}

}  // namespace ctxrank::eval
