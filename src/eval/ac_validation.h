// Validation of the AC-answer-set methodology itself. The paper manually
// verified AC-answer sets "for some sample queries" (§2); the synthetic
// corpus lets us do better — every paper carries generator ground-truth
// topics, so the AC set of a query targeting term t can be scored against
// the true set of papers about t (or t's descendants).
#ifndef CTXRANK_EVAL_AC_VALIDATION_H_
#define CTXRANK_EVAL_AC_VALIDATION_H_

#include <vector>

#include "corpus/corpus.h"
#include "eval/ac_answer_set.h"
#include "eval/query_generator.h"
#include "ontology/ontology.h"

namespace ctxrank::eval {

struct AcValidationResult {
  /// Queries whose AC set was non-empty (the rest are skipped in the
  /// paper's experiments as well).
  size_t answered_queries = 0;
  size_t empty_queries = 0;
  /// Mean precision/recall/F1 of AC sets against ground-truth topic
  /// membership (papers whose true topics include the target term or any
  /// of its descendants).
  double mean_precision = 0.0;
  double mean_recall = 0.0;
  double mean_f1 = 0.0;
  /// Mean AC-set / ground-truth-set sizes.
  double mean_ac_size = 0.0;
  double mean_truth_size = 0.0;
};

/// Papers whose generator ground-truth topics include `term` or one of its
/// descendants (sorted, unique).
std::vector<corpus::PaperId> GroundTruthPapers(
    const ontology::Ontology& onto, const corpus::Corpus& corpus,
    ontology::TermId term);

/// Scores the AC sets produced by `builder` for `queries` against ground
/// truth.
AcValidationResult ValidateAcAnswerSets(
    const ontology::Ontology& onto, const corpus::Corpus& corpus,
    const AcAnswerSetBuilder& builder,
    const std::vector<EvalQuery>& queries);

}  // namespace ctxrank::eval

#endif  // CTXRANK_EVAL_AC_VALIDATION_H_
