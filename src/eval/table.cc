#include "eval/table.h"

#include <algorithm>

#include "common/string_util.h"

namespace ctxrank::eval {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Cell(double v, int digits) {
  return FormatDouble(v, digits);
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out;
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size() + 2, ' ');
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
    return out;
  };
  std::string out = render_row(header_);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append(c + 1 < widths.size() ? 2 : 0, ' ');
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace ctxrank::eval
