#include "eval/experiment.h"

#include <optional>

namespace ctxrank::eval {

namespace {

context::TextPrestigeOptions PatternSetTextDefaults() {
  context::TextPrestigeOptions o;
  o.hierarchical_max = false;
  return o;
}

/// Optionally-armed stage scope: times the enclosing block when the config
/// carries a StageTimer, does nothing otherwise.
std::optional<StageTimer::Scope> TimeStage(StageTimer* timer,
                                           const char* stage) {
  if (timer == nullptr) return std::nullopt;
  return timer->Time(stage);
}

}  // namespace

void WorldConfig::SetNumThreads(size_t num_threads) {
  corpus.num_threads = num_threads;
  citation.num_threads = num_threads;
  text.num_threads = num_threads;
  text_on_pattern_set.num_threads = num_threads;
  pattern.num_threads = num_threads;
}

WorldConfig WorldConfig::Small() {
  WorldConfig c;
  c.text_on_pattern_set = PatternSetTextDefaults();
  c.ontology.max_terms = 120;
  c.ontology.max_depth = 7;
  c.corpus.num_papers = 1200;
  c.corpus.num_authors = 300;
  c.corpus.body_len = 120;
  c.corpus.abstract_len = 60;
  c.min_context_size = 10;
  return c;
}

WorldConfig WorldConfig::Default() {
  WorldConfig c;
  c.text_on_pattern_set = PatternSetTextDefaults();
  c.ontology.max_terms = 450;
  c.ontology.max_depth = 9;
  c.ontology.leaf_bias = 0.06;
  c.ontology.mean_branching = 3.4;
  c.corpus.num_papers = 6000;
  c.min_context_size = 25;
  return c;
}

Result<std::unique_ptr<World>> World::Build(const WorldConfig& config) {
  StageTimer* timer = config.stage_timer;
  std::unique_ptr<World> w(new World());
  w->config_ = config;
  // 1. Ontology.
  {
    auto t = TimeStage(timer, "generate ontology");
    auto onto = ontology::GenerateOntology(config.ontology);
    if (!onto.ok()) return onto.status();
    w->onto_ = std::move(onto).value();
  }
  // 2. Corpus.
  {
    auto t = TimeStage(timer, "generate corpus");
    auto corpus = corpus::GenerateCorpus(w->onto_, config.corpus);
    if (!corpus.ok()) return corpus.status();
    w->corpus_ = std::move(corpus).value();
  }
  // 3. Analyzed views and infrastructure.
  {
    auto t = TimeStage(timer, "analyze corpus (tokenize + index + graph)");
    w->tc_.emplace(w->corpus_);
    w->fts_.emplace(*w->tc_);
    w->graph_.emplace(w->corpus_);
    w->authors_.emplace(w->corpus_);
  }
  // 4. Text-based context paper set + scores (§4).
  if (config.build_text_set) {
    {
      auto t = TimeStage(timer, "task 1a: text-based assignment");
      auto text_set = context::BuildTextBasedAssignment(
          *w->tc_, w->onto_, *w->fts_, config.text_assignment);
      if (!text_set.ok()) return text_set.status();
      w->text_set_.emplace(std::move(text_set).value());
    }
    {
      auto t = TimeStage(timer, "task 2a: citation prestige (text set)");
      auto cit = context::ComputeCitationPrestige(
          w->onto_, *w->text_set_, *w->graph_, config.citation);
      if (!cit.ok()) return cit.status();
      w->text_set_citation_.emplace(std::move(cit).value());
    }
    {
      auto t = TimeStage(timer, "task 2b: text prestige (text set)");
      auto txt = context::ComputeTextPrestige(w->onto_, *w->text_set_,
                                              *w->tc_, *w->graph_,
                                              *w->authors_, config.text);
      if (!txt.ok()) return txt.status();
      w->text_set_text_.emplace(std::move(txt).value());
    }
  }
  // 5. Pattern-based context paper set + scores (§4).
  if (config.build_pattern_set) {
    {
      auto t = TimeStage(timer, "task 1b: pattern-based assignment");
      auto pat = context::BuildPatternBasedAssignment(
          *w->tc_, w->onto_, config.pattern_assignment);
      if (!pat.ok()) return pat.status();
      w->pattern_result_.emplace(std::move(pat).value());
    }
    {
      auto t = TimeStage(timer, "task 2a: citation prestige (pattern set)");
      auto cit = context::ComputeCitationPrestige(
          w->onto_, w->pattern_result_->assignment, *w->graph_,
          config.citation);
      if (!cit.ok()) return cit.status();
      w->pattern_set_citation_.emplace(std::move(cit).value());
    }
    {
      auto t = TimeStage(timer, "task 2c: pattern prestige (pattern set)");
      auto ps = context::ComputePatternPrestige(
          w->onto_, *w->pattern_result_, config.pattern);
      if (!ps.ok()) return ps.status();
      w->pattern_set_pattern_.emplace(std::move(ps).value());
    }
    {
      auto t = TimeStage(timer, "task 2b: text prestige (pattern set)");
      auto txt = context::ComputeTextPrestige(
          w->onto_, w->pattern_result_->assignment, *w->tc_, *w->graph_,
          *w->authors_, config.text_on_pattern_set);
      if (!txt.ok()) return txt.status();
      w->pattern_set_text_.emplace(std::move(txt).value());
    }
  }
  return w;
}

}  // namespace ctxrank::eval
