#include "eval/experiment.h"

namespace ctxrank::eval {

namespace {

context::TextPrestigeOptions PatternSetTextDefaults() {
  context::TextPrestigeOptions o;
  o.hierarchical_max = false;
  return o;
}

}  // namespace

WorldConfig WorldConfig::Small() {
  WorldConfig c;
  c.text_on_pattern_set = PatternSetTextDefaults();
  c.ontology.max_terms = 120;
  c.ontology.max_depth = 7;
  c.corpus.num_papers = 1200;
  c.corpus.num_authors = 300;
  c.corpus.body_len = 120;
  c.corpus.abstract_len = 60;
  c.min_context_size = 10;
  return c;
}

WorldConfig WorldConfig::Default() {
  WorldConfig c;
  c.text_on_pattern_set = PatternSetTextDefaults();
  c.ontology.max_terms = 450;
  c.ontology.max_depth = 9;
  c.ontology.leaf_bias = 0.06;
  c.ontology.mean_branching = 3.4;
  c.corpus.num_papers = 6000;
  c.min_context_size = 25;
  return c;
}

Result<std::unique_ptr<World>> World::Build(const WorldConfig& config) {
  std::unique_ptr<World> w(new World());
  w->config_ = config;
  // 1. Ontology.
  auto onto = ontology::GenerateOntology(config.ontology);
  if (!onto.ok()) return onto.status();
  w->onto_ = std::move(onto).value();
  // 2. Corpus.
  auto corpus = corpus::GenerateCorpus(w->onto_, config.corpus);
  if (!corpus.ok()) return corpus.status();
  w->corpus_ = std::move(corpus).value();
  // 3. Analyzed views and infrastructure.
  w->tc_.emplace(w->corpus_);
  w->fts_.emplace(*w->tc_);
  w->graph_.emplace(w->corpus_);
  w->authors_.emplace(w->corpus_);
  // 4. Text-based context paper set + scores (§4).
  if (config.build_text_set) {
    auto text_set = context::BuildTextBasedAssignment(
        *w->tc_, w->onto_, *w->fts_, config.text_assignment);
    if (!text_set.ok()) return text_set.status();
    w->text_set_.emplace(std::move(text_set).value());
    auto cit = context::ComputeCitationPrestige(w->onto_, *w->text_set_,
                                                *w->graph_, config.citation);
    if (!cit.ok()) return cit.status();
    w->text_set_citation_.emplace(std::move(cit).value());
    auto txt = context::ComputeTextPrestige(w->onto_, *w->text_set_, *w->tc_,
                                            *w->graph_, *w->authors_,
                                            config.text);
    if (!txt.ok()) return txt.status();
    w->text_set_text_.emplace(std::move(txt).value());
  }
  // 5. Pattern-based context paper set + scores (§4).
  if (config.build_pattern_set) {
    auto pat = context::BuildPatternBasedAssignment(*w->tc_, w->onto_,
                                                    config.pattern_assignment);
    if (!pat.ok()) return pat.status();
    w->pattern_result_.emplace(std::move(pat).value());
    auto cit = context::ComputeCitationPrestige(
        w->onto_, w->pattern_result_->assignment, *w->graph_,
        config.citation);
    if (!cit.ok()) return cit.status();
    w->pattern_set_citation_.emplace(std::move(cit).value());
    auto ps = context::ComputePatternPrestige(w->onto_, *w->pattern_result_,
                                              config.pattern);
    if (!ps.ok()) return ps.status();
    w->pattern_set_pattern_.emplace(std::move(ps).value());
    auto txt = context::ComputeTextPrestige(
        w->onto_, w->pattern_result_->assignment, *w->tc_, *w->graph_,
        *w->authors_, config.text_on_pattern_set);
    if (!txt.ok()) return txt.status();
    w->pattern_set_text_.emplace(std::move(txt).value());
  }
  return w;
}

}  // namespace ctxrank::eval
