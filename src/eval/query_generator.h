// Evaluation query synthesis — the substitute for the paper's ~120 search
// terms taken from non-GO classification systems (TIGR roles) manually
// mapped to GO terms (§5.1). Queries are paraphrases of ontology term
// names: related to, but not identical with, the context labels, exactly
// the relationship the TIGR->GO mapping provides.
#ifndef CTXRANK_EVAL_QUERY_GENERATOR_H_
#define CTXRANK_EVAL_QUERY_GENERATOR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "context/context_assignment.h"
#include "corpus/tokenized_corpus.h"
#include "ontology/ontology.h"

namespace ctxrank::eval {

struct EvalQuery {
  std::string text;
  /// The GO term this query targets (its TIGR-role mapping, so to speak).
  ontology::TermId target_term;
};

struct QueryGeneratorOptions {
  uint64_t seed = 99;
  size_t num_queries = 120;
  /// Only target contexts with at least this many assigned papers.
  size_t min_context_size = 20;
  /// Only target terms at this level or deeper (root labels are useless
  /// queries).
  int min_level = 2;
  /// Probability each term-name word enters the query.
  double name_word_keep = 0.85;
  /// Extra words drawn from the target's evidence-paper titles. TIGR role
  /// descriptions are a sentence long, so queries carry several topical
  /// words beyond the GO term itself.
  int extra_words = 4;
};

/// Generates paraphrase queries over the contexts of `assignment`.
std::vector<EvalQuery> GenerateQueries(
    const ontology::Ontology& onto, const corpus::TokenizedCorpus& tc,
    const context::ContextAssignment& assignment,
    const QueryGeneratorOptions& options = {});

}  // namespace ctxrank::eval

#endif  // CTXRANK_EVAL_QUERY_GENERATOR_H_
