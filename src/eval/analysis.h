// Reusable implementations of the paper's §5 analyses — separability
// distributions (overall and per level) and pairwise top-k% overlap per
// level — as library functions, so benches, the CLI and downstream users
// compute them identically.
#ifndef CTXRANK_EVAL_ANALYSIS_H_
#define CTXRANK_EVAL_ANALYSIS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "context/context_assignment.h"
#include "context/prestige.h"
#include "ontology/ontology.h"

namespace ctxrank::eval {

struct SeparabilitySummary {
  /// Contexts that carried scores and passed the size filter.
  size_t contexts = 0;
  double mean_sd = 0.0;
  double median_sd = 0.0;
  /// Percentage of contexts per SD bucket [0,width), [width,2·width), ...
  std::vector<double> histogram_pct;
  double bucket_width = 5.0;
};

struct SeparabilityAnalysisOptions {
  size_t min_context_size = 25;
  size_t buckets = 8;
  double bucket_width = 5.0;
  /// Restrict to contexts at exactly this ontology level (0 = all levels).
  int level = 0;
};

/// Separability (robust-normalized SD, §5.2) across the contexts of one
/// score function.
SeparabilitySummary AnalyzeSeparability(
    const ontology::Ontology& onto,
    const context::ContextAssignment& assignment,
    const context::PrestigeScores& scores,
    const SeparabilityAnalysisOptions& options = {});

struct OverlapCell {
  int level = 0;
  double k_fraction = 0.0;
  double mean_overlap = 0.0;
  size_t contexts = 0;
};

/// Average top-k% overlapping ratio between two score functions per
/// ontology level (§5.1 / Figure 5.3). Only contexts where *both*
/// functions have scores participate.
std::vector<OverlapCell> AnalyzeOverlapByLevel(
    const ontology::Ontology& onto,
    const context::ContextAssignment& assignment,
    const context::PrestigeScores& a, const context::PrestigeScores& b,
    const std::vector<int>& levels, const std::vector<double>& k_fractions,
    size_t min_context_size);

/// Renders a SeparabilitySummary histogram as an aligned text table.
std::string RenderSeparability(const SeparabilitySummary& summary);

}  // namespace ctxrank::eval

#endif  // CTXRANK_EVAL_ANALYSIS_H_
