// AC(artificially constructed)-answer sets (paper §2): the expert-free
// ground truth for precision experiments. Seed with a high-threshold
// keyword search, then expand (a) textually — papers close to the seed
// centroid — and (b) along citations — papers within two hops of the seed
// set that carry high global citation scores.
#ifndef CTXRANK_EVAL_AC_ANSWER_SET_H_
#define CTXRANK_EVAL_AC_ANSWER_SET_H_

#include <string_view>
#include <vector>

#include "corpus/full_text_search.h"
#include "corpus/tokenized_corpus.h"
#include "graph/citation_graph.h"

namespace ctxrank::eval {

struct AcAnswerSetOptions {
  /// Threshold of the seed keyword search ("high threshold", §2).
  double seed_threshold = 0.25;
  /// Cap on the seed set (strongest matches first).
  size_t max_seed = 150;
  /// Cosine-to-centroid threshold for the text-based expansion.
  double text_expansion_threshold = 0.25;
  /// Citation expansion hops ("paths of length at most 2", §2).
  int citation_hops = 2;
  /// A citation-expanded paper qualifies when its global citation score is
  /// in the top (1 - quantile) of all papers, e.g. 0.98 keeps the top 2%.
  /// Must be strict: within two hops of a seed set lies much of any
  /// citation graph, so a loose cutoff floods the answer set with
  /// globally popular papers (bench/validate_ac_answers quantifies this).
  double citation_score_quantile = 0.98;
};

/// \brief Builds AC-answer sets. Global citation scores (one PageRank over
/// the full corpus graph) are computed once at construction.
class AcAnswerSetBuilder {
 public:
  AcAnswerSetBuilder(const corpus::TokenizedCorpus& tc,
                     const corpus::FullTextSearch& search,
                     const graph::CitationGraph& graph,
                     AcAnswerSetOptions options = {});

  /// The AC-answer set for `query` (sorted, unique). Empty when even the
  /// seed search returns nothing.
  std::vector<corpus::PaperId> Build(std::string_view query) const;

  /// Global (whole-corpus) citation score of a paper, for tests.
  double GlobalCitationScore(corpus::PaperId p) const {
    return global_scores_[p];
  }

 private:
  const corpus::TokenizedCorpus* tc_;
  const corpus::FullTextSearch* search_;
  const graph::CitationGraph* graph_;
  AcAnswerSetOptions options_;
  std::vector<double> global_scores_;
  double score_cutoff_ = 0.0;
};

}  // namespace ctxrank::eval

#endif  // CTXRANK_EVAL_AC_ANSWER_SET_H_
