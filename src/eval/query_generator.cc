#include "eval/query_generator.h"

#include <algorithm>

#include "common/string_util.h"

namespace ctxrank::eval {

std::vector<EvalQuery> GenerateQueries(
    const ontology::Ontology& onto, const corpus::TokenizedCorpus& tc,
    const context::ContextAssignment& assignment,
    const QueryGeneratorOptions& options) {
  Rng rng(options.seed);
  // Candidate targets: populated, deep-enough contexts.
  std::vector<ontology::TermId> candidates;
  for (ontology::TermId t = 0; t < onto.size(); ++t) {
    if (onto.term(t).level < options.min_level) continue;
    if (assignment.Members(t).size() < options.min_context_size) continue;
    candidates.push_back(t);
  }
  std::vector<EvalQuery> queries;
  if (candidates.empty()) return queries;
  rng.Shuffle(candidates);
  for (size_t qi = 0; queries.size() < options.num_queries; ++qi) {
    if (qi >= candidates.size() * 4) break;  // Give up after a few passes.
    const ontology::TermId term = candidates[qi % candidates.size()];
    // Paraphrase: random subset of the term-name words...
    std::vector<std::string> words;
    for (const std::string& w : SplitWhitespace(onto.term(term).name)) {
      if (rng.NextBernoulli(options.name_word_keep)) words.push_back(w);
    }
    // ...plus a few words from the term's evidence-paper titles (topical
    // vocabulary a human searcher would use).
    const auto& evidence = tc.corpus().Evidence(term);
    for (int e = 0; e < options.extra_words && !evidence.empty(); ++e) {
      const corpus::PaperId p = evidence[rng.NextBounded(evidence.size())];
      const auto title_words =
          SplitWhitespace(tc.corpus().paper(p).title);
      if (!title_words.empty()) {
        words.push_back(title_words[rng.NextBounded(title_words.size())]);
      }
    }
    if (words.empty()) continue;
    rng.Shuffle(words);
    queries.push_back({Join(words, " "), term});
  }
  return queries;
}

}  // namespace ctxrank::eval
