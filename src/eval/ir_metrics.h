// Classic IR metrics beyond the paper's precision: recall (the paper's §2
// discusses and deliberately drops it — implemented here so the trade-off
// can be measured), F-score, and rank-aware average precision.
#ifndef CTXRANK_EVAL_IR_METRICS_H_
#define CTXRANK_EVAL_IR_METRICS_H_

#include <vector>

#include "corpus/paper.h"

namespace ctxrank::eval {

/// Recall_t = |S_t ∩ R_t| / |R_t|. 0 for an empty answer set.
double Recall(const std::vector<corpus::PaperId>& results,
              const std::vector<corpus::PaperId>& answer_set);

/// F_beta score from precision and recall (beta = 1 by default). 0 when
/// both are 0.
double FScore(double precision, double recall, double beta = 1.0);

/// Average precision of a *ranked* result list against an answer set:
/// mean of precision@rank over the ranks holding relevant papers, divided
/// by |answer set| (standard AP). 0 for an empty answer set.
double AveragePrecision(const std::vector<corpus::PaperId>& ranked_results,
                        const std::vector<corpus::PaperId>& answer_set);

}  // namespace ctxrank::eval

#endif  // CTXRANK_EVAL_IR_METRICS_H_
