#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/stats.h"

namespace ctxrank::eval {

double Precision(const std::vector<PaperId>& results,
                 const std::vector<PaperId>& answer_set) {
  if (results.empty()) return 0.0;
  const std::unordered_set<PaperId> truth(answer_set.begin(),
                                          answer_set.end());
  size_t hits = 0;
  for (PaperId p : results) {
    if (truth.count(p) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(results.size());
}

std::vector<size_t> TopKWithTies(std::span<const double> scores,
                                 size_t k) {
  std::vector<size_t> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  if (k == 0 || order.empty()) return {};
  if (k >= order.size()) return order;
  const double kth = scores[order[k - 1]];
  size_t end = k;
  while (end < order.size() && scores[order[end]] == kth) ++end;
  order.resize(end);
  return order;
}

double TopKOverlapRatio(std::span<const double> scores1,
                        std::span<const double> scores2, size_t k) {
  if (k == 0 || scores1.empty() || scores1.size() != scores2.size()) {
    return 0.0;
  }
  const std::vector<size_t> top1 = TopKWithTies(scores1, k);
  const std::vector<size_t> top2 = TopKWithTies(scores2, k);
  std::unordered_set<size_t> set1(top1.begin(), top1.end());
  size_t inter = 0;
  for (size_t i : top2) {
    if (set1.count(i) > 0) ++inter;
  }
  // Ties widen the sets; the paper then divides by the smaller set size
  // instead of k.
  const size_t denom =
      (top1.size() > k || top2.size() > k)
          ? std::min(top1.size(), top2.size())
          : k;
  return denom == 0 ? 0.0
                    : static_cast<double>(inter) / static_cast<double>(denom);
}

double SeparabilitySd(const std::vector<double>& scores, size_t ranges) {
  if (scores.empty() || ranges == 0) return 0.0;
  std::vector<size_t> counts(ranges, 0);
  for (double s : scores) {
    double clamped = std::clamp(s, 0.0, 1.0);
    size_t bucket = static_cast<size_t>(clamped * static_cast<double>(ranges));
    if (bucket >= ranges) bucket = ranges - 1;  // s == 1.0 case.
    ++counts[bucket];
  }
  const double expected = 100.0 / static_cast<double>(ranges);
  double acc = 0.0;
  for (size_t c : counts) {
    const double pct = 100.0 * static_cast<double>(c) /
                       static_cast<double>(scores.size());
    acc += (pct - expected) * (pct - expected);
  }
  return std::sqrt(acc / static_cast<double>(ranges));
}

double NormalizedSeparabilitySd(std::span<const double> scores,
                                size_t ranges) {
  // Robust [0,1] mapping: the span is [min, 95th percentile] with the top
  // tail clamped to 1. A plain min-max would let a single outlier (a
  // representative's self-similarity, a citation hub) crush the whole
  // distribution into the first range and saturate the SD.
  std::vector<double> copy(scores.begin(), scores.end());
  if (copy.empty()) return 0.0;
  std::vector<double> sorted(copy);
  std::sort(sorted.begin(), sorted.end());
  const double lo = sorted.front();
  const double hi = sorted[static_cast<size_t>(
      0.95 * static_cast<double>(sorted.size() - 1))];
  if (hi <= lo) {
    MinMaxNormalize(copy);
  } else {
    for (double& x : copy) {
      x = std::clamp((x - lo) / (hi - lo), 0.0, 1.0);
    }
  }
  return SeparabilitySd(copy, ranges);
}

size_t UniqueScoreCount(std::span<const double> scores, double epsilon) {
  std::vector<double> sorted(scores.begin(), scores.end());
  std::sort(sorted.begin(), sorted.end());
  size_t unique = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i == 0 || sorted[i] - sorted[i - 1] > epsilon) ++unique;
  }
  return unique;
}

}  // namespace ctxrank::eval
