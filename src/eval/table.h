// Fixed-width text tables for the bench binaries' figure/table output.
#ifndef CTXRANK_EVAL_TABLE_H_
#define CTXRANK_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace ctxrank::eval {

/// \brief Accumulates rows of string cells and renders an aligned table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `digits` decimals.
  static std::string Cell(double v, int digits = 3);

  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ctxrank::eval

#endif  // CTXRANK_EVAL_TABLE_H_
