// Evaluation metrics from the paper's §2 and §5.2: precision against an
// answer set, the tie-aware top-k% overlapping ratio between two score
// functions, and the separability standard deviation of a context's score
// distribution.
#ifndef CTXRANK_EVAL_METRICS_H_
#define CTXRANK_EVAL_METRICS_H_

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "corpus/paper.h"

namespace ctxrank::eval {

using corpus::PaperId;

/// Precision_t = |S_t ∩ R_t| / |S_t| (paper §2). `results` is S_t (the
/// papers the search returned at threshold t), `answer_set` is R_t; both
/// orders are irrelevant. Returns 0 when `results` is empty (the paper
/// counts such queries as precision 0, which is what drags the average
/// down at high t — see the Fig 5.1 discussion).
double Precision(const std::vector<PaperId>& results,
                 const std::vector<PaperId>& answer_set);

/// Top-k overlapping ratio between two score functions over the same
/// context (paper §2). `scores1`/`scores2` are aligned: element i of both
/// scores the same paper. `k` is an absolute count (the paper's
/// experiments use k = ceil(k% * context size)). Tie rule: every paper
/// tying the k-th score enters the top set, and the denominator becomes
/// min(|top1|, |top2|) when either set exceeds k.
double TopKOverlapRatio(std::span<const double> scores1,
                        std::span<const double> scores2, size_t k);
inline double TopKOverlapRatio(std::initializer_list<double> scores1,
                               std::initializer_list<double> scores2,
                               size_t k) {
  return TopKOverlapRatio(std::span<const double>(scores1.begin(),
                                                  scores1.size()),
                          std::span<const double>(scores2.begin(),
                                                  scores2.size()),
                          k);
}

/// Indices of the top-k scores including all ties with the k-th value.
std::vector<size_t> TopKWithTies(std::span<const double> scores, size_t k);
inline std::vector<size_t> TopKWithTies(std::initializer_list<double> scores,
                                        size_t k) {
  return TopKWithTies(std::span<const double>(scores.begin(), scores.size()),
                      k);
}

/// Separability standard deviation (paper §5.2): scores (already min-max
/// normalized to [0,1]) are divided into `ranges` equal ranges; the SD of
/// the per-range percentage around the uniform expectation 100/ranges is
/// returned. 0 is perfect separability; large values mean mass collapsed
/// into few ranges (e.g. many identical scores).
double SeparabilitySd(const std::vector<double>& scores, size_t ranges = 10);

/// SeparabilitySd over a min-max normalized copy of `scores` — the §5.2
/// analysis view ("assume papers in every context receive scores between
/// [0, 1]") applied to raw prestige scores.
double NormalizedSeparabilitySd(std::span<const double> scores,
                                size_t ranges = 10);

/// Number of distinct score values (PageRank on sparse subgraphs produces
/// few; the paper's §5.2 explanation for poor citation separability).
size_t UniqueScoreCount(std::span<const double> scores,
                        double epsilon = 1e-12);
inline size_t UniqueScoreCount(std::initializer_list<double> scores,
                               double epsilon = 1e-12) {
  return UniqueScoreCount(std::span<const double>(scores.begin(),
                                                  scores.size()),
                          epsilon);
}

}  // namespace ctxrank::eval

#endif  // CTXRANK_EVAL_METRICS_H_
