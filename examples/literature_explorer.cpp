// Literature explorer — the PubMed-style end-user scenario from the
// paper's introduction: the same keyword query answered by (a) a plain
// keyword engine (what PubMed did) and (b) context-based search under each
// of the three prestige functions, side by side. Also demonstrates saving
// and reloading the generated corpus and ontology.
//
// Run:  ./literature_explorer "dna repair" [workdir]
#include <cstdio>
#include <string>

#include "context/assignment_builders.h"
#include "context/citation_prestige.h"
#include "context/pattern_prestige.h"
#include "context/search_engine.h"
#include "context/text_prestige.h"
#include "corpus/corpus_io.h"
#include "eval/experiment.h"
#include "ontology/obo_io.h"

namespace ctxrank {
namespace {

int Run(int argc, char** argv) {
  const std::string query = argc > 1 ? argv[1] : "dna repair process";

  auto config = eval::WorldConfig::Small();
  auto world_result = eval::World::Build(config);
  if (!world_result.ok()) {
    std::fprintf(stderr, "world: %s\n",
                 world_result.status().ToString().c_str());
    return 1;
  }
  const eval::World& w = *world_result.value();

  // Persist the dataset so a follow-up run (or another tool) can reload it.
  if (argc > 2) {
    const std::string dir = argv[2];
    const Status obo = ontology::WriteOboFile(w.onto(), dir + "/onto.obo");
    const Status cps = corpus::SaveCorpus(w.corpus(), dir + "/corpus.txt");
    std::printf("[saved ontology: %s, corpus: %s]\n",
                obo.ToString().c_str(), cps.ToString().c_str());
  }

  // (a) Plain keyword baseline.
  std::printf("=== keyword search (PubMed-style baseline) ===\n");
  const auto base_hits = w.fts().Search(query, 0.10);
  std::printf("%zu papers above match 0.10; top 5:\n", base_hits.size());
  for (size_t i = 0; i < base_hits.size() && i < 5; ++i) {
    std::printf("  [%.3f] %s\n", base_hits[i].score,
                w.corpus().paper(base_hits[i].paper).title.c_str());
  }

  // (b) Context-based search with each prestige function.
  struct Engine {
    const char* name;
    const context::ContextAssignment* assignment;
    const context::PrestigeScores* scores;
  };
  const Engine engines[] = {
      {"citation prestige", &w.text_set(), &w.text_set_citation_scores()},
      {"text prestige", &w.text_set(), &w.text_set_text_scores()},
      {"pattern prestige", &w.pattern_set(),
       &w.pattern_set_pattern_scores()},
  };
  for (const Engine& e : engines) {
    const context::ContextSearchEngine engine(w.tc(), w.onto(),
                                              *e.assignment, *e.scores);
    const auto hits = engine.Search(query);
    std::printf("\n=== context-based search, %s ===\n", e.name);
    std::printf("%zu papers; top 5:\n", hits.size());
    for (size_t i = 0; i < hits.size() && i < 5; ++i) {
      std::printf("  [R=%.3f via \"%s\"] %s\n", hits[i].relevancy,
                  w.onto().term(hits[i].context).name.c_str(),
                  w.corpus().paper(hits[i].paper).title.c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace ctxrank

int main(int argc, char** argv) { return ctxrank::Run(argc, argv); }
