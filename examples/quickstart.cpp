// Quickstart: the whole context-based search pipeline in one file.
//
//   1. build (or load) an ontology — the context hierarchy;
//   2. build a corpus of papers;
//   3. assign papers to contexts and compute prestige scores;
//   4. search: route the query to contexts, rank by
//      R = w_p * prestige + w_m * match, merge.
//
// Run:  ./quickstart "kinase signaling"
#include <cstdio>
#include <string>

#include "context/assignment_builders.h"
#include "context/search_engine.h"
#include "context/text_prestige.h"
#include "corpus/corpus_generator.h"
#include "corpus/full_text_search.h"
#include "corpus/tokenized_corpus.h"
#include "graph/citation_graph.h"
#include "ontology/ontology_generator.h"

namespace ctxrank {
namespace {

int Run(int argc, char** argv) {
  const std::string query = argc > 1 ? argv[1] : "kinase signaling pathway";

  // 1. A GO-like ontology of ~150 terms (use ontology::LoadOboFile to read
  //    a real OBO subset instead).
  ontology::OntologyGeneratorOptions onto_opts;
  onto_opts.max_terms = 150;
  auto onto = ontology::GenerateOntology(onto_opts);
  if (!onto.ok()) {
    std::fprintf(stderr, "ontology: %s\n", onto.status().ToString().c_str());
    return 1;
  }

  // 2. A synthetic full-text corpus over it (use corpus::LoadCorpus for a
  //    saved corpus).
  corpus::CorpusGeneratorOptions corpus_opts;
  corpus_opts.num_papers = 2000;
  auto papers = corpus::GenerateCorpus(onto.value(), corpus_opts);
  if (!papers.ok()) {
    std::fprintf(stderr, "corpus: %s\n", papers.status().ToString().c_str());
    return 1;
  }

  // 3. Analyze text once, build the supporting structures...
  const corpus::TokenizedCorpus tc(papers.value());
  const corpus::FullTextSearch fts(tc);
  const graph::CitationGraph graph(papers.value());
  const context::AuthorSimilarity authors(papers.value());

  // ...assign papers to contexts (text-based strategy, §4 of the paper)...
  auto assignment =
      context::BuildTextBasedAssignment(tc, onto.value(), fts);
  if (!assignment.ok()) {
    std::fprintf(stderr, "assignment: %s\n",
                 assignment.status().ToString().c_str());
    return 1;
  }

  // ...and compute text-based prestige (swap in ComputeCitationPrestige or
  // ComputePatternPrestige to rank with the other score functions).
  auto prestige = context::ComputeTextPrestige(
      onto.value(), assignment.value(), tc, graph, authors);
  if (!prestige.ok()) {
    std::fprintf(stderr, "prestige: %s\n",
                 prestige.status().ToString().c_str());
    return 1;
  }

  // 4. Search.
  const context::ContextSearchEngine engine(tc, onto.value(),
                                            assignment.value(),
                                            prestige.value());
  std::printf("query: \"%s\"\n\nrouted to contexts:\n", query.c_str());
  for (const auto& cm : engine.SelectContexts(query, 5, 1e-9)) {
    std::printf("  [%.3f] %s (level %d, %zu papers)\n", cm.score,
                onto.value().term(cm.term).name.c_str(),
                onto.value().term(cm.term).level,
                assignment.value().Members(cm.term).size());
  }
  std::printf("\ntop results:\n");
  const auto hits = engine.Search(query);
  for (size_t i = 0; i < hits.size() && i < 10; ++i) {
    const auto& h = hits[i];
    std::printf("  %2zu. R=%.3f (prestige %.3f, match %.3f)  \"%s\"\n",
                i + 1, h.relevancy, h.prestige, h.match,
                papers.value().paper(h.paper).title.c_str());
  }
  if (hits.empty()) std::printf("  (no results)\n");
  return 0;
}

}  // namespace
}  // namespace ctxrank

int main(int argc, char** argv) { return ctxrank::Run(argc, argv); }
