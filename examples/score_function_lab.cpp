// Score-function lab: the paper's §5 analysis on a single context, up
// close. Builds the full experimental world, picks a mid-level context,
// and shows how the three prestige functions rank the *same* papers —
// their top-10 lists, pairwise top-k overlap and separability — so you can
// see the citation function's sparse-graph degeneracy with your own eyes.
//
// Run:  ./score_function_lab            (picks a context automatically)
//       ./score_function_lab "dna binding"   (term-name substring)
#include <algorithm>
#include <cstdio>
#include <string>

#include "eval/experiment.h"
#include "eval/metrics.h"
#include "graph/citation_graph.h"

namespace ctxrank {
namespace {

int Run(int argc, char** argv) {
  auto config = eval::WorldConfig::Small();
  auto world_result = eval::World::Build(config);
  if (!world_result.ok()) {
    std::fprintf(stderr, "world: %s\n",
                 world_result.status().ToString().c_str());
    return 1;
  }
  const eval::World& w = *world_result.value();

  // Pick the target context: by substring match if given, else the largest
  // mid-level context that all three functions scored.
  ontology::TermId target = ontology::kInvalidTerm;
  const std::string needle = argc > 1 ? argv[1] : "";
  size_t best_size = 0;
  for (ontology::TermId t = 0; t < w.onto().size(); ++t) {
    if (!w.pattern_set_citation_scores().HasScores(t) ||
        !w.pattern_set_text_scores().HasScores(t) ||
        !w.pattern_set_pattern_scores().HasScores(t)) {
      continue;
    }
    if (!needle.empty()) {
      if (w.onto().term(t).name.find(needle) != std::string::npos) {
        target = t;
        break;
      }
      continue;
    }
    const int level = w.onto().term(t).level;
    if (level < 3 || level > 5) continue;
    if (w.pattern_set().Members(t).size() > best_size) {
      best_size = w.pattern_set().Members(t).size();
      target = t;
    }
  }
  if (target == ontology::kInvalidTerm) {
    std::fprintf(stderr, "no matching context found\n");
    return 1;
  }

  const auto& members = w.pattern_set().Members(target);
  std::printf("context: \"%s\" (level %d, %zu papers)\n",
              w.onto().term(target).name.c_str(),
              w.onto().term(target).level, members.size());
  const graph::InducedSubgraph sub(w.graph(), members);
  std::printf("citation subgraph: %zu nodes, %zu edges, density %.4f\n\n",
              sub.size(), sub.num_edges(), sub.Density());

  struct Fn {
    const char* name;
    const context::PrestigeScores* scores;
  };
  const Fn fns[] = {
      {"citation", &w.pattern_set_citation_scores()},
      {"text", &w.pattern_set_text_scores()},
      {"pattern", &w.pattern_set_pattern_scores()},
  };

  for (const Fn& fn : fns) {
    const auto& scores = fn.scores->Scores(target);
    std::printf("--- %s-based prestige: separability SD %.2f, %zu unique "
                "values over %zu papers ---\n",
                fn.name, eval::NormalizedSeparabilitySd(scores),
                eval::UniqueScoreCount(scores, 1e-12), scores.size());
    const auto top = eval::TopKWithTies(scores, 5);
    for (size_t rank = 0; rank < top.size() && rank < 5; ++rank) {
      const corpus::PaperId p = members[top[rank]];
      std::printf("  %zu. [%.4f] %s\n", rank + 1, scores[top[rank]],
                  w.corpus().paper(p).title.c_str());
    }
    std::printf("\n");
  }

  std::printf("pairwise top-10%% overlap (paper §2):\n");
  const size_t k = std::max<size_t>(1, members.size() / 10);
  for (size_t a = 0; a < 3; ++a) {
    for (size_t b = a + 1; b < 3; ++b) {
      std::printf("  %s vs %s: %.3f\n", fns[a].name, fns[b].name,
                  eval::TopKOverlapRatio(fns[a].scores->Scores(target),
                                         fns[b].scores->Scores(target), k));
    }
  }
  return 0;
}

}  // namespace
}  // namespace ctxrank

int main(int argc, char** argv) { return ctxrank::Run(argc, argv); }
