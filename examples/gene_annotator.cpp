// Gene-annotation candidate finder — the use case behind the paper's
// pattern machinery (reference [4], "Annotating Genes Using Textual
// Patterns", PSB 2007): given a GO term with a handful of curated evidence
// papers, mine textual patterns from them and scan the whole corpus for
// other papers matching those patterns. Strong matches are candidate
// annotation sources a curator should read next.
//
// Run:  ./gene_annotator            (every term with evidence, summary)
//       ./gene_annotator 17         (details for term id 17)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "context/assignment_builders.h"
#include "corpus/corpus_generator.h"
#include "corpus/tokenized_corpus.h"
#include "ontology/ontology_generator.h"
#include "pattern/pattern_builder.h"
#include "pattern/pattern_matcher.h"
#include "pattern/pattern_scorer.h"

namespace ctxrank {
namespace {

int Run(int argc, char** argv) {
  // Build a small world.
  ontology::OntologyGeneratorOptions onto_opts;
  onto_opts.max_terms = 100;
  auto onto = ontology::GenerateOntology(onto_opts);
  if (!onto.ok()) return 1;
  corpus::CorpusGeneratorOptions corpus_opts;
  corpus_opts.num_papers = 1500;
  auto papers = corpus::GenerateCorpus(onto.value(), corpus_opts);
  if (!papers.ok()) return 1;
  const corpus::TokenizedCorpus tc(papers.value());
  const context::TermNameStats stats(onto.value(), tc);

  const long requested = argc > 1 ? std::strtol(argv[1], nullptr, 10) : -1;

  const pattern::PatternMatcher matcher(tc);
  const double corpus_size = static_cast<double>(tc.size());
  int shown = 0;
  for (ontology::TermId term = 0; term < onto.value().size(); ++term) {
    if (requested >= 0 && term != static_cast<ontology::TermId>(requested)) {
      continue;
    }
    const auto& evidence = papers.value().Evidence(term);
    if (evidence.empty()) continue;

    // Mine patterns from the term's evidence papers. Full variant: with
    // extended (side-/middle-joined) patterns.
    std::vector<std::vector<text::TermId>> training;
    for (corpus::PaperId p : evidence) {
      const auto tok = tc.AllTokens(p);
      training.emplace_back(tok.begin(), tok.end());
    }
    pattern::PatternBuilderOptions build_opts;
    build_opts.build_extended = true;
    auto patterns = pattern::BuildPatterns(training, stats.NameWords(term),
                                           build_opts);
    if (patterns.empty()) continue;

    // Score pattern confidence (§3.3 of the search paper).
    std::unordered_set<text::TermId> ctx_words(stats.NameWords(term).begin(),
                                               stats.NameWords(term).end());
    const pattern::PatternScorer scorer(
        [&](const std::vector<text::TermId>& middle) {
          std::vector<text::TermId> unique = middle;
          std::sort(unique.begin(), unique.end());
          unique.erase(std::unique(unique.begin(), unique.end()),
                       unique.end());
          return static_cast<double>(tc.PapersContainingAll(unique).size()) /
                 corpus_size;
        },
        [&](text::TermId word) {
          return ctx_words.count(word) > 0 ? stats.Selectivity(word) : 0.0;
        });
    scorer.ScoreAll(patterns);

    // Scan the corpus for candidates (excluding the evidence itself).
    struct Candidate {
      corpus::PaperId paper;
      double score;
    };
    std::vector<Candidate> candidates;
    for (corpus::PaperId p : matcher.CandidatePapers(patterns)) {
      if (std::find(evidence.begin(), evidence.end(), p) != evidence.end()) {
        continue;
      }
      const double s = matcher.ScorePaper(patterns, p);
      if (s > 0.0) candidates.push_back({p, s});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.score > b.score;
              });

    std::printf("term %u \"%s\": %zu patterns from %zu evidence papers, "
                "%zu candidates\n",
                term, onto.value().term(term).name.c_str(), patterns.size(),
                evidence.size(), candidates.size());
    if (requested >= 0) {
      std::printf("  strongest patterns:\n");
      std::vector<size_t> order(patterns.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return patterns[a].score > patterns[b].score;
      });
      for (size_t i = 0; i < order.size() && i < 5; ++i) {
        std::printf("    [%.2f] %s\n", patterns[order[i]].score,
                    PatternToString(patterns[order[i]], tc.vocabulary())
                        .c_str());
      }
      std::printf("  top annotation candidates:\n");
      for (size_t i = 0; i < candidates.size() && i < 8; ++i) {
        std::printf("    [%.2f] %s\n", candidates[i].score,
                    papers.value().paper(candidates[i].paper).title.c_str());
      }
    }
    if (++shown >= 15 && requested < 0) {
      std::printf("... (pass a term id for details)\n");
      break;
    }
  }
  return 0;
}

}  // namespace
}  // namespace ctxrank

int main(int argc, char** argv) { return ctxrank::Run(argc, argv); }
