
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/analyzer.cc" "src/text/CMakeFiles/ctxrank_text.dir/analyzer.cc.o" "gcc" "src/text/CMakeFiles/ctxrank_text.dir/analyzer.cc.o.d"
  "/root/repo/src/text/bm25.cc" "src/text/CMakeFiles/ctxrank_text.dir/bm25.cc.o" "gcc" "src/text/CMakeFiles/ctxrank_text.dir/bm25.cc.o.d"
  "/root/repo/src/text/inverted_index.cc" "src/text/CMakeFiles/ctxrank_text.dir/inverted_index.cc.o" "gcc" "src/text/CMakeFiles/ctxrank_text.dir/inverted_index.cc.o.d"
  "/root/repo/src/text/porter_stemmer.cc" "src/text/CMakeFiles/ctxrank_text.dir/porter_stemmer.cc.o" "gcc" "src/text/CMakeFiles/ctxrank_text.dir/porter_stemmer.cc.o.d"
  "/root/repo/src/text/sparse_vector.cc" "src/text/CMakeFiles/ctxrank_text.dir/sparse_vector.cc.o" "gcc" "src/text/CMakeFiles/ctxrank_text.dir/sparse_vector.cc.o.d"
  "/root/repo/src/text/stopwords.cc" "src/text/CMakeFiles/ctxrank_text.dir/stopwords.cc.o" "gcc" "src/text/CMakeFiles/ctxrank_text.dir/stopwords.cc.o.d"
  "/root/repo/src/text/tfidf.cc" "src/text/CMakeFiles/ctxrank_text.dir/tfidf.cc.o" "gcc" "src/text/CMakeFiles/ctxrank_text.dir/tfidf.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/ctxrank_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/ctxrank_text.dir/tokenizer.cc.o.d"
  "/root/repo/src/text/vocabulary.cc" "src/text/CMakeFiles/ctxrank_text.dir/vocabulary.cc.o" "gcc" "src/text/CMakeFiles/ctxrank_text.dir/vocabulary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ctxrank_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
