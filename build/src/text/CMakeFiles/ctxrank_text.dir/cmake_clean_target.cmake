file(REMOVE_RECURSE
  "libctxrank_text.a"
)
