file(REMOVE_RECURSE
  "CMakeFiles/ctxrank_text.dir/analyzer.cc.o"
  "CMakeFiles/ctxrank_text.dir/analyzer.cc.o.d"
  "CMakeFiles/ctxrank_text.dir/bm25.cc.o"
  "CMakeFiles/ctxrank_text.dir/bm25.cc.o.d"
  "CMakeFiles/ctxrank_text.dir/inverted_index.cc.o"
  "CMakeFiles/ctxrank_text.dir/inverted_index.cc.o.d"
  "CMakeFiles/ctxrank_text.dir/porter_stemmer.cc.o"
  "CMakeFiles/ctxrank_text.dir/porter_stemmer.cc.o.d"
  "CMakeFiles/ctxrank_text.dir/sparse_vector.cc.o"
  "CMakeFiles/ctxrank_text.dir/sparse_vector.cc.o.d"
  "CMakeFiles/ctxrank_text.dir/stopwords.cc.o"
  "CMakeFiles/ctxrank_text.dir/stopwords.cc.o.d"
  "CMakeFiles/ctxrank_text.dir/tfidf.cc.o"
  "CMakeFiles/ctxrank_text.dir/tfidf.cc.o.d"
  "CMakeFiles/ctxrank_text.dir/tokenizer.cc.o"
  "CMakeFiles/ctxrank_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/ctxrank_text.dir/vocabulary.cc.o"
  "CMakeFiles/ctxrank_text.dir/vocabulary.cc.o.d"
  "libctxrank_text.a"
  "libctxrank_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctxrank_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
