# Empty dependencies file for ctxrank_text.
# This may be replaced when dependencies are built.
