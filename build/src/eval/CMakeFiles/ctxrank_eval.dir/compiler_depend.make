# Empty compiler generated dependencies file for ctxrank_eval.
# This may be replaced when dependencies are built.
