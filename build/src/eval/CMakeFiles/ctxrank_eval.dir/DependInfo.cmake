
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/ac_answer_set.cc" "src/eval/CMakeFiles/ctxrank_eval.dir/ac_answer_set.cc.o" "gcc" "src/eval/CMakeFiles/ctxrank_eval.dir/ac_answer_set.cc.o.d"
  "/root/repo/src/eval/ac_validation.cc" "src/eval/CMakeFiles/ctxrank_eval.dir/ac_validation.cc.o" "gcc" "src/eval/CMakeFiles/ctxrank_eval.dir/ac_validation.cc.o.d"
  "/root/repo/src/eval/analysis.cc" "src/eval/CMakeFiles/ctxrank_eval.dir/analysis.cc.o" "gcc" "src/eval/CMakeFiles/ctxrank_eval.dir/analysis.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/eval/CMakeFiles/ctxrank_eval.dir/experiment.cc.o" "gcc" "src/eval/CMakeFiles/ctxrank_eval.dir/experiment.cc.o.d"
  "/root/repo/src/eval/ir_metrics.cc" "src/eval/CMakeFiles/ctxrank_eval.dir/ir_metrics.cc.o" "gcc" "src/eval/CMakeFiles/ctxrank_eval.dir/ir_metrics.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/ctxrank_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/ctxrank_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/query_generator.cc" "src/eval/CMakeFiles/ctxrank_eval.dir/query_generator.cc.o" "gcc" "src/eval/CMakeFiles/ctxrank_eval.dir/query_generator.cc.o.d"
  "/root/repo/src/eval/table.cc" "src/eval/CMakeFiles/ctxrank_eval.dir/table.cc.o" "gcc" "src/eval/CMakeFiles/ctxrank_eval.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ctxrank_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ctxrank_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/ctxrank_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/ctxrank_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ctxrank_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/ctxrank_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/context/CMakeFiles/ctxrank_context.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
