file(REMOVE_RECURSE
  "libctxrank_eval.a"
)
