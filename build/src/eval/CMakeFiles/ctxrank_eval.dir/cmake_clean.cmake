file(REMOVE_RECURSE
  "CMakeFiles/ctxrank_eval.dir/ac_answer_set.cc.o"
  "CMakeFiles/ctxrank_eval.dir/ac_answer_set.cc.o.d"
  "CMakeFiles/ctxrank_eval.dir/ac_validation.cc.o"
  "CMakeFiles/ctxrank_eval.dir/ac_validation.cc.o.d"
  "CMakeFiles/ctxrank_eval.dir/analysis.cc.o"
  "CMakeFiles/ctxrank_eval.dir/analysis.cc.o.d"
  "CMakeFiles/ctxrank_eval.dir/experiment.cc.o"
  "CMakeFiles/ctxrank_eval.dir/experiment.cc.o.d"
  "CMakeFiles/ctxrank_eval.dir/ir_metrics.cc.o"
  "CMakeFiles/ctxrank_eval.dir/ir_metrics.cc.o.d"
  "CMakeFiles/ctxrank_eval.dir/metrics.cc.o"
  "CMakeFiles/ctxrank_eval.dir/metrics.cc.o.d"
  "CMakeFiles/ctxrank_eval.dir/query_generator.cc.o"
  "CMakeFiles/ctxrank_eval.dir/query_generator.cc.o.d"
  "CMakeFiles/ctxrank_eval.dir/table.cc.o"
  "CMakeFiles/ctxrank_eval.dir/table.cc.o.d"
  "libctxrank_eval.a"
  "libctxrank_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctxrank_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
