file(REMOVE_RECURSE
  "libctxrank_pattern.a"
)
