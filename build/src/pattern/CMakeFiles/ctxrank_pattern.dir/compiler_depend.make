# Empty compiler generated dependencies file for ctxrank_pattern.
# This may be replaced when dependencies are built.
