
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pattern/pattern.cc" "src/pattern/CMakeFiles/ctxrank_pattern.dir/pattern.cc.o" "gcc" "src/pattern/CMakeFiles/ctxrank_pattern.dir/pattern.cc.o.d"
  "/root/repo/src/pattern/pattern_builder.cc" "src/pattern/CMakeFiles/ctxrank_pattern.dir/pattern_builder.cc.o" "gcc" "src/pattern/CMakeFiles/ctxrank_pattern.dir/pattern_builder.cc.o.d"
  "/root/repo/src/pattern/pattern_matcher.cc" "src/pattern/CMakeFiles/ctxrank_pattern.dir/pattern_matcher.cc.o" "gcc" "src/pattern/CMakeFiles/ctxrank_pattern.dir/pattern_matcher.cc.o.d"
  "/root/repo/src/pattern/pattern_scorer.cc" "src/pattern/CMakeFiles/ctxrank_pattern.dir/pattern_scorer.cc.o" "gcc" "src/pattern/CMakeFiles/ctxrank_pattern.dir/pattern_scorer.cc.o.d"
  "/root/repo/src/pattern/phrase_miner.cc" "src/pattern/CMakeFiles/ctxrank_pattern.dir/phrase_miner.cc.o" "gcc" "src/pattern/CMakeFiles/ctxrank_pattern.dir/phrase_miner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ctxrank_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ctxrank_text.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/ctxrank_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/ctxrank_ontology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
