file(REMOVE_RECURSE
  "CMakeFiles/ctxrank_pattern.dir/pattern.cc.o"
  "CMakeFiles/ctxrank_pattern.dir/pattern.cc.o.d"
  "CMakeFiles/ctxrank_pattern.dir/pattern_builder.cc.o"
  "CMakeFiles/ctxrank_pattern.dir/pattern_builder.cc.o.d"
  "CMakeFiles/ctxrank_pattern.dir/pattern_matcher.cc.o"
  "CMakeFiles/ctxrank_pattern.dir/pattern_matcher.cc.o.d"
  "CMakeFiles/ctxrank_pattern.dir/pattern_scorer.cc.o"
  "CMakeFiles/ctxrank_pattern.dir/pattern_scorer.cc.o.d"
  "CMakeFiles/ctxrank_pattern.dir/phrase_miner.cc.o"
  "CMakeFiles/ctxrank_pattern.dir/phrase_miner.cc.o.d"
  "libctxrank_pattern.a"
  "libctxrank_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctxrank_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
