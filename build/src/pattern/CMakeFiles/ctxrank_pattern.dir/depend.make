# Empty dependencies file for ctxrank_pattern.
# This may be replaced when dependencies are built.
