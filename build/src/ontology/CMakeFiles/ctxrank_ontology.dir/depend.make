# Empty dependencies file for ctxrank_ontology.
# This may be replaced when dependencies are built.
