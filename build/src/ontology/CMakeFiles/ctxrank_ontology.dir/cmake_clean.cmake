file(REMOVE_RECURSE
  "CMakeFiles/ctxrank_ontology.dir/mini_go.cc.o"
  "CMakeFiles/ctxrank_ontology.dir/mini_go.cc.o.d"
  "CMakeFiles/ctxrank_ontology.dir/obo_io.cc.o"
  "CMakeFiles/ctxrank_ontology.dir/obo_io.cc.o.d"
  "CMakeFiles/ctxrank_ontology.dir/ontology.cc.o"
  "CMakeFiles/ctxrank_ontology.dir/ontology.cc.o.d"
  "CMakeFiles/ctxrank_ontology.dir/ontology_generator.cc.o"
  "CMakeFiles/ctxrank_ontology.dir/ontology_generator.cc.o.d"
  "CMakeFiles/ctxrank_ontology.dir/semantic_similarity.cc.o"
  "CMakeFiles/ctxrank_ontology.dir/semantic_similarity.cc.o.d"
  "libctxrank_ontology.a"
  "libctxrank_ontology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctxrank_ontology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
