
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ontology/mini_go.cc" "src/ontology/CMakeFiles/ctxrank_ontology.dir/mini_go.cc.o" "gcc" "src/ontology/CMakeFiles/ctxrank_ontology.dir/mini_go.cc.o.d"
  "/root/repo/src/ontology/obo_io.cc" "src/ontology/CMakeFiles/ctxrank_ontology.dir/obo_io.cc.o" "gcc" "src/ontology/CMakeFiles/ctxrank_ontology.dir/obo_io.cc.o.d"
  "/root/repo/src/ontology/ontology.cc" "src/ontology/CMakeFiles/ctxrank_ontology.dir/ontology.cc.o" "gcc" "src/ontology/CMakeFiles/ctxrank_ontology.dir/ontology.cc.o.d"
  "/root/repo/src/ontology/ontology_generator.cc" "src/ontology/CMakeFiles/ctxrank_ontology.dir/ontology_generator.cc.o" "gcc" "src/ontology/CMakeFiles/ctxrank_ontology.dir/ontology_generator.cc.o.d"
  "/root/repo/src/ontology/semantic_similarity.cc" "src/ontology/CMakeFiles/ctxrank_ontology.dir/semantic_similarity.cc.o" "gcc" "src/ontology/CMakeFiles/ctxrank_ontology.dir/semantic_similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ctxrank_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
