file(REMOVE_RECURSE
  "libctxrank_ontology.a"
)
