
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/corpus.cc" "src/corpus/CMakeFiles/ctxrank_corpus.dir/corpus.cc.o" "gcc" "src/corpus/CMakeFiles/ctxrank_corpus.dir/corpus.cc.o.d"
  "/root/repo/src/corpus/corpus_generator.cc" "src/corpus/CMakeFiles/ctxrank_corpus.dir/corpus_generator.cc.o" "gcc" "src/corpus/CMakeFiles/ctxrank_corpus.dir/corpus_generator.cc.o.d"
  "/root/repo/src/corpus/corpus_io.cc" "src/corpus/CMakeFiles/ctxrank_corpus.dir/corpus_io.cc.o" "gcc" "src/corpus/CMakeFiles/ctxrank_corpus.dir/corpus_io.cc.o.d"
  "/root/repo/src/corpus/full_text_search.cc" "src/corpus/CMakeFiles/ctxrank_corpus.dir/full_text_search.cc.o" "gcc" "src/corpus/CMakeFiles/ctxrank_corpus.dir/full_text_search.cc.o.d"
  "/root/repo/src/corpus/snippet.cc" "src/corpus/CMakeFiles/ctxrank_corpus.dir/snippet.cc.o" "gcc" "src/corpus/CMakeFiles/ctxrank_corpus.dir/snippet.cc.o.d"
  "/root/repo/src/corpus/tokenized_corpus.cc" "src/corpus/CMakeFiles/ctxrank_corpus.dir/tokenized_corpus.cc.o" "gcc" "src/corpus/CMakeFiles/ctxrank_corpus.dir/tokenized_corpus.cc.o.d"
  "/root/repo/src/corpus/word_pool.cc" "src/corpus/CMakeFiles/ctxrank_corpus.dir/word_pool.cc.o" "gcc" "src/corpus/CMakeFiles/ctxrank_corpus.dir/word_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ctxrank_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/ctxrank_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ctxrank_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
