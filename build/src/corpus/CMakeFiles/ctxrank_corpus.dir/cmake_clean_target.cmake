file(REMOVE_RECURSE
  "libctxrank_corpus.a"
)
