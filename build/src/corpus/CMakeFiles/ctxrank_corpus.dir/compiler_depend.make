# Empty compiler generated dependencies file for ctxrank_corpus.
# This may be replaced when dependencies are built.
