file(REMOVE_RECURSE
  "CMakeFiles/ctxrank_corpus.dir/corpus.cc.o"
  "CMakeFiles/ctxrank_corpus.dir/corpus.cc.o.d"
  "CMakeFiles/ctxrank_corpus.dir/corpus_generator.cc.o"
  "CMakeFiles/ctxrank_corpus.dir/corpus_generator.cc.o.d"
  "CMakeFiles/ctxrank_corpus.dir/corpus_io.cc.o"
  "CMakeFiles/ctxrank_corpus.dir/corpus_io.cc.o.d"
  "CMakeFiles/ctxrank_corpus.dir/full_text_search.cc.o"
  "CMakeFiles/ctxrank_corpus.dir/full_text_search.cc.o.d"
  "CMakeFiles/ctxrank_corpus.dir/snippet.cc.o"
  "CMakeFiles/ctxrank_corpus.dir/snippet.cc.o.d"
  "CMakeFiles/ctxrank_corpus.dir/tokenized_corpus.cc.o"
  "CMakeFiles/ctxrank_corpus.dir/tokenized_corpus.cc.o.d"
  "CMakeFiles/ctxrank_corpus.dir/word_pool.cc.o"
  "CMakeFiles/ctxrank_corpus.dir/word_pool.cc.o.d"
  "libctxrank_corpus.a"
  "libctxrank_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctxrank_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
