
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/context/assignment_builders.cc" "src/context/CMakeFiles/ctxrank_context.dir/assignment_builders.cc.o" "gcc" "src/context/CMakeFiles/ctxrank_context.dir/assignment_builders.cc.o.d"
  "/root/repo/src/context/author_similarity.cc" "src/context/CMakeFiles/ctxrank_context.dir/author_similarity.cc.o" "gcc" "src/context/CMakeFiles/ctxrank_context.dir/author_similarity.cc.o.d"
  "/root/repo/src/context/citation_prestige.cc" "src/context/CMakeFiles/ctxrank_context.dir/citation_prestige.cc.o" "gcc" "src/context/CMakeFiles/ctxrank_context.dir/citation_prestige.cc.o.d"
  "/root/repo/src/context/context_assignment.cc" "src/context/CMakeFiles/ctxrank_context.dir/context_assignment.cc.o" "gcc" "src/context/CMakeFiles/ctxrank_context.dir/context_assignment.cc.o.d"
  "/root/repo/src/context/context_io.cc" "src/context/CMakeFiles/ctxrank_context.dir/context_io.cc.o" "gcc" "src/context/CMakeFiles/ctxrank_context.dir/context_io.cc.o.d"
  "/root/repo/src/context/cross_context_prestige.cc" "src/context/CMakeFiles/ctxrank_context.dir/cross_context_prestige.cc.o" "gcc" "src/context/CMakeFiles/ctxrank_context.dir/cross_context_prestige.cc.o.d"
  "/root/repo/src/context/pattern_prestige.cc" "src/context/CMakeFiles/ctxrank_context.dir/pattern_prestige.cc.o" "gcc" "src/context/CMakeFiles/ctxrank_context.dir/pattern_prestige.cc.o.d"
  "/root/repo/src/context/prestige.cc" "src/context/CMakeFiles/ctxrank_context.dir/prestige.cc.o" "gcc" "src/context/CMakeFiles/ctxrank_context.dir/prestige.cc.o.d"
  "/root/repo/src/context/search_engine.cc" "src/context/CMakeFiles/ctxrank_context.dir/search_engine.cc.o" "gcc" "src/context/CMakeFiles/ctxrank_context.dir/search_engine.cc.o.d"
  "/root/repo/src/context/text_prestige.cc" "src/context/CMakeFiles/ctxrank_context.dir/text_prestige.cc.o" "gcc" "src/context/CMakeFiles/ctxrank_context.dir/text_prestige.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ctxrank_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ctxrank_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/ctxrank_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/ctxrank_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ctxrank_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/ctxrank_pattern.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
