# Empty dependencies file for ctxrank_context.
# This may be replaced when dependencies are built.
