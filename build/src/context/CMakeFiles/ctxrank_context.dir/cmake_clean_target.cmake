file(REMOVE_RECURSE
  "libctxrank_context.a"
)
