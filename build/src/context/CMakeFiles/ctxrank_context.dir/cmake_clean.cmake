file(REMOVE_RECURSE
  "CMakeFiles/ctxrank_context.dir/assignment_builders.cc.o"
  "CMakeFiles/ctxrank_context.dir/assignment_builders.cc.o.d"
  "CMakeFiles/ctxrank_context.dir/author_similarity.cc.o"
  "CMakeFiles/ctxrank_context.dir/author_similarity.cc.o.d"
  "CMakeFiles/ctxrank_context.dir/citation_prestige.cc.o"
  "CMakeFiles/ctxrank_context.dir/citation_prestige.cc.o.d"
  "CMakeFiles/ctxrank_context.dir/context_assignment.cc.o"
  "CMakeFiles/ctxrank_context.dir/context_assignment.cc.o.d"
  "CMakeFiles/ctxrank_context.dir/context_io.cc.o"
  "CMakeFiles/ctxrank_context.dir/context_io.cc.o.d"
  "CMakeFiles/ctxrank_context.dir/cross_context_prestige.cc.o"
  "CMakeFiles/ctxrank_context.dir/cross_context_prestige.cc.o.d"
  "CMakeFiles/ctxrank_context.dir/pattern_prestige.cc.o"
  "CMakeFiles/ctxrank_context.dir/pattern_prestige.cc.o.d"
  "CMakeFiles/ctxrank_context.dir/prestige.cc.o"
  "CMakeFiles/ctxrank_context.dir/prestige.cc.o.d"
  "CMakeFiles/ctxrank_context.dir/search_engine.cc.o"
  "CMakeFiles/ctxrank_context.dir/search_engine.cc.o.d"
  "CMakeFiles/ctxrank_context.dir/text_prestige.cc.o"
  "CMakeFiles/ctxrank_context.dir/text_prestige.cc.o.d"
  "libctxrank_context.a"
  "libctxrank_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctxrank_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
