
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/citation_graph.cc" "src/graph/CMakeFiles/ctxrank_graph.dir/citation_graph.cc.o" "gcc" "src/graph/CMakeFiles/ctxrank_graph.dir/citation_graph.cc.o.d"
  "/root/repo/src/graph/citation_similarity.cc" "src/graph/CMakeFiles/ctxrank_graph.dir/citation_similarity.cc.o" "gcc" "src/graph/CMakeFiles/ctxrank_graph.dir/citation_similarity.cc.o.d"
  "/root/repo/src/graph/graph_stats.cc" "src/graph/CMakeFiles/ctxrank_graph.dir/graph_stats.cc.o" "gcc" "src/graph/CMakeFiles/ctxrank_graph.dir/graph_stats.cc.o.d"
  "/root/repo/src/graph/hits.cc" "src/graph/CMakeFiles/ctxrank_graph.dir/hits.cc.o" "gcc" "src/graph/CMakeFiles/ctxrank_graph.dir/hits.cc.o.d"
  "/root/repo/src/graph/pagerank.cc" "src/graph/CMakeFiles/ctxrank_graph.dir/pagerank.cc.o" "gcc" "src/graph/CMakeFiles/ctxrank_graph.dir/pagerank.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ctxrank_common.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/ctxrank_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/ctxrank_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ctxrank_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
