file(REMOVE_RECURSE
  "CMakeFiles/ctxrank_graph.dir/citation_graph.cc.o"
  "CMakeFiles/ctxrank_graph.dir/citation_graph.cc.o.d"
  "CMakeFiles/ctxrank_graph.dir/citation_similarity.cc.o"
  "CMakeFiles/ctxrank_graph.dir/citation_similarity.cc.o.d"
  "CMakeFiles/ctxrank_graph.dir/graph_stats.cc.o"
  "CMakeFiles/ctxrank_graph.dir/graph_stats.cc.o.d"
  "CMakeFiles/ctxrank_graph.dir/hits.cc.o"
  "CMakeFiles/ctxrank_graph.dir/hits.cc.o.d"
  "CMakeFiles/ctxrank_graph.dir/pagerank.cc.o"
  "CMakeFiles/ctxrank_graph.dir/pagerank.cc.o.d"
  "libctxrank_graph.a"
  "libctxrank_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctxrank_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
