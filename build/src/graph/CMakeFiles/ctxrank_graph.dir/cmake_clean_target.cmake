file(REMOVE_RECURSE
  "libctxrank_graph.a"
)
