# Empty dependencies file for ctxrank_graph.
# This may be replaced when dependencies are built.
