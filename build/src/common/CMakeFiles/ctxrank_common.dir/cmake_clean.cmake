file(REMOVE_RECURSE
  "CMakeFiles/ctxrank_common.dir/rng.cc.o"
  "CMakeFiles/ctxrank_common.dir/rng.cc.o.d"
  "CMakeFiles/ctxrank_common.dir/stats.cc.o"
  "CMakeFiles/ctxrank_common.dir/stats.cc.o.d"
  "CMakeFiles/ctxrank_common.dir/status.cc.o"
  "CMakeFiles/ctxrank_common.dir/status.cc.o.d"
  "CMakeFiles/ctxrank_common.dir/string_util.cc.o"
  "CMakeFiles/ctxrank_common.dir/string_util.cc.o.d"
  "libctxrank_common.a"
  "libctxrank_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctxrank_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
