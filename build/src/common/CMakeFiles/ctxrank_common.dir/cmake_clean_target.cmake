file(REMOVE_RECURSE
  "libctxrank_common.a"
)
