# Empty dependencies file for ctxrank_common.
# This may be replaced when dependencies are built.
