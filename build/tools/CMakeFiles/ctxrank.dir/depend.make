# Empty dependencies file for ctxrank.
# This may be replaced when dependencies are built.
