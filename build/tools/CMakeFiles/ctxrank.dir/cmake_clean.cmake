file(REMOVE_RECURSE
  "CMakeFiles/ctxrank.dir/ctxrank_cli.cc.o"
  "CMakeFiles/ctxrank.dir/ctxrank_cli.cc.o.d"
  "ctxrank"
  "ctxrank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctxrank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
