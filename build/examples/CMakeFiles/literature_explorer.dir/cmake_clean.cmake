file(REMOVE_RECURSE
  "CMakeFiles/literature_explorer.dir/literature_explorer.cpp.o"
  "CMakeFiles/literature_explorer.dir/literature_explorer.cpp.o.d"
  "literature_explorer"
  "literature_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/literature_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
