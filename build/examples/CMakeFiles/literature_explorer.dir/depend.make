# Empty dependencies file for literature_explorer.
# This may be replaced when dependencies are built.
