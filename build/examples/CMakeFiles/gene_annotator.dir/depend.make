# Empty dependencies file for gene_annotator.
# This may be replaced when dependencies are built.
