file(REMOVE_RECURSE
  "CMakeFiles/gene_annotator.dir/gene_annotator.cpp.o"
  "CMakeFiles/gene_annotator.dir/gene_annotator.cpp.o.d"
  "gene_annotator"
  "gene_annotator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gene_annotator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
