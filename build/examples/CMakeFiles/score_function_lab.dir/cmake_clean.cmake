file(REMOVE_RECURSE
  "CMakeFiles/score_function_lab.dir/score_function_lab.cpp.o"
  "CMakeFiles/score_function_lab.dir/score_function_lab.cpp.o.d"
  "score_function_lab"
  "score_function_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/score_function_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
