# Empty dependencies file for score_function_lab.
# This may be replaced when dependencies are built.
