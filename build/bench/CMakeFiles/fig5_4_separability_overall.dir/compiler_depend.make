# Empty compiler generated dependencies file for fig5_4_separability_overall.
# This may be replaced when dependencies are built.
