file(REMOVE_RECURSE
  "CMakeFiles/fig5_4_separability_overall.dir/fig5_4_separability_overall.cc.o"
  "CMakeFiles/fig5_4_separability_overall.dir/fig5_4_separability_overall.cc.o.d"
  "fig5_4_separability_overall"
  "fig5_4_separability_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_4_separability_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
