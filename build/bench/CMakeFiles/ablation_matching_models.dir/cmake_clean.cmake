file(REMOVE_RECURSE
  "CMakeFiles/ablation_matching_models.dir/ablation_matching_models.cc.o"
  "CMakeFiles/ablation_matching_models.dir/ablation_matching_models.cc.o.d"
  "ablation_matching_models"
  "ablation_matching_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_matching_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
