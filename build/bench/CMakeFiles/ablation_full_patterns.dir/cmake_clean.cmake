file(REMOVE_RECURSE
  "CMakeFiles/ablation_full_patterns.dir/ablation_full_patterns.cc.o"
  "CMakeFiles/ablation_full_patterns.dir/ablation_full_patterns.cc.o.d"
  "ablation_full_patterns"
  "ablation_full_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_full_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
