# Empty dependencies file for ablation_full_patterns.
# This may be replaced when dependencies are built.
