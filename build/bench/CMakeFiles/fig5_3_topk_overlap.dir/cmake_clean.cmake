file(REMOVE_RECURSE
  "CMakeFiles/fig5_3_topk_overlap.dir/fig5_3_topk_overlap.cc.o"
  "CMakeFiles/fig5_3_topk_overlap.dir/fig5_3_topk_overlap.cc.o.d"
  "fig5_3_topk_overlap"
  "fig5_3_topk_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_3_topk_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
