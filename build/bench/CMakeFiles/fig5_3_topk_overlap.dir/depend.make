# Empty dependencies file for fig5_3_topk_overlap.
# This may be replaced when dependencies are built.
