# Empty dependencies file for validate_ac_answers.
# This may be replaced when dependencies are built.
