file(REMOVE_RECURSE
  "CMakeFiles/validate_ac_answers.dir/validate_ac_answers.cc.o"
  "CMakeFiles/validate_ac_answers.dir/validate_ac_answers.cc.o.d"
  "validate_ac_answers"
  "validate_ac_answers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_ac_answers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
