# Empty compiler generated dependencies file for ablation_text_channels.
# This may be replaced when dependencies are built.
