file(REMOVE_RECURSE
  "CMakeFiles/ablation_text_channels.dir/ablation_text_channels.cc.o"
  "CMakeFiles/ablation_text_channels.dir/ablation_text_channels.cc.o.d"
  "ablation_text_channels"
  "ablation_text_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_text_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
