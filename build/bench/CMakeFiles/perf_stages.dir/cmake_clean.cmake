file(REMOVE_RECURSE
  "CMakeFiles/perf_stages.dir/perf_stages.cc.o"
  "CMakeFiles/perf_stages.dir/perf_stages.cc.o.d"
  "perf_stages"
  "perf_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
