# Empty compiler generated dependencies file for perf_stages.
# This may be replaced when dependencies are built.
