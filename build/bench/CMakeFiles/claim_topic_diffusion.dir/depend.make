# Empty dependencies file for claim_topic_diffusion.
# This may be replaced when dependencies are built.
