file(REMOVE_RECURSE
  "CMakeFiles/claim_topic_diffusion.dir/claim_topic_diffusion.cc.o"
  "CMakeFiles/claim_topic_diffusion.dir/claim_topic_diffusion.cc.o.d"
  "claim_topic_diffusion"
  "claim_topic_diffusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_topic_diffusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
