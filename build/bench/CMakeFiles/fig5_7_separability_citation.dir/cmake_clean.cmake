file(REMOVE_RECURSE
  "CMakeFiles/fig5_7_separability_citation.dir/fig5_7_separability_citation.cc.o"
  "CMakeFiles/fig5_7_separability_citation.dir/fig5_7_separability_citation.cc.o.d"
  "fig5_7_separability_citation"
  "fig5_7_separability_citation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_7_separability_citation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
