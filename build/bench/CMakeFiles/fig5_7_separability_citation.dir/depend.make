# Empty dependencies file for fig5_7_separability_citation.
# This may be replaced when dependencies are built.
