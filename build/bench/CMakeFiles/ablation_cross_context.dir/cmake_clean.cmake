file(REMOVE_RECURSE
  "CMakeFiles/ablation_cross_context.dir/ablation_cross_context.cc.o"
  "CMakeFiles/ablation_cross_context.dir/ablation_cross_context.cc.o.d"
  "ablation_cross_context"
  "ablation_cross_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cross_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
