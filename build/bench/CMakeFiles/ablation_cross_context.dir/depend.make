# Empty dependencies file for ablation_cross_context.
# This may be replaced when dependencies are built.
