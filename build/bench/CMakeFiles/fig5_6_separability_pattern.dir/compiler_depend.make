# Empty compiler generated dependencies file for fig5_6_separability_pattern.
# This may be replaced when dependencies are built.
