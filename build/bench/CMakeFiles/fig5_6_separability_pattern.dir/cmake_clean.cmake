file(REMOVE_RECURSE
  "CMakeFiles/fig5_6_separability_pattern.dir/fig5_6_separability_pattern.cc.o"
  "CMakeFiles/fig5_6_separability_pattern.dir/fig5_6_separability_pattern.cc.o.d"
  "fig5_6_separability_pattern"
  "fig5_6_separability_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_6_separability_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
