# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for claim_output_reduction.
