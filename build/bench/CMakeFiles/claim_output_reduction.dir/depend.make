# Empty dependencies file for claim_output_reduction.
# This may be replaced when dependencies are built.
