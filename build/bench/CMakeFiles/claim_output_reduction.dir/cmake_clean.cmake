file(REMOVE_RECURSE
  "CMakeFiles/claim_output_reduction.dir/claim_output_reduction.cc.o"
  "CMakeFiles/claim_output_reduction.dir/claim_output_reduction.cc.o.d"
  "claim_output_reduction"
  "claim_output_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_output_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
