# Empty dependencies file for fig5_2_precision_patternset.
# This may be replaced when dependencies are built.
