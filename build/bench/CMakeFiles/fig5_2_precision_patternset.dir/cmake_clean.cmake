file(REMOVE_RECURSE
  "CMakeFiles/fig5_2_precision_patternset.dir/fig5_2_precision_patternset.cc.o"
  "CMakeFiles/fig5_2_precision_patternset.dir/fig5_2_precision_patternset.cc.o.d"
  "fig5_2_precision_patternset"
  "fig5_2_precision_patternset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_2_precision_patternset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
