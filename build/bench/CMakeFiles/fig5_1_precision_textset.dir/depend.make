# Empty dependencies file for fig5_1_precision_textset.
# This may be replaced when dependencies are built.
