file(REMOVE_RECURSE
  "CMakeFiles/fig5_1_precision_textset.dir/fig5_1_precision_textset.cc.o"
  "CMakeFiles/fig5_1_precision_textset.dir/fig5_1_precision_textset.cc.o.d"
  "fig5_1_precision_textset"
  "fig5_1_precision_textset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_1_precision_textset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
