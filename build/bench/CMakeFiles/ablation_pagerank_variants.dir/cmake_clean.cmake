file(REMOVE_RECURSE
  "CMakeFiles/ablation_pagerank_variants.dir/ablation_pagerank_variants.cc.o"
  "CMakeFiles/ablation_pagerank_variants.dir/ablation_pagerank_variants.cc.o.d"
  "ablation_pagerank_variants"
  "ablation_pagerank_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pagerank_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
