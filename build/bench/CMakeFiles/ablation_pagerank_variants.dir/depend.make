# Empty dependencies file for ablation_pagerank_variants.
# This may be replaced when dependencies are built.
