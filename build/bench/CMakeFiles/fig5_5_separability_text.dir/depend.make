# Empty dependencies file for fig5_5_separability_text.
# This may be replaced when dependencies are built.
