
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_5_separability_text.cc" "bench/CMakeFiles/fig5_5_separability_text.dir/fig5_5_separability_text.cc.o" "gcc" "bench/CMakeFiles/fig5_5_separability_text.dir/fig5_5_separability_text.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/ctxrank_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/context/CMakeFiles/ctxrank_context.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/ctxrank_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ctxrank_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/ctxrank_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/ctxrank_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ctxrank_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ctxrank_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
