file(REMOVE_RECURSE
  "CMakeFiles/fig5_5_separability_text.dir/fig5_5_separability_text.cc.o"
  "CMakeFiles/fig5_5_separability_text.dir/fig5_5_separability_text.cc.o.d"
  "fig5_5_separability_text"
  "fig5_5_separability_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_5_separability_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
