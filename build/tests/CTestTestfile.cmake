# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/ontology_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/pattern_test[1]_include.cmake")
include("/root/repo/build/tests/context_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
