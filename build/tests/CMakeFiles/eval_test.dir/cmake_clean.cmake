file(REMOVE_RECURSE
  "CMakeFiles/eval_test.dir/eval/ac_validation_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/ac_validation_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/analysis_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/analysis_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/eval_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/eval_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/ir_metrics_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/ir_metrics_test.cc.o.d"
  "CMakeFiles/eval_test.dir/eval/metrics_test.cc.o"
  "CMakeFiles/eval_test.dir/eval/metrics_test.cc.o.d"
  "eval_test"
  "eval_test.pdb"
  "eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
