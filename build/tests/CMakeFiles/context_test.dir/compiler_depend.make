# Empty compiler generated dependencies file for context_test.
# This may be replaced when dependencies are built.
