file(REMOVE_RECURSE
  "CMakeFiles/context_test.dir/context/assignment_builders_test.cc.o"
  "CMakeFiles/context_test.dir/context/assignment_builders_test.cc.o.d"
  "CMakeFiles/context_test.dir/context/context_io_test.cc.o"
  "CMakeFiles/context_test.dir/context/context_io_test.cc.o.d"
  "CMakeFiles/context_test.dir/context/cross_context_test.cc.o"
  "CMakeFiles/context_test.dir/context/cross_context_test.cc.o.d"
  "CMakeFiles/context_test.dir/context/prestige_functions_test.cc.o"
  "CMakeFiles/context_test.dir/context/prestige_functions_test.cc.o.d"
  "CMakeFiles/context_test.dir/context/prestige_test.cc.o"
  "CMakeFiles/context_test.dir/context/prestige_test.cc.o.d"
  "CMakeFiles/context_test.dir/context/search_engine_test.cc.o"
  "CMakeFiles/context_test.dir/context/search_engine_test.cc.o.d"
  "CMakeFiles/context_test.dir/context/semantic_expansion_test.cc.o"
  "CMakeFiles/context_test.dir/context/semantic_expansion_test.cc.o.d"
  "context_test"
  "context_test.pdb"
  "context_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/context_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
