file(REMOVE_RECURSE
  "CMakeFiles/pattern_test.dir/pattern/pattern_builder_test.cc.o"
  "CMakeFiles/pattern_test.dir/pattern/pattern_builder_test.cc.o.d"
  "CMakeFiles/pattern_test.dir/pattern/pattern_matcher_test.cc.o"
  "CMakeFiles/pattern_test.dir/pattern/pattern_matcher_test.cc.o.d"
  "CMakeFiles/pattern_test.dir/pattern/pattern_scorer_test.cc.o"
  "CMakeFiles/pattern_test.dir/pattern/pattern_scorer_test.cc.o.d"
  "CMakeFiles/pattern_test.dir/pattern/phrase_miner_test.cc.o"
  "CMakeFiles/pattern_test.dir/pattern/phrase_miner_test.cc.o.d"
  "pattern_test"
  "pattern_test.pdb"
  "pattern_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
